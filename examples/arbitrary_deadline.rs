//! Arbitrary-deadline systems via task clones (Section VI-B).
//!
//! A task with `Di > Ti` can have several jobs alive at once, which the CSP
//! value encoding cannot express directly. The paper's fix: split τi into
//! `ki = ⌈Di/Ti⌉` clones with stretched periods. This example shows the
//! transform, solves the transformed system, relabels the schedule back to
//! the original tasks and prints both.
//!
//! Run with: `cargo run --example arbitrary_deadline`

use mgrts::mgrts_core::engine::{Budget, CancelToken, Csp2Engine};
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::solve::{relabel_clones, solve_arbitrary_deadline};
use mgrts::rt_sim::render_schedule;
use mgrts::rt_task::{clone_count, clone_transform, Task, TaskSet};

fn main() {
    // τ1 = (O=0, C=2, D=7, T=3): D > T → k1 = ⌈7/3⌉ = 3 clones.
    // τ2 = (O=1, C=1, D=2, T=4): already constrained → passes through.
    let ts = TaskSet::new(vec![
        Task::new(0, 2, 7, 3).unwrap(),
        Task::new(1, 1, 2, 4).unwrap(),
    ])
    .unwrap();

    println!("original system (arbitrary deadlines):");
    for (i, t) in ts.iter() {
        println!(
            "  τ{} = (O={}, C={}, D={}, T={})  → k = {}",
            i + 1,
            t.offset,
            t.wcet,
            t.deadline,
            t.period,
            clone_count(t)
        );
    }

    let m = 2;
    let (clones, _) = clone_transform(&ts).unwrap();
    println!(
        "\ntransformed system: {} constrained-deadline clone tasks, H = {}",
        clones.len(),
        clones.hyperperiod().unwrap()
    );
    for (c, t) in clones.iter() {
        println!(
            "  clone {} = (O={}, C={}, D={}, T={})",
            c + 1,
            t.offset,
            t.wcet,
            t.deadline,
            t.period
        );
    }
    let engine = Csp2Engine {
        order: TaskOrder::DeadlineMinusWcet,
    };
    let (result, info) =
        solve_arbitrary_deadline(&ts, m, &engine, &Budget::unlimited(), &CancelToken::new())
            .unwrap();

    match result.verdict.schedule() {
        Some(clone_schedule) => {
            println!("\nclone-level schedule (ids are clone tasks):");
            println!("{}", render_schedule(clone_schedule));
            let original = relabel_clones(clone_schedule, &info);
            println!("relabelled to the original task ids:");
            println!("{}", render_schedule(&original));
        }
        None => println!("verdict: {:?}", result.verdict),
    }
}
