//! The Dhall effect: why exact global scheduling matters.
//!
//! Priority-driven global schedulers (global EDF / DM) miss deadlines on an
//! instance whose utilization is far below the platform capacity, while the
//! CSP approach finds a feasible schedule immediately — the scheduling
//! anomaly that motivates the paper's exact method (Section I), plus the
//! Section VIII priority-assignment repair.
//!
//! Run with: `cargo run --example dhall_effect`

use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::priority::{dc_seed, dc_seeded_assignment};
use mgrts::rt_sim::{dhall_instance, fp_schedulable, render_schedule, simulate, Policy};

fn main() {
    let m = 2;
    let ts = dhall_instance(m, 8);
    println!(
        "Dhall instance on {m} processors: {} light tasks + 1 heavy, r = {:.3}",
        m,
        ts.utilization_ratio(m)
    );

    println!("\n== global EDF ==");
    let res = simulate(&ts, m, &Policy::Edf, None);
    match res.misses.first() {
        Some(miss) => println!(
            "DEADLINE MISS: task {} (released {}, due {}) still owes {} units",
            miss.task + 1,
            miss.release,
            miss.deadline,
            miss.remaining
        ),
        None => println!("schedulable (unexpected!)"),
    }

    println!("\n== CSP2 + (D-C) on the same instance ==");
    let res = Csp2Solver::new(&ts, m)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve();
    let schedule = res.verdict.schedule().expect("the CSP finds it");
    println!(
        "feasible in {} decisions — schedule of one hyperperiod:",
        res.stats.decisions
    );
    println!("{}", render_schedule(schedule));

    println!("== Section VIII: (D-C)-seeded priority assignment ==");
    let seed = dc_seed(&ts);
    println!("(D-C) seed ordering (least slack first): {seed:?}");
    let (found, tested) = dc_seeded_assignment(&ts, |order| fp_schedulable(&ts, m, order));
    match found {
        Some(order) => println!(
            "fixed-priority order {order:?} schedules the instance ({tested} orderings tested)"
        ),
        None => println!("no nearby priority ordering works ({tested} tested)"),
    }
}
