//! Portfolio quickstart: race every kind of solver on one instance.
//!
//! The paper's Table I compares six solver configurations sequentially;
//! on a multicore host the `mgrts_core::portfolio` module races any roster
//! of [`FeasibilitySolver`]s on scoped threads. The first definitive
//! `Feasible`/`Infeasible` verdict cancels the rest cooperatively, and the
//! per-backend statistics survive for inspection.
//!
//! Run with: `cargo run --release --example portfolio`

use std::time::Duration;

use mgrts::mgrts_core::engine::{Budget, FeasibilitySolver, SolverSpec};
use mgrts::mgrts_core::portfolio::race;
use mgrts::rt_sim::render_schedule;
use mgrts::rt_task::TaskSet;

fn main() {
    // The paper's running example (m = 2, H = 12) plus a denser instance
    // where the backends genuinely diverge in runtime.
    let instances: Vec<(&str, TaskSet, usize)> = vec![
        ("running example", TaskSet::running_example(), 2),
        (
            "dense 5-task instance",
            TaskSet::from_ocdt(&[
                (0, 1, 2, 2),
                (1, 3, 4, 4),
                (0, 2, 3, 3),
                (0, 1, 3, 4),
                (2, 1, 2, 6),
            ]),
            3,
        ),
        (
            "overloaded (infeasible)",
            TaskSet::from_ocdt(&[(0, 1, 1, 2), (0, 1, 1, 2), (0, 1, 1, 2)]),
            2,
        ),
    ];

    // Any roster works; SolverSpec::DEFAULT_PORTFOLIO mixes the strongest
    // CSP2 heuristic, both generic-engine routes, the CNF/CDCL route and a
    // local search.
    let roster: Vec<Box<dyn FeasibilitySolver>> = SolverSpec::DEFAULT_PORTFOLIO
        .iter()
        .map(|spec| spec.build())
        .collect();
    println!(
        "roster: {}",
        roster
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let budget = Budget::time_limit(Duration::from_secs(10));
    for (label, ts, m) in &instances {
        println!("\n=== {label} (m = {m}) ===");
        let outcome = race(&roster, ts, *m, &budget).expect("valid instance");
        match outcome.winner_name() {
            Some(winner) => println!(
                "verdict: {:?} — won by `{winner}` in {:?}",
                verdict_word(&outcome.result),
                Duration::from_micros(outcome.elapsed_us),
            ),
            None => println!("no backend reached a definitive verdict"),
        }
        for report in &outcome.backends {
            let stats = report.stats();
            println!(
                "  {:<14} {:<22} decisions={:<8} elapsed={:?}",
                format!("{}{}", report.name, if report.winner { " *" } else { "" }),
                report.outcome_label(),
                stats.decisions,
                stats.elapsed(),
            );
        }
        if let Some(schedule) = outcome.result.verdict.schedule() {
            println!("{}", render_schedule(schedule));
        }
    }
}

fn verdict_word(result: &mgrts::mgrts_core::SolveResult) -> &'static str {
    if result.verdict.is_feasible() {
        "feasible"
    } else if result.verdict.is_infeasible() {
        "infeasible"
    } else {
        "unknown"
    }
}
