//! Minimal-processor search on random workloads (Section VII-E).
//!
//! Generates random task sets with the paper's sampler and reports, for
//! each, the utilization lower bound `mmin = ⌈U⌉` and the true minimum
//! processor count found by the incremental CSP2 scan — quantifying how
//! often the utilization bound is tight. A second pass runs the
//! CDCL-incremental scan (`minimal_m_sat`: one solver instance, processor
//! switch variables, learned clauses shared across probes) and checks the
//! two scans agree.
//!
//! Run with: `cargo run --release --example minimal_processors`

use std::time::Duration;

use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::minimal_m::minimal_processors;
use mgrts::mgrts_core::minimal_m_sat::minimal_m_sat;
use mgrts::rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use mgrts::rt_sat::SatConfig;

fn main() {
    let cfg = GeneratorConfig {
        n: 6,
        m: MSpec::MinUtilization,
        t_max: 6,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 2009);
    let count = 40;

    println!("instance |  U    | mmin | minimal m | probes");
    println!("---------+-------+------+-----------+-------");
    let mut tight = 0;
    let mut decided = 0;
    for idx in 0..count {
        let p = gen.nth(idx);
        let mmin = p.taskset.min_processors();
        let result = minimal_processors(
            &p.taskset,
            TaskOrder::DeadlineMinusWcet,
            Some(Duration::from_millis(500)),
        )
        .unwrap();
        match result.minimal_m {
            Some(m) => {
                decided += 1;
                if m == mmin {
                    tight += 1;
                }
                println!(
                    "{idx:8} | {:5.2} | {mmin:4} | {m:9} | {:?}",
                    p.taskset.utilization(),
                    result
                        .probes
                        .iter()
                        .map(|(pm, r)| format!(
                            "m={pm}:{}",
                            if r.verdict.is_feasible() { "F" } else { "I" }
                        ))
                        .collect::<Vec<_>>()
                );
            }
            None => println!(
                "{idx:8} | {:5.2} | {mmin:4} |   timeout |",
                p.taskset.utilization()
            ),
        }
    }
    println!("\nutilization bound ⌈U⌉ was exact on {tight}/{decided} decided instances");

    // Cross-check the CDCL-incremental scan on the same instances.
    let mut agreements = 0;
    let mut compared = 0;
    for idx in 0..count {
        let p = gen.nth(idx);
        let csp2 = minimal_processors(
            &p.taskset,
            TaskOrder::DeadlineMinusWcet,
            Some(Duration::from_millis(500)),
        )
        .unwrap();
        let sat = minimal_m_sat(&p.taskset, SatConfig::default()).unwrap();
        if let (Some(a), Some(b)) = (csp2.minimal_m, sat.minimal_m) {
            compared += 1;
            if a == b {
                agreements += 1;
            }
        }
    }
    println!("incremental SAT scan agreed with CSP2 on {agreements}/{compared} instances");
    assert_eq!(agreements, compared, "the scans must agree");
}
