//! Partitioned vs. global scheduling (Section VIII: "looking at
//! partitioning or mixed approaches").
//!
//! Shows the migration dividend on the classic instance — three tasks of
//! utilization 2/3 on two processors are globally feasible but provably
//! not partitionable — then measures, over a random corpus, how many
//! instances each approach schedules.
//!
//! Run with: `cargo run --release --example partitioned_vs_global`

use mgrts::mgrts_core::csp2::{Csp2Budget, Csp2Solver};
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use mgrts::rt_sim::{exhaustive_partition, partition, render_schedule, PackingStrategy};
use mgrts::rt_task::TaskSet;
use std::time::Duration;

fn main() {
    println!("== the classic witness: 3 × (C=2, D=T=3) on m = 2 ==");
    let ts = TaskSet::from_ocdt(&[(0, 2, 3, 3), (0, 2, 3, 3), (0, 2, 3, 3)]);
    let global = Csp2Solver::new(&ts, 2)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve();
    println!(
        "global CSP2: {}",
        if global.verdict.is_feasible() {
            "FEASIBLE (migrating schedule below)"
        } else {
            "infeasible"
        }
    );
    if let Some(s) = global.verdict.schedule() {
        println!("{}", render_schedule(s));
    }
    println!(
        "exhaustive partitioned search: {}",
        match exhaustive_partition(&ts, 2) {
            Some(_) => "partition found (unexpected!)".to_string(),
            None => "NO partition exists — migration is essential".to_string(),
        }
    );

    println!("\n== random corpus: how often does each approach succeed? ==");
    let cfg = GeneratorConfig {
        n: 6,
        m: MSpec::Fixed(3),
        t_max: 5,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 7);
    let (mut global_ok, mut part_ok, mut gap, mut total) = (0, 0, 0, 0);
    for p in gen.batch(120) {
        if p.filtered_out() {
            continue;
        }
        total += 1;
        let g = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .with_budget(Csp2Budget {
                time: Some(Duration::from_millis(500)),
                max_decisions: None,
            })
            .solve()
            .verdict
            .is_feasible();
        let pt = partition(&p.taskset, p.m, PackingStrategy::FirstFitDecreasing).is_some();
        global_ok += u32::from(g);
        part_ok += u32::from(pt);
        gap += u32::from(g && !pt);
        assert!(!pt || g, "a partitioned schedule is a global schedule");
    }
    println!("instances surviving the r ≤ 1 filter : {total}");
    println!("global CSP2 feasible                 : {global_ok}");
    println!("partitioned (FFD + per-core EDF)     : {part_ok}");
    println!("migration dividend (global \\ part.) : {gap}");
}
