//! Quickstart: the paper's running example end to end.
//!
//! Builds Example 1 (m = 2 processors, three tasks, hyperperiod 12),
//! renders its availability intervals (Figure 1), solves it with both CSP
//! encodings, verifies the schedules against conditions C1–C4, and prints
//! the result.
//!
//! Run with: `cargo run --example quickstart`

use mgrts::mgrts_core::csp1::{solve_csp1, Csp1Config};
use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::verify::check_identical;
use mgrts::rt_sim::{render_intervals, render_schedule};
use mgrts::rt_task::TaskSet;

fn main() {
    let ts = TaskSet::running_example();
    let m = 2;

    println!("== Figure 1: availability intervals ==");
    println!("{}", render_intervals(&ts).unwrap());

    println!("== CSP2 + (D-C): specialized chronological search ==");
    let res = Csp2Solver::new(&ts, m)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve();
    let schedule = res.verdict.schedule().expect("the example is feasible");
    check_identical(&ts, m, schedule).expect("C1–C4 hold");
    println!(
        "feasible in {} decisions, {} failures, {} µs",
        res.stats.decisions, res.stats.failures, res.stats.elapsed_us
    );
    println!("{}", render_schedule(schedule));

    println!("== CSP1: boolean encoding on the generic solver ==");
    let res = solve_csp1(&ts, m, &Csp1Config::default()).unwrap();
    let schedule = res.verdict.schedule().expect("the example is feasible");
    check_identical(&ts, m, schedule).expect("C1–C4 hold");
    println!(
        "feasible in {} decisions, {} failures, {} µs",
        res.stats.decisions, res.stats.failures, res.stats.elapsed_us
    );
    println!("{}", render_schedule(schedule));
}
