//! Heterogeneous platforms (Section VI-A): dedicated processors and
//! execution rates.
//!
//! Builds a platform where one processor is twice as fast for some tasks
//! and another is forbidden for one task (`si,j = 0`), solves with the
//! heterogeneous CSP2 search, cross-checks with the heterogeneous CSP1
//! encoding, and verifies the rate-weighted completion constraint (12).
//!
//! Run with: `cargo run --example heterogeneous`

use mgrts::mgrts_core::csp1_sat_hetero::{solve_hetero_sat, HeteroSatConfig};
use mgrts::mgrts_core::hetero::{solve_csp1_hetero, solve_csp2_hetero, Csp2HeteroConfig};
use mgrts::mgrts_core::verify::check_heterogeneous;
use mgrts::rt_platform::Platform;
use mgrts::rt_sim::render_schedule;
use mgrts::rt_task::TaskSet;

fn main() {
    // τ1 = (0, 4, 4, 4): four units per window — needs the fast processor.
    // τ2 = (0, 2, 3, 3): may not run on P1 (dedicated-processor modelling).
    // τ3 = (0, 1, 2, 2): runs anywhere.
    let ts = TaskSet::from_ocdt(&[(0, 4, 4, 4), (0, 2, 3, 3), (0, 1, 2, 2)]);
    // Rates: rows = tasks, columns = processors.
    //        P1 fast for τ1 (rate 2); P2 forbidden for τ2.
    let platform = Platform::heterogeneous(vec![
        vec![2, 1], // τ1
        vec![1, 0], // τ2 — P2 forbidden
        vec![1, 1], // τ3
    ])
    .unwrap();

    println!(
        "platform: {} processors, identical = {}, uniform = {}",
        platform.num_processors(),
        platform.is_identical(),
        platform.is_uniform()
    );

    println!("\n== specialized heterogeneous CSP2 search ==");
    let res = solve_csp2_hetero(&ts, &platform, &Csp2HeteroConfig::default()).unwrap();
    match res.verdict.schedule() {
        Some(s) => {
            check_heterogeneous(&ts, &platform, s).expect("constraint (12) holds");
            println!(
                "feasible in {} decisions / {} failures:",
                res.stats.decisions, res.stats.failures
            );
            println!("{}", render_schedule(s));
        }
        None => println!("verdict: {:?}", res.verdict),
    }

    println!("== heterogeneous CSP1 on the generic solver (cross-check) ==");
    let res1 = solve_csp1_hetero(&ts, &platform, None, 7).unwrap();
    match res1.verdict.schedule() {
        Some(s) => {
            check_heterogeneous(&ts, &platform, s).expect("constraint (11) holds");
            println!("CSP1 agrees: feasible. One of its schedules:");
            println!("{}", render_schedule(s));
        }
        None => println!("CSP1 verdict: {:?}", res1.verdict),
    }

    println!("== SAT route with the pseudo-boolean constraint (11) ==");
    let res2 = solve_hetero_sat(&ts, &platform, &HeteroSatConfig::default()).unwrap();
    match res2.verdict.schedule() {
        Some(s) => {
            check_heterogeneous(&ts, &platform, s).expect("constraint (11) holds");
            println!("CDCL agrees: feasible. One of its schedules:");
            println!("{}", render_schedule(s));
        }
        None => println!("SAT verdict: {:?}", res2.verdict),
    }
}
