//! Analytic pre-filtering in front of the exact CSP search.
//!
//! The paper filters instances only by `r > 1` (Table II). The
//! `rt-analysis` battery is strictly stronger: P-fair decides every
//! implicit-deadline instance outright, the density test certifies light
//! constrained systems, and window demand catches localized overloads.
//! This example generates a workload, lets the battery decide what it can,
//! and only sends the remainder to the exact solver — printing how much
//! search was avoided.
//!
//! Run with: `cargo run --example analysis_filter`

use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::rt_analysis::{analyze, TestOutcome};
use mgrts::rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};

fn main() {
    let cfg = GeneratorConfig {
        n: 6,
        m: MSpec::Fixed(3),
        t_max: 5,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 0xF117E5);
    let problems = gen.batch(200);

    let mut decided_fast = 0;
    let mut sent_to_search = 0;
    let mut feasible = 0;
    for p in &problems {
        let report = analyze(&p.taskset, p.m);
        match report.verdict() {
            TestOutcome::Feasible => {
                decided_fast += 1;
                feasible += 1;
            }
            TestOutcome::Infeasible => decided_fast += 1,
            _ => {
                sent_to_search += 1;
                let exact = Csp2Solver::new(&p.taskset, p.m)
                    .unwrap()
                    .with_order(TaskOrder::DeadlineMinusWcet)
                    .solve();
                if exact.verdict.is_feasible() {
                    feasible += 1;
                }
            }
        }
    }
    println!("{} instances:", problems.len());
    println!(
        "  decided by the polynomial battery: {decided_fast} ({:.0}%)",
        100.0 * f64::from(decided_fast) / problems.len() as f64
    );
    println!("  sent to exact CSP2 search:         {sent_to_search}");
    println!("  feasible overall:                  {feasible}");

    // Show one full report.
    let sample = &problems[0];
    println!("\nsample report (seed {}):", sample.seed);
    print!("{}", analyze(&sample.taskset, sample.m));
}
