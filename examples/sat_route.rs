//! The SAT route: CSP1 lowered to CNF and solved by the CDCL solver.
//!
//! Section IV of the paper picks boolean variables for its first encoding
//! "so that even boolean satisfiability (SAT) solvers could be used" —
//! this example does exactly that on the running example, prints the
//! formula statistics, and cross-checks the verdict and schedule against
//! the specialized CSP2 search.
//!
//! Run with: `cargo run --example sat_route`

use mgrts::mgrts_core::csp1_sat::{encode_cnf, solve_csp1_sat, Csp1SatConfig};
use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::verify::check_identical;
use mgrts::rt_sat::AmoEncoding;
use mgrts::rt_sim::render_schedule;
use mgrts::rt_task::TaskSet;

fn main() {
    let ts = TaskSet::running_example();
    let m = 2;

    for amo in [AmoEncoding::Pairwise, AmoEncoding::Ladder] {
        let (cnf, layout) = encode_cnf(&ts, m, amo).expect("constrained task set");
        println!(
            "{amo:?} AMO: {} grid cells → {} variables, {} clauses",
            layout.cells(),
            cnf.num_vars(),
            cnf.num_clauses()
        );
    }

    let res = solve_csp1_sat(&ts, m, &Csp1SatConfig::default()).expect("constrained task set");
    let schedule = res.verdict.schedule().expect("Example 1 is feasible");
    check_identical(&ts, m, schedule).expect("C1-C4 hold");
    println!(
        "\nCDCL verdict: FEASIBLE in {} decisions / {} conflicts\n",
        res.stats.decisions, res.stats.failures
    );
    println!("{}", render_schedule(schedule));

    // Cross-check with the specialized search.
    let csp2 = Csp2Solver::new(&ts, m)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve();
    assert_eq!(
        csp2.verdict.is_feasible(),
        res.verdict.is_feasible(),
        "exact solvers must agree"
    );
    println!("CSP2+(D-C) agrees: both found the instance feasible.");
}
