//! Probabilistic execution times — the paper's Section VIII long-term
//! objective, built on its own anomaly-avoidance idling policy.
//!
//! Solves the running example, attaches a two-point overrun model to every
//! task (10% chance of needing twice the WCET), and prints each job's
//! exact deadline-miss probability and response-time distribution, then
//! cross-checks with a Monte-Carlo replay.
//!
//! Run with: `cargo run --example probabilistic`

use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::rt_prob::{
    analyze_all, hyperperiod_miss_probability, monte_carlo_run, ExecModel, McConfig,
};
use mgrts::rt_task::TaskSet;

fn main() {
    let ts = TaskSet::running_example();
    let m = 2;
    let schedule = Csp2Solver::new(&ts, m)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve()
        .verdict
        .schedule()
        .expect("Example 1 is feasible")
        .clone();

    let model = ExecModel::with_overruns(&ts, 0.10, 2.0);
    let timings = analyze_all(&ts, &schedule, &model).unwrap();

    println!("per-job exact analysis (10% overrun to 2x WCET):");
    for t in &timings {
        println!(
            "  τ{} job {:>2}: allocation {:?}, miss={:.3}, mean response={}",
            t.job.task + 1,
            t.job.k,
            t.allocation,
            t.miss_prob,
            t.mean_on_time_response()
                .map_or("-".into(), |r| format!("{r:.2}")),
        );
    }
    let exact = hyperperiod_miss_probability(&timings);
    println!("\nexact P(any miss in a hyperperiod) = {exact:.4}");

    let mc = monte_carlo_run(
        &ts,
        &schedule,
        &model,
        &McConfig {
            rounds: 50_000,
            seed: 7,
        },
    )
    .unwrap();
    println!(
        "monte-carlo (50k rounds)           = {:.4}",
        mc.hyperperiod_miss_rate()
    );
    assert!((exact - mc.hyperperiod_miss_rate()).abs() < 0.01);

    // Early-completion dividend under a uniform model.
    let uniform = ExecModel::uniform_to_wcet(&ts);
    let t2 = analyze_all(&ts, &schedule, &uniform).unwrap();
    println!(
        "\nuniform(1,WCET) model reclaims {:.1} slots per hyperperiod on average",
        mgrts::rt_prob::expected_idle_per_hyperperiod(&t2, &uniform)
    );
}
