//! Vendored stub of `parking_lot` backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API subset it uses: a `Mutex` whose `lock`
//! never returns a poison error (a poisoned std mutex yields its inner
//! data, matching parking_lot's no-poisoning semantics).

use std::sync::PoisonError;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
