//! Vendored subset of the `rand` 0.8 API, backed by splitmix64 +
//! xoshiro256++.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: `SeedableRng::
//! seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over integer/float
//! ranges, and `rngs::SmallRng`. Streams are deterministic per seed (the
//! property every experiment in this repository relies on) but are *not*
//! bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored loosely).
    type Seed;

    /// Build from a byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core generator interface: raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_incl) = range.bounds();
        T::sample_inclusive(self, lo, hi_incl)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable over a range.
pub trait UniformSample: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                // Modulo reduction over 128-bit draws: bias is < 2^-64,
                // irrelevant for test workloads.
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoUniformRange<T: UniformSample> {
    /// Inclusive `(low, high)` bounds.
    fn bounds(self) -> (T, T);
}

impl IntoUniformRange<f64> for Range<f64> {
    fn bounds(self) -> (f64, f64) {
        (self.start, self.end)
    }
}

macro_rules! range_forms {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

range_forms!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
