//! Vendored subset of the `criterion` API (offline build).
//!
//! Provides the macro/entry-point surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! with a simple median-of-samples timer instead of criterion's full
//! statistical pipeline. Results print one line per benchmark:
//! `bench <name> ... median <time> (<samples> samples)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export position matching `criterion::black_box`.
pub use std::hint::black_box;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    /// Time `f`, recording the median over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample batch sizing so sub-microsecond bodies
        // still measure above timer resolution.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() / u128::from(batch));
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

fn human(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        median_ns: 0,
    };
    f(&mut b);
    println!(
        "bench {label} ... median {} ({samples} samples)",
        human(b.median_ns)
    );
}

/// Benchmark identifier (`BenchmarkId::new`, `from_parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function + parameter id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Accepted id forms for `bench_function` and friends.
pub trait IntoBenchmarkId {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Register and run a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_label(), self.samples, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Override the measurement time (accepted, ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
