//! Vendored subset of the `serde` API (offline build).
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the serialization surface the workspace uses: the `Serialize` /
//! `Deserialize` traits and derives, routed through a self-describing
//! [`Value`] tree (the JSON data model) instead of serde's
//! serializer/deserializer visitors. `serde_json` renders and parses that
//! tree. The derives mirror serde's default representations: structs as
//! objects, unit enum variants as strings, data-carrying variants as
//! single-key objects.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{DeError, Value};

/// Types convertible into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Fallback when a struct field is absent. Errors by default;
    /// `Option<T>` overrides it to `None` (serde's optional-field
    /// behaviour).
    fn missing_field(name: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{name}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)), other)),
                }
            }
        }
    )*};
}

ser_de_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support machinery the derive macro expands against. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Fetch and parse a struct field, applying the `Option`-aware
    /// missing-field fallback.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Object(pairs) => match pairs.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => {
                    T::from_value(fv).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
                }
                None => T::missing_field(name),
            },
            other => Err(DeError::expected("object", other)),
        }
    }

    /// Expect an object with exactly one key (enum data-variant form) and
    /// return `(key, value)`.
    pub fn single_key(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
            other => Err(DeError::expected("single-key variant object", other)),
        }
    }

    /// Element `i` of an array (tuple-variant payload).
    pub fn element<T: Deserialize>(v: &Value, i: usize, len: usize) -> Result<T, DeError> {
        match v {
            Value::Array(items) if items.len() == len => T::from_value(&items[i]),
            other => Err(DeError::expected("tuple-variant array", other)),
        }
    }
}
