//! The self-describing JSON data model shared by the vendored `serde` and
//! `serde_json`.

use std::fmt;

/// A JSON value. Object member order is preserved (serialization output is
/// deterministic and matches declaration order, like serde_json with its
/// default preserve-order-off... close enough for this workspace's tests,
/// which never compare raw object text across implementations).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (u64 range preserved exactly).
    UInt(u64),
    /// A negative integer (i64 range preserved exactly).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` elsewhere or out of bounds.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as a `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A one-word description for error messages.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.get_index(i).unwrap_or(&NULL)
    }
}

/// Deserialization/serialization error for the vendored serde stack.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Construct from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}
