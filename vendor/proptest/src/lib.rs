//! Vendored subset of the `proptest` API (offline build).
//!
//! Implements the surface this workspace's property tests use — the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple and [`collection::vec`] strategies, [`Just`],
//! `any::<bool>()`, `prop_oneof!`, and the `proptest!` / `prop_assert!`
//! macro family — over a deterministic per-test RNG. Unlike upstream there
//! is **no shrinking**: a failing case reports its seed-deterministic
//! inputs via the assertion message. Cases are reproducible run to run
//! (the RNG is seeded from the test's module path and name).

use std::rc::Rc;

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SeedableRng};

/// How a generated case failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case was rejected (filter); it is not counted as a failure.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
    /// Give up after this many consecutive filter rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 100,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Deterministic RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator. Stub semantics: pure sampling, no shrinking.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Draw one value (retrying internally over filters).
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Chain a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`. Sampling retries until a value
    /// passes (bounded; exceeding the bound panics, as uprobable filters
    /// would hang otherwise).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.sample(rng)))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..65_536 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 65536 consecutive samples",
            self.whence
        );
    }
}

/// A type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Sample from the type's canonical distribution.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exact length.
        Fixed(usize),
        /// Inclusive length bounds.
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange::Between(r.start, r.end - 1)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Between(*r.start(), *r.end())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Between(lo, hi) => rng.gen_range(lo..=hi),
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Run the body of one generated case; used by the `proptest!` expansion.
#[doc(hidden)]
pub fn run_case(case: u32, inputs: &str, result: Result<(), TestCaseError>) {
    match result {
        Ok(()) | Err(TestCaseError::Reject(_)) => {}
        Err(TestCaseError::Fail(msg)) => {
            panic!("proptest case #{case} failed: {msg}\ninputs: {inputs}")
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut inputs = ::std::string::String::new();
                    $(
                        let $pat = {
                            let sampled =
                                $crate::Strategy::sample(&($strat), &mut rng);
                            sampled
                        };
                    )*
                    let _ = &mut inputs;
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    $crate::run_case(case, &inputs, result);
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a proptest body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), a, b
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..=9, y in 0usize..4) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuple_patterns((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn vec_and_filter(xs in crate::collection::vec(0u64..100, 1..=5)) {
            prop_assert!(!xs.is_empty() && xs.len() <= 5);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..5).prop_map(|x| x * 2),
            Just(100u64),
        ]) {
            prop_assert!(v == 100 || v < 10);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = crate::collection::vec(0u64..1000, 3..=6);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn flat_map_dependent_ranges() {
        let mut rng = crate::test_rng("dep");
        let s = (1u64..=12).prop_flat_map(|t| (Just(t), 1u64..=t));
        for _ in 0..100 {
            let (t, d) = s.sample(&mut rng);
            assert!(d >= 1 && d <= t);
        }
    }
}
