//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline build environment cannot fetch `syn`/`quote`, so the item is
//! parsed directly from the raw `proc_macro` token stream. Supported
//! shapes — the ones this workspace uses — are non-generic structs (named,
//! tuple, unit) and enums with unit / tuple / struct variants, mapped to
//! serde's default (externally tagged) representation. `#[serde(...)]`
//! attributes are not supported and produce a compile error rather than
//! being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attribute groups starting at `i`; error on `#[serde(...)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            let inner = g.stream().to_string();
            assert!(
                !inner.starts_with("serde"),
                "vendored serde_derive does not support #[serde(...)] attributes: {inner}"
            );
        }
        i += 2;
    }
    i
}

/// Skip `pub` / `pub(...)` at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && ident_of(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token sequence on top-level commas (`<>` depth tracked; `()`,
/// `[]`, `{}` arrive as single `Group` trees so need no tracking).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if angle == 0 && is_punct(t, ',') {
            out.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_commas(group_tokens)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let i = skip_vis(&part, skip_attrs(&part, 0));
            ident_of(&part[i]).unwrap_or_else(|| panic!("expected field name in {part:?}"))
        })
        .collect()
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match g.delimiter() {
        Delimiter::Brace => Fields::Named(parse_named_fields(&toks)),
        Delimiter::Parenthesis => Fields::Tuple(
            split_top_commas(&toks)
                .into_iter()
                .filter(|p| !p.is_empty())
                .count(),
        ),
        other => panic!("unexpected field delimiter {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = ident_of(&tokens[i]).expect("struct/enum keyword");
    i += 1;
    let name = ident_of(&tokens[i]).expect("type name");
    i += 1;
    assert!(
        !(i < tokens.len() && is_punct(&tokens[i], '<')),
        "vendored serde_derive does not support generic types (deriving on `{name}`)"
    );
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) => parse_fields_group(g),
                Some(t) if is_punct(t, ';') => Fields::Unit,
                other => panic!("unexpected token after struct name: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let TokenTree::Group(g) = &tokens[i] else {
                panic!("expected enum body");
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_top_commas(&body)
                .into_iter()
                .filter(|p| !p.is_empty())
                .map(|part| {
                    let j = skip_attrs(&part, 0);
                    let vname = ident_of(&part[j]).expect("variant name");
                    let fields = match part.get(j + 1) {
                        Some(TokenTree::Group(g)) => parse_fields_group(g),
                        None => Fields::Unit,
                        Some(t) if is_punct(t, '=') => {
                            panic!("explicit discriminants unsupported on `{vname}`")
                        }
                        Some(other) => panic!("unexpected token in variant: {other:?}"),
                    };
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let pairs: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("x{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::__private::field(v, \"{f}\")?,"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::__private::element(v, {k}, {n})?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!(
                                    "::serde::__private::element(payload, {k}, {n})?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({})),",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::__private::field(payload, \"{f}\")?,"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match v {{\n\
                       ::serde::Value::String(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\n\
                             format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                       }},\n\
                       _ => {{\n\
                         let (key, payload) = ::serde::__private::single_key(v)?;\n\
                         let _ = payload;\n\
                         match key {{\n\
                           {datas}\n\
                           other => ::std::result::Result::Err(::serde::DeError::new(\n\
                               format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                       }}\n\
                     }}\n\
                   }}\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
