//! Vendored stub of `crossbeam`'s scoped threads backed by
//! `std::thread::scope`.
//!
//! Only the `crossbeam::scope(|s| { s.spawn(|_| …) })` entry point used by
//! this workspace is provided. Panics in worker threads surface as an `Err`
//! from `scope`, matching crossbeam's contract.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle passed to [`scope`]'s closure; `spawn` launches a worker
/// joined before `scope` returns.
#[repr(transparent)]
pub struct Scope<'scope, 'env: 'scope>(std::thread::Scope<'scope, 'env>);

fn wrap<'a, 'scope, 'env>(s: &'a std::thread::Scope<'scope, 'env>) -> &'a Scope<'scope, 'env> {
    // SAFETY: `Scope` is a `#[repr(transparent)]` wrapper around
    // `std::thread::Scope`, so the reference cast is layout- and
    // lifetime-preserving.
    unsafe { &*(std::ptr::from_ref(s).cast::<Scope<'scope, 'env>>()) }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope again so
    /// workers can spawn further workers (crossbeam's signature).
    pub fn spawn<F, T>(&'scope self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.0.spawn(move || f(self))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before this returns. A worker panic is
/// reported as `Err` (crossbeam semantics) instead of resuming the unwind.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(wrap(s)))))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_share_borrowed_state() {
        let data = std::sync::Mutex::new(0u64);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    *data.lock().unwrap() += 1;
                });
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(*data.lock().unwrap(), 4);
    }

    #[test]
    fn worker_panic_is_reported_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
