//! Vendored subset of the `serde_json` API (offline build): JSON text
//! rendering and parsing over the vendored `serde` [`Value`] data model.

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // serde_json always renders floats distinguishably; `1.0` must not
        // come back as the integer `1`.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => render_f64(*f, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Render `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Render `value` as pretty-printed (2-space indented) JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Write compact JSON to an `io::Write`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Write pretty-printed JSON to an `io::Write`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::String),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_literal("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    self.pos += 4;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| self.err("invalid surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| self.err("invalid surrogate"))?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

/// Parse JSON from an `io::Read` into any [`Deserialize`] type.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn round_trip_composites() {
        let v: Vec<(u64, bool)> = vec![(1, true), (2, false)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,true],[2,false]]");
        let back: Vec<(u64, bool)> = from_str(&text).unwrap();
        assert_eq!(back, v);
        let opt: Option<u64> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn value_indexing() {
        let v: Value = from_str(r#"{"m": 3, "xs": [1, 2]}"#).unwrap();
        assert_eq!(v["m"].as_u64(), Some(3));
        assert_eq!(v["xs"][1].as_u64(), Some(2));
        assert!(v["absent"].is_null());
    }

    #[test]
    fn pretty_printing_nests() {
        let v: Value = from_str(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }
}
