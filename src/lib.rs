#![warn(missing_docs)]
//! Facade crate re-exporting the full MGRTS public API.
pub use csp_engine;
pub use mgrts_core;
pub use rt_analysis;
pub use rt_gen;
pub use rt_platform;
pub use rt_prob;
pub use rt_sat;
pub use rt_sim;
pub use rt_task;
