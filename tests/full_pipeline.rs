//! Whole-workspace pipeline test: generate → analyze → solve with every
//! exact solver → verify → probabilistic post-analysis. This is the
//! downstream-user path end to end, across all crates through the facade.

use mgrts::mgrts_core::csp1::{solve_csp1, Csp1Config};
use mgrts::mgrts_core::csp1_sat::{solve_csp1_sat, Csp1SatConfig};
use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::verify::check_identical;
use mgrts::rt_analysis::{analyze, TestOutcome};
use mgrts::rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use mgrts::rt_prob::{analyze_all, hyperperiod_miss_probability, ExecModel, McConfig};

#[test]
fn generate_analyze_solve_verify_probabilize() {
    let cfg = GeneratorConfig {
        n: 4,
        m: MSpec::Fixed(2),
        t_max: 4,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 0xF1FE);
    let mut feasible_seen = 0;
    let mut analytic_decided = 0;

    for p in gen.batch(60) {
        // 1. Analytic battery first.
        let report = analyze(&p.taskset, p.m);
        assert!(report.is_consistent(), "seed {}", p.seed);

        // 2. Exact solvers must agree with each other (and the battery).
        let csp2 = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .solve();
        let csp1 = solve_csp1(&p.taskset, p.m, &Csp1Config::default()).unwrap();
        let sat = solve_csp1_sat(&p.taskset, p.m, &Csp1SatConfig::default()).unwrap();
        assert_eq!(
            csp1.verdict.is_feasible(),
            csp2.verdict.is_feasible(),
            "seed {}",
            p.seed
        );
        assert_eq!(
            sat.verdict.is_feasible(),
            csp2.verdict.is_feasible(),
            "seed {}",
            p.seed
        );
        match report.verdict() {
            TestOutcome::Feasible => {
                analytic_decided += 1;
                assert!(csp2.verdict.is_feasible(), "seed {}", p.seed);
            }
            TestOutcome::Infeasible => {
                analytic_decided += 1;
                assert!(csp2.verdict.is_infeasible(), "seed {}", p.seed);
            }
            _ => {}
        }

        // 3. Verify + probabilistic post-analysis on feasible instances.
        if let Some(schedule) = csp2.verdict.schedule() {
            feasible_seen += 1;
            check_identical(&p.taskset, p.m, schedule).unwrap();

            let model = ExecModel::with_overruns(&p.taskset, 0.1, 2.0);
            let timings = analyze_all(&p.taskset, schedule, &model).unwrap();
            let exact = hyperperiod_miss_probability(&timings);
            assert!(exact > 0.0 && exact < 1.0, "seed {}", p.seed);

            // Per-job miss probability under the two-point model is 0.1.
            for t in &timings {
                assert!((t.miss_prob - 0.1).abs() < 1e-9);
            }

            // Monte-Carlo agrees within loose sampling error.
            let mc = mgrts::rt_prob::monte_carlo_run(
                &p.taskset,
                schedule,
                &model,
                &McConfig {
                    rounds: 2_000,
                    seed: p.seed,
                },
            )
            .unwrap();
            assert!(
                (mc.hyperperiod_miss_rate() - exact).abs() < 0.08,
                "seed {}: mc {} vs exact {exact}",
                p.seed,
                mc.hyperperiod_miss_rate()
            );
        }
    }
    assert!(
        feasible_seen >= 10,
        "only {feasible_seen} feasible instances"
    );
    assert!(
        analytic_decided >= 10,
        "battery decided only {analytic_decided}"
    );
}

#[test]
fn quantile_budgets_integrate_with_exact_search() {
    use mgrts::rt_prob::{quantile_budgets, with_budgets};
    use mgrts::rt_task::TaskSet;

    // WCET-infeasible, quantile-recoverable.
    let ts = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)]);
    assert!(Csp2Solver::new(&ts, 2)
        .unwrap()
        .solve()
        .verdict
        .is_infeasible());

    let model = ExecModel::uniform_to_wcet(&ts); // X ∈ {1, 2} uniformly
    let budgets = quantile_budgets(&model, 0.5);
    assert_eq!(budgets, vec![1, 1, 1]);
    let resized = with_budgets(&ts, &budgets).unwrap();
    let res = Csp2Solver::new(&resized, 2).unwrap().solve();
    let schedule = res.verdict.schedule().expect("resized instance feasible");
    check_identical(&resized, 2, schedule).unwrap();

    // The miss probability under the original model and reduced budgets is
    // exactly P(X = 2) = 0.5 per job.
    let timings = analyze_all(&resized, schedule, &model).unwrap();
    for t in &timings {
        assert!((t.miss_prob - 0.5).abs() < 1e-9);
    }
}
