//! End-to-end pipeline tests through the `mgrts` facade: generate →
//! encode → solve → verify → render, across crates.

use mgrts::mgrts_core::csp1::{solve_csp1, Csp1Config};
use mgrts::mgrts_core::csp2::Csp2Solver;
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::verify::check_identical;
use mgrts::rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use mgrts::rt_sim::{render_intervals, render_schedule};
use mgrts::rt_task::TaskSet;

#[test]
fn full_pipeline_on_the_running_example() {
    let ts = TaskSet::running_example();
    let fig = render_intervals(&ts).unwrap();
    assert!(fig.contains("T = 12"));

    let res = Csp2Solver::new(&ts, 2)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve();
    let s = res.verdict.schedule().expect("feasible");
    check_identical(&ts, 2, s).unwrap();

    let rendered = render_schedule(s);
    assert_eq!(rendered.lines().count(), 3); // P1, P2, axis
    assert!(rendered.starts_with("P1"));
}

#[test]
fn generated_problems_flow_through_both_encodings() {
    let cfg = GeneratorConfig {
        n: 5,
        m: MSpec::Fixed(3),
        t_max: 4,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 424242);
    for p in gen.batch(25) {
        let a = Csp2Solver::new(&p.taskset, p.m).unwrap().solve();
        let b = solve_csp1(&p.taskset, p.m, &Csp1Config::default()).unwrap();
        assert_eq!(
            a.verdict.is_feasible(),
            b.verdict.is_feasible(),
            "encodings disagree on seed {}",
            p.seed
        );
        for res in [&a, &b] {
            if let Some(s) = res.verdict.schedule() {
                check_identical(&p.taskset, p.m, s).unwrap();
            }
        }
    }
}

#[test]
fn theorem_1_periodic_extension_serves_every_job_forever() {
    // The schedule object extends periodically (σ(t) = σ(t + kH)); check
    // that *absolute-time* jobs across three hyperperiods each receive
    // exactly Ci units inside their window — the substance of Theorem 1.
    let ts = TaskSet::running_example();
    let res = Csp2Solver::new(&ts, 2).unwrap().solve();
    let s = res.verdict.schedule().unwrap();
    let h = s.horizon();
    for (i, task) in ts.iter() {
        let mut k = 0u64;
        loop {
            let release = task.offset + k * task.period;
            if release >= 3 * h {
                break;
            }
            let got = s.service(i, release, release + task.deadline);
            assert_eq!(
                got, task.wcet,
                "task {i} job released at {release} under-served"
            );
            k += 1;
        }
    }
}

#[test]
fn facade_reexports_cover_the_public_api() {
    // Compile-time façade audit: each sub-crate is reachable.
    let _ = mgrts::rt_task::TaskSet::running_example();
    let _ = mgrts::rt_platform::Platform::identical(2, 2).unwrap();
    let _ = mgrts::csp_engine::Model::new();
    let _ = mgrts::rt_gen::GeneratorConfig::table1();
    let _ = mgrts::rt_sim::dhall_instance(2, 8);
}
