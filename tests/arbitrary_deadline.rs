//! Integration tests of the Section VI-B clone pipeline: arbitrary
//! deadlines → clone transform → CSP solve → relabel → original-system
//! audit.
//!
//! Note the semantics: with `Di > Ti`, *different jobs* of one task may
//! legitimately run simultaneously on different processors (the very
//! situation the clones model — Section VI-B). The audit therefore works at
//! the clone level for per-job exactness, and at the original level for the
//! aggregate invariants: total service and the bound "parallel instances of
//! τi at instant t ≤ number of overlapping availability windows of τi
//! at t".

use mgrts::mgrts_core::engine::{Budget, CancelToken, Csp2Engine, SolverSpec};
use mgrts::mgrts_core::heuristics::TaskOrder;
use mgrts::mgrts_core::solve::{relabel_clones, solve_arbitrary_deadline};
use mgrts::mgrts_core::verify::check_identical;
use mgrts::mgrts_core::Schedule;
use mgrts::rt_task::{clone_count, clone_transform, CloneInfo, Task, TaskSet};

struct Solved {
    clones: TaskSet,
    info: CloneInfo,
    clone_schedule: Schedule,
    relabelled: Schedule,
}

fn solve(ts: &TaskSet, m: usize) -> Option<Solved> {
    let (clones, _) = clone_transform(ts).unwrap();
    let engine = Csp2Engine {
        order: TaskOrder::DeadlineMinusWcet,
    };
    let (result, info) =
        solve_arbitrary_deadline(ts, m, &engine, &Budget::unlimited(), &CancelToken::new())
            .unwrap();
    let clone_schedule = result.verdict.schedule()?.clone();
    let relabelled = relabel_clones(&clone_schedule, &info);
    Some(Solved {
        clones,
        info,
        clone_schedule,
        relabelled,
    })
}

fn audit(ts: &TaskSet, m: usize, s: &Solved) {
    // Per-job exactness at the clone level (C1–C4 on the transformed,
    // constrained system).
    check_identical(&s.clones, m, &s.clone_schedule).unwrap();

    let h = s.clone_schedule.horizon();
    // Aggregate service at the original level: Σ jobs · Ci per task per
    // clone hyperperiod.
    for (i, task) in ts.iter() {
        let expected: u64 = s
            .clones
            .iter()
            .filter(|(c, _)| s.info.original_of(*c) == i)
            .map(|(_, clone)| clone.wcet * (h / clone.period))
            .sum();
        let got: u64 = (0..h)
            .map(|t| (0..m).filter(|&j| s.relabelled.at(j, t) == Some(i)).count() as u64)
            .sum();
        assert_eq!(got, expected, "task {i} total service");
        // Sanity: the per-hyperperiod demand matches (H/Ti)·Ci.
        assert_eq!(expected, (h / task.period) * task.wcet);
    }
    // Parallel instances never exceed the number of simultaneously open
    // availability windows of the original task.
    for t in 0..h {
        for (i, task) in ts.iter() {
            let parallel = (0..m).filter(|&j| s.relabelled.at(j, t) == Some(i)).count() as u64;
            // Windows of τi open at absolute instant t (mod the clone
            // hyperperiod the pattern repeats): releases r ≤ t < r + Di.
            let mut open = 0u64;
            let mut r = task.offset % task.period;
            // Scan two hyperperiods back to catch wrapped windows.
            while r < 2 * h {
                for base in [t, t + h] {
                    if r <= base && base < r + task.deadline {
                        open += 1;
                    }
                }
                r += task.period;
            }
            assert!(
                parallel <= open,
                "task {i} runs {parallel}-way parallel at t={t} with only {open} open windows"
            );
        }
    }
}

#[test]
fn single_arbitrary_task_on_two_processors() {
    // D = 7 > T = 3: up to ⌈7/3⌉ = 3 jobs alive at once; U = 2/3 per
    // window but sustained load needs parallel instances.
    let ts = TaskSet::new(vec![Task::new(0, 2, 7, 3).unwrap()]).unwrap();
    assert_eq!(clone_count(ts.task(0)), 3);
    let s = solve(&ts, 2).expect("feasible with 2 processors");
    audit(&ts, 2, &s);
}

#[test]
fn constrained_sets_pass_through_unchanged() {
    let ts = TaskSet::running_example();
    let s = solve(&ts, 2).expect("feasible");
    assert_eq!(s.clones, ts, "identity transform on constrained sets");
    audit(&ts, 2, &s);
}

#[test]
fn mixed_constrained_and_arbitrary() {
    let ts = TaskSet::new(vec![
        Task::new(0, 2, 7, 3).unwrap(), // arbitrary, 3 clones
        Task::new(1, 1, 2, 4).unwrap(), // constrained
    ])
    .unwrap();
    let s = solve(&ts, 2).expect("feasible");
    audit(&ts, 2, &s);
}

#[test]
fn infeasible_arbitrary_instance_is_detected() {
    // A utilization-1 continuous task plus urgent blips cannot share one
    // processor.
    let ts = TaskSet::new(vec![
        Task::new(0, 3, 9, 3).unwrap(),
        Task::new(0, 1, 1, 2).unwrap(),
    ])
    .unwrap();
    let (result, _) = solve_arbitrary_deadline(
        &ts,
        1,
        &Csp2Engine::default(),
        &Budget::unlimited(),
        &CancelToken::new(),
    )
    .unwrap();
    assert!(result.verdict.is_infeasible());
}

#[test]
fn clone_hyperperiod_growth_is_the_documented_cost() {
    // The paper warns the transform grows the hyperperiod: D = 7, T = 3 →
    // clone period 9; with another task of period 4, H goes 12 → 36.
    let original = TaskSet::new(vec![
        Task::new(0, 2, 7, 3).unwrap(),
        Task::new(0, 1, 2, 4).unwrap(),
    ])
    .unwrap();
    let (clones, _) = clone_transform(&original).unwrap();
    assert_eq!(original.hyperperiod().unwrap(), 12);
    assert_eq!(clones.hyperperiod().unwrap(), 36);
}

#[test]
fn parallel_instances_actually_occur() {
    // Demand forces simultaneous instances: C = 3, D = 6, T = 3 → U = 1,
    // window twice the period. On m = 2 the only way to keep up is running
    // two jobs in parallel somewhere.
    let ts = TaskSet::new(vec![Task::new(0, 3, 6, 3).unwrap()]).unwrap();
    let s = solve(&ts, 2).expect("feasible");
    audit(&ts, 2, &s);
    let h = s.clone_schedule.horizon();
    let saw_parallel =
        (0..h).any(|t| (0..2).filter(|&j| s.relabelled.at(j, t) == Some(0)).count() == 2);
    assert!(saw_parallel, "expected two instances of τ1 in parallel");
}

/// The clone pipeline is solver-agnostic: drive it through the SAT route
/// and check it agrees with the CSP2 route instance by instance.
#[test]
fn clone_pipeline_through_the_sat_route() {
    // Arbitrary-deadline systems: D > T on at least one task.
    let systems = [
        vec![(0u64, 1u64, 4u64, 2u64), (0, 1, 2, 2)],
        vec![(0, 2, 6, 3), (1, 1, 2, 2)],
        vec![(0, 1, 3, 2), (0, 1, 3, 2)],
    ];
    for spec in systems {
        let tasks: Vec<Task> = spec
            .iter()
            .map(|&(o, c, d, t)| Task::new(o, c, d, t).unwrap())
            .collect();
        let ts = TaskSet::new(tasks).unwrap();
        for m in 1..=2 {
            let (sat, info_a) = solve_arbitrary_deadline(
                &ts,
                m,
                SolverSpec::Csp1Sat.build().as_ref(),
                &Budget::unlimited(),
                &CancelToken::new(),
            )
            .unwrap();
            let (csp2, _info_b) = solve_arbitrary_deadline(
                &ts,
                m,
                SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet)
                    .build()
                    .as_ref(),
                &Budget::unlimited(),
                &CancelToken::new(),
            )
            .unwrap();
            assert_eq!(
                sat.verdict.is_feasible(),
                csp2.verdict.is_feasible(),
                "SAT vs CSP2 clone pipelines disagree on {spec:?} m={m}"
            );
            if let Some(s) = sat.verdict.schedule() {
                // Clone-level audit, as in the CSP2 tests above.
                let (clones, _) = clone_transform(&ts).unwrap();
                check_identical(&clones, m, s).unwrap();
                let _ = relabel_clones(s, &info_a);
            }
        }
    }
}
