//! Per-task execution-time models.
//!
//! An [`ExecModel`] attaches one [`Pmf`] to each task of a set. The
//! deterministic setting of the paper is the special case of all-delta
//! distributions at the WCET; the probabilistic extension allows any
//! distribution — including support *beyond* the scheduled budget `Ci`,
//! which is what makes deadline misses possible and the analysis
//! interesting.

use rt_task::TaskSet;

use crate::pmf::{Pmf, PmfError};

/// Errors building an [`ExecModel`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Number of distributions ≠ number of tasks.
    LengthMismatch {
        /// Distributions supplied.
        pmfs: usize,
        /// Tasks in the set.
        tasks: usize,
    },
    /// A distribution failed validation.
    Pmf(PmfError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::LengthMismatch { pmfs, tasks } => {
                write!(f, "{pmfs} distributions for {tasks} tasks")
            }
            ModelError::Pmf(e) => write!(f, "bad distribution: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<PmfError> for ModelError {
    fn from(e: PmfError) -> Self {
        ModelError::Pmf(e)
    }
}

/// Execution-time distributions, one per task (indexed like the task set).
#[derive(Debug, Clone)]
pub struct ExecModel {
    pmfs: Vec<Pmf>,
}

impl ExecModel {
    /// One distribution per task, in task order.
    pub fn new(pmfs: Vec<Pmf>, ts: &TaskSet) -> Result<ExecModel, ModelError> {
        if pmfs.len() != ts.len() {
            return Err(ModelError::LengthMismatch {
                pmfs: pmfs.len(),
                tasks: ts.len(),
            });
        }
        Ok(ExecModel { pmfs })
    }

    /// The deterministic model: every task always needs exactly its WCET.
    #[must_use]
    pub fn deterministic(ts: &TaskSet) -> ExecModel {
        ExecModel {
            pmfs: ts.tasks().iter().map(|t| Pmf::delta(t.wcet)).collect(),
        }
    }

    /// Uniform between 1 and the WCET — the "jobs often finish early"
    /// model the paper's idling remark (after Theorem 1) anticipates.
    #[must_use]
    pub fn uniform_to_wcet(ts: &TaskSet) -> ExecModel {
        ExecModel {
            pmfs: ts.tasks().iter().map(|t| Pmf::uniform(1, t.wcet)).collect(),
        }
    }

    /// A two-point "normal vs overrun" model: the task takes its WCET with
    /// probability `1 − p_over` and `overrun_factor × WCET` (rounded down,
    /// at least WCET+1) with probability `p_over`. This deliberately
    /// exceeds the scheduled budget — the deadline-miss analysis exercises
    /// it.
    ///
    /// # Panics
    /// Panics unless `0 < p_over < 1`.
    #[must_use]
    pub fn with_overruns(ts: &TaskSet, p_over: f64, overrun_factor: f64) -> ExecModel {
        assert!(p_over > 0.0 && p_over < 1.0, "overrun probability in (0,1)");
        let pmfs = ts
            .tasks()
            .iter()
            .map(|t| {
                let over = ((t.wcet as f64 * overrun_factor) as u64).max(t.wcet + 1);
                Pmf::new(vec![(t.wcet, 1.0 - p_over), (over, p_over)])
                    .expect("two-point distribution is valid")
            })
            .collect();
        ExecModel { pmfs }
    }

    /// The distribution of task `i`.
    #[must_use]
    pub fn pmf(&self, task: usize) -> &Pmf {
        &self.pmfs[task]
    }

    /// Number of tasks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pmfs.len()
    }

    /// True when no distributions are stored (never for validated models).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pmfs.is_empty()
    }

    /// True when task `i`'s demand can exceed `budget` ticks.
    #[must_use]
    pub fn can_exceed(&self, task: usize, budget: u64) -> bool {
        self.pmfs[task].max() > budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_model_is_deltas() {
        let ts = TaskSet::running_example();
        let m = ExecModel::deterministic(&ts);
        assert_eq!(m.len(), 3);
        assert_eq!(m.pmf(0).points(), &[(1, 1.0)]);
        assert_eq!(m.pmf(1).points(), &[(3, 1.0)]);
        assert!(!m.can_exceed(1, 3));
    }

    #[test]
    fn uniform_model_bounded_by_wcet() {
        let ts = TaskSet::running_example();
        let m = ExecModel::uniform_to_wcet(&ts);
        for (i, t) in ts.iter() {
            assert_eq!(m.pmf(i).max(), t.wcet);
            assert!(m.pmf(i).min() >= 1);
        }
    }

    #[test]
    fn overrun_model_exceeds_budget() {
        let ts = TaskSet::running_example();
        let m = ExecModel::with_overruns(&ts, 0.1, 1.5);
        for (i, t) in ts.iter() {
            assert!(m.can_exceed(i, t.wcet));
            assert!((m.pmf(i).exceedance(t.wcet) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let ts = TaskSet::running_example();
        let err = ExecModel::new(vec![Pmf::delta(1)], &ts).unwrap_err();
        assert!(matches!(
            err,
            ModelError::LengthMismatch { pmfs: 1, tasks: 3 }
        ));
    }
}
