//! Monte-Carlo replay of a schedule table under random execution times —
//! the empirical counterpart validating the exact analysis in
//! [`crate::response`].
//!
//! Each round draws one execution time per job of the hyperperiod and
//! replays the table under the paper's idling policy (early completions
//! idle the processor; overruns are cut off at the end of the allocation
//! and counted as deadline misses).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rt_task::{JobId, JobInstants, TaskError, TaskSet};

use mgrts_core::Schedule;

use crate::model::ExecModel;
use crate::response::job_allocation;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Hyperperiods to replay.
    pub rounds: u64,
    /// RNG seed — identical configs reproduce identical summaries.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            rounds: 10_000,
            seed: 0x9E3779B9,
        }
    }
}

/// Per-task empirical counters.
#[derive(Debug, Clone, Default)]
pub struct TaskMcStats {
    /// Jobs observed (rounds × jobs per hyperperiod).
    pub jobs: u64,
    /// Jobs whose drawn demand exceeded the allocation.
    pub misses: u64,
    /// Sum of response times of on-time jobs.
    pub response_sum: u64,
    /// On-time jobs (denominator for the mean response).
    pub on_time: u64,
}

impl TaskMcStats {
    /// Empirical miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.misses as f64 / self.jobs as f64
        }
    }

    /// Empirical mean on-time response.
    #[must_use]
    pub fn mean_response(&self) -> Option<f64> {
        if self.on_time == 0 {
            None
        } else {
            Some(self.response_sum as f64 / self.on_time as f64)
        }
    }
}

/// Whole-run summary.
#[derive(Debug, Clone)]
pub struct McSummary {
    /// Rounds replayed.
    pub rounds: u64,
    /// Per-task counters.
    pub per_task: Vec<TaskMcStats>,
    /// Rounds in which at least one job missed.
    pub rounds_with_miss: u64,
    /// Total slots idled by early completions, across all rounds.
    pub idle_slots: u64,
}

impl McSummary {
    /// Empirical probability a hyperperiod contains a miss.
    #[must_use]
    pub fn hyperperiod_miss_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.rounds_with_miss as f64 / self.rounds as f64
        }
    }

    /// Mean idled slots per hyperperiod.
    #[must_use]
    pub fn mean_idle(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.idle_slots as f64 / self.rounds as f64
        }
    }
}

/// Replay `cfg.rounds` hyperperiods of `schedule` under `model`.
pub fn run(
    ts: &TaskSet,
    schedule: &Schedule,
    model: &ExecModel,
    cfg: &McConfig,
) -> Result<McSummary, TaskError> {
    let ji = JobInstants::new(ts)?;
    // Precompute each job's allocation once; it is deterministic.
    let mut jobs: Vec<(JobId, Vec<u64>)> = Vec::new();
    for i in 0..ts.len() {
        for k in 0..ji.jobs_of(i) {
            let job = JobId { task: i, k };
            jobs.push((job, job_allocation(schedule, &ji, job)));
        }
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut per_task = vec![TaskMcStats::default(); ts.len()];
    let mut rounds_with_miss = 0u64;
    let mut idle_slots = 0u64;
    for _ in 0..cfg.rounds {
        let mut round_missed = false;
        for (job, alloc) in &jobs {
            let x = model.pmf(job.task).sample(&mut rng);
            let stats = &mut per_task[job.task];
            stats.jobs += 1;
            let cap = alloc.len() as u64;
            if x > cap {
                stats.misses += 1;
                round_missed = true;
            } else {
                stats.on_time += 1;
                let response = if x == 0 {
                    0
                } else {
                    alloc[(x - 1) as usize] + 1
                };
                stats.response_sum += response;
                idle_slots += cap - x;
            }
        }
        if round_missed {
            rounds_with_miss += 1;
        }
    }
    Ok(McSummary {
        rounds: cfg.rounds,
        per_task,
        rounds_with_miss,
        idle_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{analyze_all, hyperperiod_miss_probability};
    use mgrts_core::csp2::Csp2Solver;

    fn schedule_for(ts: &TaskSet, m: usize) -> Schedule {
        Csp2Solver::new(ts, m)
            .unwrap()
            .solve()
            .verdict
            .schedule()
            .expect("feasible")
            .clone()
    }

    #[test]
    fn deterministic_replay_never_misses() {
        let ts = TaskSet::running_example();
        let s = schedule_for(&ts, 2);
        let model = ExecModel::deterministic(&ts);
        let sum = run(
            &ts,
            &s,
            &model,
            &McConfig {
                rounds: 50,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(sum.rounds_with_miss, 0);
        assert_eq!(sum.idle_slots, 0);
        for st in &sum.per_task {
            assert_eq!(st.misses, 0);
        }
    }

    #[test]
    fn monte_carlo_matches_exact_analysis() {
        let ts = TaskSet::running_example();
        let s = schedule_for(&ts, 2);
        let model = ExecModel::with_overruns(&ts, 0.2, 2.0);
        let timings = analyze_all(&ts, &s, &model).unwrap();
        let exact_sys = hyperperiod_miss_probability(&timings);
        let sum = run(
            &ts,
            &s,
            &model,
            &McConfig {
                rounds: 20_000,
                seed: 11,
            },
        )
        .unwrap();
        // Per-task miss rates ≈ 0.2.
        for st in &sum.per_task {
            assert!(
                (st.miss_rate() - 0.2).abs() < 0.02,
                "rate {}",
                st.miss_rate()
            );
        }
        // System-level miss rate matches the independence formula.
        assert!(
            (sum.hyperperiod_miss_rate() - exact_sys).abs() < 0.02,
            "mc {} vs exact {exact_sys}",
            sum.hyperperiod_miss_rate()
        );
    }

    #[test]
    fn mean_response_matches_exact() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 3, 3)]);
        let s = schedule_for(&ts, 1);
        let model = ExecModel::uniform_to_wcet(&ts);
        let timings = analyze_all(&ts, &s, &model).unwrap();
        let exact_mean: f64 = timings
            .iter()
            .filter_map(|t| t.mean_on_time_response())
            .sum::<f64>()
            / timings.len() as f64;
        let sum = run(
            &ts,
            &s,
            &model,
            &McConfig {
                rounds: 30_000,
                seed: 5,
            },
        )
        .unwrap();
        let mc_mean = sum.per_task[0].mean_response().unwrap();
        assert!(
            (mc_mean - exact_mean).abs() < 0.05,
            "mc {mc_mean} vs exact {exact_mean}"
        );
    }

    #[test]
    fn idle_accounting_matches_expectation() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 3, 3)]);
        let s = schedule_for(&ts, 1);
        let model = ExecModel::uniform_to_wcet(&ts); // E[idle per job] = 0.5
        let timings = analyze_all(&ts, &s, &model).unwrap();
        let exact_idle = crate::response::expected_idle_per_hyperperiod(&timings, &model);
        let sum = run(
            &ts,
            &s,
            &model,
            &McConfig {
                rounds: 30_000,
                seed: 6,
            },
        )
        .unwrap();
        assert!(
            (sum.mean_idle() - exact_idle).abs() < 0.05,
            "mc {} vs exact {exact_idle}",
            sum.mean_idle()
        );
    }

    #[test]
    fn reproducible_under_seed() {
        let ts = TaskSet::running_example();
        let s = schedule_for(&ts, 2);
        let model = ExecModel::with_overruns(&ts, 0.3, 2.0);
        let cfg = McConfig {
            rounds: 500,
            seed: 42,
        };
        let a = run(&ts, &s, &model, &cfg).unwrap();
        let b = run(&ts, &s, &model, &cfg).unwrap();
        assert_eq!(a.rounds_with_miss, b.rounds_with_miss);
        assert_eq!(a.idle_slots, b.idle_slots);
    }
}
