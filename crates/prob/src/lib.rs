#![warn(missing_docs)]
//! # rt-prob — probabilistic execution times on top of CSP schedules
//!
//! The reproduced paper closes with its long-term objective: "to move from
//! the usual deterministic setting — where worst-case execution times are
//! considered — to probabilistic settings — e.g. where a probability
//! distribution over execution times is known for each task"
//! (Section VIII). This crate is that step, built on the paper's own
//! anomaly-avoidance policy (idling on early completion, remark after
//! Theorem 1), which makes each job's slot allocation deterministic and
//! the analysis *exact*:
//!
//! * [`pmf`] — discrete execution-time distributions with convolution,
//!   quantiles and exceedance probabilities;
//! * [`model`] — per-task models (deterministic / uniform / two-point
//!   overrun);
//! * [`response`] — exact response-time distributions and deadline-miss
//!   probabilities of a schedule table under a model;
//! * [`monte_carlo`] — seeded empirical replay cross-validating the exact
//!   analysis;
//! * [`budget`] — quantile-based ("probabilistic WCET") budget sizing and
//!   the feasibility-versus-confidence tradeoff curve.
//!
//! ## Example
//!
//! ```
//! use rt_task::TaskSet;
//! use mgrts_core::csp2::Csp2Solver;
//! use rt_prob::{ExecModel, analyze_all, hyperperiod_miss_probability};
//!
//! let ts = TaskSet::running_example();
//! let schedule = Csp2Solver::new(&ts, 2).unwrap().solve()
//!     .verdict.schedule().unwrap().clone();
//! // 10% chance every job overruns to twice its WCET.
//! let model = ExecModel::with_overruns(&ts, 0.1, 2.0);
//! let timings = analyze_all(&ts, &schedule, &model).unwrap();
//! let p_miss = hyperperiod_miss_probability(&timings);
//! assert!(p_miss > 0.0 && p_miss < 1.0);
//! ```

pub mod budget;
pub mod model;
pub mod monte_carlo;
pub mod pmf;
pub mod response;

pub use budget::{quantile_budgets, tradeoff_curve, with_budgets, TradeoffPoint};
pub use model::{ExecModel, ModelError};
pub use monte_carlo::{run as monte_carlo_run, McConfig, McSummary, TaskMcStats};
pub use pmf::{Pmf, PmfError};
pub use response::{
    analyze_all, analyze_job, expected_idle_per_hyperperiod, hyperperiod_miss_probability,
    job_allocation, JobTiming,
};
