//! Quantile-based execution budgets: trading deadline-miss probability for
//! schedulability.
//!
//! Sizing every task at its full worst case can make an instance
//! infeasible even when overruns are rare. With a distribution per task,
//! one can instead budget each task at its `q`-quantile ("probabilistic
//! WCET at confidence `q`"), schedule the *smaller* budgets with the exact
//! CSP solvers, and bound the resulting per-job miss probability by
//! `1 − q`. This module builds those resized instances and the
//! feasibility-versus-confidence tradeoff curve — the natural bridge
//! between the paper's deterministic CSP machinery and its probabilistic
//! future work.

use rt_task::{Task, TaskError, TaskSet};

use crate::model::ExecModel;

/// Per-task budgets at confidence `q`: the smallest `b` with
/// `P(X ≤ b) ≥ q` for each task.
///
/// # Panics
/// Panics unless `0 < q ≤ 1` (propagated from [`crate::Pmf::quantile`]).
#[must_use]
pub fn quantile_budgets(model: &ExecModel, q: f64) -> Vec<u64> {
    (0..model.len()).map(|i| model.pmf(i).quantile(q)).collect()
}

/// Rebuild a task set with new execution budgets (same offsets, deadlines,
/// periods). Fails with the task model's own validation when a budget
/// exceeds its deadline or is zero.
pub fn with_budgets(ts: &TaskSet, budgets: &[u64]) -> Result<TaskSet, TaskError> {
    assert_eq!(budgets.len(), ts.len(), "one budget per task");
    let tasks: Result<Vec<Task>, TaskError> = ts
        .tasks()
        .iter()
        .zip(budgets)
        .map(|(t, &b)| Task::new(t.offset, b, t.deadline, t.period))
        .collect();
    TaskSet::new(tasks?)
}

/// One point of the tradeoff curve.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Confidence level of the budgets.
    pub q: f64,
    /// The per-task budgets.
    pub budgets: Vec<u64>,
    /// Whether the resized instance could even be *built* (budgets within
    /// deadlines) — `None` when construction failed.
    pub taskset: Option<TaskSet>,
    /// Upper bound on the probability a given job overruns its budget:
    /// `max_i P(Xi > budget_i)`.
    pub worst_job_overrun: f64,
}

/// Build the tradeoff curve for a list of confidence levels. Feasibility
/// of each point is left to the caller's solver of choice (the curve is
/// solver-independent data).
#[must_use]
pub fn tradeoff_curve(ts: &TaskSet, model: &ExecModel, qs: &[f64]) -> Vec<TradeoffPoint> {
    qs.iter()
        .map(|&q| {
            let budgets = quantile_budgets(model, q);
            let worst = (0..model.len())
                .map(|i| model.pmf(i).exceedance(budgets[i]))
                .fold(0.0, f64::max);
            TradeoffPoint {
                q,
                taskset: with_budgets(ts, &budgets).ok(),
                budgets,
                worst_job_overrun: worst,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::Pmf;

    #[test]
    fn quantile_budgets_monotone_in_q() {
        let ts = TaskSet::running_example();
        let model = ExecModel::uniform_to_wcet(&ts);
        let low = quantile_budgets(&model, 0.5);
        let high = quantile_budgets(&model, 1.0);
        for (l, h) in low.iter().zip(&high) {
            assert!(l <= h);
        }
        // q = 1 recovers the WCETs.
        let wcets: Vec<u64> = ts.tasks().iter().map(|t| t.wcet).collect();
        assert_eq!(high, wcets);
    }

    #[test]
    fn with_budgets_rebuilds() {
        let ts = TaskSet::running_example();
        let resized = with_budgets(&ts, &[1, 2, 1]).unwrap();
        assert_eq!(resized.task(1).wcet, 2);
        assert_eq!(resized.task(1).deadline, 4);
        // Budget 0 or beyond a deadline is rejected by task validation.
        assert!(with_budgets(&ts, &[0, 2, 1]).is_err());
        assert!(with_budgets(&ts, &[3, 2, 1]).is_err()); // D1 = 2 < 3
    }

    #[test]
    fn overrun_bound_matches_exceedance() {
        let ts = TaskSet::running_example();
        // Heavy-tailed model: exceeds WCET 30% of the time.
        let pmfs = vec![
            Pmf::new(vec![(1, 0.7), (2, 0.3)]).unwrap(),
            Pmf::new(vec![(3, 0.7), (5, 0.3)]).unwrap(),
            Pmf::new(vec![(2, 0.7), (3, 0.3)]).unwrap(),
        ];
        let model = ExecModel::new(pmfs, &ts).unwrap();
        let curve = tradeoff_curve(&ts, &model, &[0.7, 1.0]);
        // q = 0.7 budgets at the 70th percentile: overrun prob 0.3.
        assert!((curve[0].worst_job_overrun - 0.3).abs() < 1e-9);
        assert_eq!(curve[1].worst_job_overrun, 0.0);
        // q = 0.7 budgets are buildable (all ≤ deadlines).
        assert!(curve[0].taskset.is_some());
        // q = 1.0 here needs C2 = 5 > D2 = 4: unbuildable point, flagged
        // rather than panicking.
        assert!(curve[1].taskset.is_none());
    }

    #[test]
    fn smaller_budgets_can_recover_feasibility() {
        use mgrts_core::csp2::Csp2Solver;
        // Three always-busy tasks on two processors: infeasible at WCET.
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)]);
        assert!(!Csp2Solver::new(&ts, 2)
            .unwrap()
            .solve()
            .verdict
            .is_feasible());
        // Each task usually needs 1 tick; only 10% of jobs need 2.
        let pmfs = vec![Pmf::new(vec![(1, 0.9), (2, 0.1)]).unwrap(); 3];
        let model = ExecModel::new(pmfs, &ts).unwrap();
        let budgets = quantile_budgets(&model, 0.9);
        assert_eq!(budgets, vec![1, 1, 1]);
        let resized = with_budgets(&ts, &budgets).unwrap();
        assert!(Csp2Solver::new(&resized, 2)
            .unwrap()
            .solve()
            .verdict
            .is_feasible());
    }
}
