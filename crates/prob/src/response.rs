//! Exact probabilistic response-time analysis of a CSP schedule table.
//!
//! The paper's remark after Theorem 1 fixes the runtime policy: "If any
//! job of a task does not need the entire amount of time, then the
//! processor is considered idled in order to avoid scheduling anomalies."
//! Under that policy the table's allocation to each job is *deterministic*
//! — only how much of it the job consumes is random. The response time of
//! a job needing `X` units is therefore the offset of its `X`-th allocated
//! slot, a direct transform of the execution-time distribution: no
//! simulation and no convolution over interference is needed, which is
//! what makes this analysis exact.

use rt_task::{JobId, JobInstants, TaskError, TaskSet};

use mgrts_core::Schedule;

use crate::model::ExecModel;
use crate::pmf::Pmf;

/// Exact timing analysis of one job under a schedule table and a model.
#[derive(Debug, Clone)]
pub struct JobTiming {
    /// The analyzed job.
    pub job: JobId,
    /// Offsets (ticks after release, 0-based) of the slots the table
    /// allocates to this job, in chronological order.
    pub allocation: Vec<u64>,
    /// `(response, probability)` for each on-time completion: a job that
    /// draws `X ≤ |allocation|` finishes at `allocation[X−1] + 1` ticks
    /// after release.
    pub on_time: Vec<(u64, f64)>,
    /// Probability the drawn demand exceeds the allocation — under the
    /// idling policy this is exactly the job's deadline-miss probability.
    pub miss_prob: f64,
}

impl JobTiming {
    /// Expected response time conditioned on completing on time, or `None`
    /// when the job misses almost surely.
    #[must_use]
    pub fn mean_on_time_response(&self) -> Option<f64> {
        let mass: f64 = self.on_time.iter().map(|&(_, p)| p).sum();
        if mass <= 0.0 {
            return None;
        }
        Some(self.on_time.iter().map(|&(r, p)| r as f64 * p).sum::<f64>() / mass)
    }

    /// The conditional response-time distribution (renormalized on-time
    /// part), or `None` when the job misses almost surely.
    #[must_use]
    pub fn response_pmf(&self) -> Option<Pmf> {
        let mass: f64 = self.on_time.iter().map(|&(_, p)| p).sum();
        if mass <= 0.0 {
            return None;
        }
        Pmf::new(self.on_time.iter().map(|&(r, p)| (r, p / mass)).collect()).ok()
    }

    /// Expected number of allocated slots left unused (idled under the
    /// anomaly-avoidance policy), counting a missing job as using its full
    /// allocation.
    #[must_use]
    pub fn expected_idle(&self, pmf: &Pmf) -> f64 {
        let cap = self.allocation.len() as u64;
        let e_used: f64 = pmf
            .points()
            .iter()
            .map(|&(x, p)| x.min(cap) as f64 * p)
            .sum();
        cap as f64 - e_used
    }
}

/// Offsets after release of the slots `schedule` gives to `job`.
///
/// Constrained deadlines make each task's job windows disjoint modulo the
/// hyperperiod, so slot ownership is unambiguous.
#[must_use]
pub fn job_allocation(schedule: &Schedule, ji: &JobInstants, job: JobId) -> Vec<u64> {
    let release = ji.release_mod(job);
    let h = ji.hyperperiod();
    let deadline_len = ji.instants_mod(job).len() as u64;
    let mut offsets = Vec::new();
    for p in 0..deadline_len {
        let t = (release + p) % h;
        if schedule.processor_of(job.task, t).is_some() {
            offsets.push(p);
        }
    }
    offsets
}

/// Analyze one job.
#[must_use]
pub fn analyze_job(
    schedule: &Schedule,
    ji: &JobInstants,
    model: &ExecModel,
    job: JobId,
) -> JobTiming {
    let allocation = job_allocation(schedule, ji, job);
    let pmf = model.pmf(job.task);
    let cap = allocation.len() as u64;
    let mut on_time = Vec::new();
    let mut miss = 0.0;
    for &(x, p) in pmf.points() {
        if x == 0 {
            on_time.push((0, p));
        } else if x <= cap {
            on_time.push((allocation[(x - 1) as usize] + 1, p));
        } else {
            miss += p;
        }
    }
    JobTiming {
        job,
        allocation,
        on_time,
        miss_prob: miss,
    }
}

/// Analyze every job of every task over one hyperperiod.
pub fn analyze_all(
    ts: &TaskSet,
    schedule: &Schedule,
    model: &ExecModel,
) -> Result<Vec<JobTiming>, TaskError> {
    let ji = JobInstants::new(ts)?;
    let mut out = Vec::new();
    for i in 0..ts.len() {
        for k in 0..ji.jobs_of(i) {
            out.push(analyze_job(schedule, &ji, model, JobId { task: i, k }));
        }
    }
    Ok(out)
}

/// Probability at least one job misses in one hyperperiod, assuming
/// independent execution times across jobs:
/// `1 − Π(1 − miss_j)`.
#[must_use]
pub fn hyperperiod_miss_probability(timings: &[JobTiming]) -> f64 {
    1.0 - timings.iter().map(|t| 1.0 - t.miss_prob).product::<f64>()
}

/// Expected idle slots per hyperperiod reclaimed by early completions.
#[must_use]
pub fn expected_idle_per_hyperperiod(timings: &[JobTiming], model: &ExecModel) -> f64 {
    timings
        .iter()
        .map(|t| t.expected_idle(model.pmf(t.job.task)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrts_core::csp2::Csp2Solver;

    fn schedule_for(ts: &TaskSet, m: usize) -> Schedule {
        Csp2Solver::new(ts, m)
            .unwrap()
            .solve()
            .verdict
            .schedule()
            .expect("feasible")
            .clone()
    }

    #[test]
    fn deterministic_model_never_misses() {
        let ts = TaskSet::running_example();
        let s = schedule_for(&ts, 2);
        let model = ExecModel::deterministic(&ts);
        let timings = analyze_all(&ts, &s, &model).unwrap();
        assert_eq!(timings.len(), 13); // 6 + 3 + 4 jobs in H = 12
        for t in &timings {
            assert_eq!(t.miss_prob, 0.0, "job {:?}", t.job);
            assert_eq!(t.on_time.len(), 1);
            // Allocation matches the WCET in a feasible schedule.
            assert_eq!(
                t.allocation.len() as u64,
                ts.task(t.job.task).wcet,
                "job {:?}",
                t.job
            );
        }
        assert_eq!(hyperperiod_miss_probability(&timings), 0.0);
        // Deterministic = WCET ⇒ nothing reclaimed.
        assert_eq!(expected_idle_per_hyperperiod(&timings, &model), 0.0);
    }

    #[test]
    fn early_completion_shortens_response() {
        // One task alone: (O=0, C=2, D=3, T=3) on 1 processor.
        let ts = TaskSet::from_ocdt(&[(0, 2, 3, 3)]);
        let s = schedule_for(&ts, 1);
        let model = ExecModel::uniform_to_wcet(&ts); // X ∈ {1, 2}
        let timings = analyze_all(&ts, &s, &model).unwrap();
        for t in &timings {
            assert_eq!(t.miss_prob, 0.0);
            let m = t.mean_on_time_response().unwrap();
            // Response with X=1 strictly below response with X=2.
            let r_fast = t.allocation[0] + 1;
            let r_slow = t.allocation[1] + 1;
            assert!(m > r_fast as f64 - 1e-9 && m < r_slow as f64 + 1e-9);
            assert!((t.expected_idle(model.pmf(0)) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn overruns_yield_miss_probability() {
        let ts = TaskSet::running_example();
        let s = schedule_for(&ts, 2);
        let model = ExecModel::with_overruns(&ts, 0.25, 2.0);
        let timings = analyze_all(&ts, &s, &model).unwrap();
        for t in &timings {
            assert!((t.miss_prob - 0.25).abs() < 1e-12, "job {:?}", t.job);
        }
        let sys = hyperperiod_miss_probability(&timings);
        let expect = 1.0 - 0.75f64.powi(13);
        assert!((sys - expect).abs() < 1e-9);
    }

    #[test]
    fn response_pmf_renormalizes() {
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2)]);
        let s = schedule_for(&ts, 1);
        let model = ExecModel::with_overruns(&ts, 0.5, 3.0);
        let timings = analyze_all(&ts, &s, &model).unwrap();
        let pmf = timings[0].response_pmf().expect("half the mass on time");
        let total: f64 = pmf.points().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_handles_wrapped_windows() {
        // τ = (O=1, C=3, D=4, T=4), H = 4: the last job wraps past H.
        let ts = TaskSet::from_ocdt(&[(1, 3, 4, 4)]);
        let s = schedule_for(&ts, 1);
        let ji = JobInstants::new(&ts).unwrap();
        let timing = analyze_job(
            &s,
            &ji,
            &ExecModel::deterministic(&ts),
            JobId { task: 0, k: 0 },
        );
        assert_eq!(timing.allocation.len(), 3);
        assert!(timing.allocation.iter().all(|&p| p < 4));
        assert_eq!(timing.miss_prob, 0.0);
    }
}
