//! Discrete probability mass functions over integer execution times.
//!
//! The paper's long-term goal (Section VIII) is to move "from the usual
//! deterministic setting — where worst-case execution times are considered
//! — to probabilistic settings — e.g. where a probability distribution
//! over execution times is known for each task". [`Pmf`] is that
//! distribution: a finite map from integer durations to probabilities,
//! with the arithmetic (convolution, quantiles, exceedance) probabilistic
//! schedulability analysis is built from.

use rand::Rng;

/// Tolerance for "probabilities sum to one".
const NORM_EPS: f64 = 1e-9;

/// Errors building a [`Pmf`].
#[derive(Debug, Clone, PartialEq)]
pub enum PmfError {
    /// No support points given.
    Empty,
    /// A probability was negative or non-finite.
    BadProbability(f64),
    /// Probabilities summed to `sum`, not 1.
    NotNormalized(f64),
}

impl std::fmt::Display for PmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmfError::Empty => write!(f, "empty support"),
            PmfError::BadProbability(p) => write!(f, "bad probability {p}"),
            PmfError::NotNormalized(s) => write!(f, "probabilities sum to {s}, expected 1"),
        }
    }
}

impl std::error::Error for PmfError {}

/// A probability mass function over `u64` values (execution times in
/// ticks). Support is sorted, duplicate-free, and every stored probability
/// is strictly positive.
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    /// `(value, probability)` pairs, sorted by value.
    points: Vec<(u64, f64)>,
}

impl Pmf {
    /// Build from `(value, probability)` pairs. Duplicates are merged,
    /// zero-probability points dropped; the result must normalize to 1.
    pub fn new(mut points: Vec<(u64, f64)>) -> Result<Pmf, PmfError> {
        if points.is_empty() {
            return Err(PmfError::Empty);
        }
        for &(_, p) in &points {
            if !p.is_finite() || p < 0.0 {
                return Err(PmfError::BadProbability(p));
            }
        }
        points.sort_unstable_by_key(|&(v, _)| v);
        let mut merged: Vec<(u64, f64)> = Vec::with_capacity(points.len());
        for (v, p) in points {
            match merged.last_mut() {
                Some((lv, lp)) if *lv == v => *lp += p,
                _ => merged.push((v, p)),
            }
        }
        merged.retain(|&(_, p)| p > 0.0);
        let sum: f64 = merged.iter().map(|&(_, p)| p).sum();
        if (sum - 1.0).abs() > NORM_EPS {
            return Err(PmfError::NotNormalized(sum));
        }
        if merged.is_empty() {
            return Err(PmfError::Empty);
        }
        Ok(Pmf { points: merged })
    }

    /// The deterministic distribution concentrated on `v`.
    #[must_use]
    pub fn delta(v: u64) -> Pmf {
        Pmf {
            points: vec![(v, 1.0)],
        }
    }

    /// Uniform over the integer range `lo..=hi`.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    #[must_use]
    pub fn uniform(lo: u64, hi: u64) -> Pmf {
        assert!(lo <= hi, "uniform range reversed");
        let n = (hi - lo + 1) as f64;
        Pmf {
            points: (lo..=hi).map(|v| (v, 1.0 / n)).collect(),
        }
    }

    /// The support/probability pairs, sorted by value.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Smallest support value.
    #[must_use]
    pub fn min(&self) -> u64 {
        self.points[0].0
    }

    /// Largest support value (the distribution's own worst case).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.points[self.points.len() - 1].0
    }

    /// `P(X = v)`.
    #[must_use]
    pub fn prob_of(&self, v: u64) -> f64 {
        self.points
            .binary_search_by_key(&v, |&(x, _)| x)
            .map_or(0.0, |i| self.points[i].1)
    }

    /// `P(X ≤ v)`.
    #[must_use]
    pub fn cdf(&self, v: u64) -> f64 {
        self.points
            .iter()
            .take_while(|&&(x, _)| x <= v)
            .map(|&(_, p)| p)
            .sum()
    }

    /// `P(X > v)` — the exceedance used for deadline-miss probabilities.
    #[must_use]
    pub fn exceedance(&self, v: u64) -> f64 {
        (1.0 - self.cdf(v)).max(0.0)
    }

    /// Smallest `v` with `P(X ≤ v) ≥ q`. `q = 1.0` returns the maximum;
    /// this is the probabilistic WCET at confidence `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q ≤ 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile level out of range");
        let mut acc = 0.0;
        for &(v, p) in &self.points {
            acc += p;
            if acc + NORM_EPS >= q {
                return v;
            }
        }
        self.max()
    }

    /// Expected value.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.points.iter().map(|&(v, p)| v as f64 * p).sum()
    }

    /// Variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.points
            .iter()
            .map(|&(v, p)| (v as f64 - mu).powi(2) * p)
            .sum()
    }

    /// Distribution of `X + Y` for independent `X`, `Y` (convolution) —
    /// the total demand of independent jobs.
    #[must_use]
    pub fn convolve(&self, other: &Pmf) -> Pmf {
        let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for &(x, px) in &self.points {
            for &(y, py) in &other.points {
                *acc.entry(x + y).or_insert(0.0) += px * py;
            }
        }
        Pmf {
            points: acc.into_iter().collect(),
        }
    }

    /// Distribution of `max(X, Y)` for independent `X`, `Y` — completion
    /// of parallel branches.
    #[must_use]
    pub fn max_of(&self, other: &Pmf) -> Pmf {
        let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for &(x, px) in &self.points {
            for &(y, py) in &other.points {
                *acc.entry(x.max(y)).or_insert(0.0) += px * py;
            }
        }
        Pmf {
            points: acc.into_iter().collect(),
        }
    }

    /// Map values through `f`, merging collisions (e.g. clamping).
    #[must_use]
    pub fn map_values(&self, f: impl Fn(u64) -> u64) -> Pmf {
        let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for &(v, p) in &self.points {
            *acc.entry(f(v)).or_insert(0.0) += p;
        }
        Pmf {
            points: acc.into_iter().collect(),
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.gen();
        for &(v, p) in &self.points {
            if u < p {
                return v;
            }
            u -= p;
        }
        self.max() // guard against float residue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert_eq!(Pmf::new(vec![]), Err(PmfError::Empty));
        assert!(matches!(
            Pmf::new(vec![(1, -0.5), (2, 1.5)]),
            Err(PmfError::BadProbability(_))
        ));
        assert!(matches!(
            Pmf::new(vec![(1, 0.3), (2, 0.3)]),
            Err(PmfError::NotNormalized(_))
        ));
        // Duplicates merge.
        let p = Pmf::new(vec![(2, 0.25), (2, 0.25), (1, 0.5)]).unwrap();
        assert_eq!(p.points(), &[(1, 0.5), (2, 0.5)]);
    }

    #[test]
    fn delta_and_uniform() {
        let d = Pmf::delta(3);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.min(), 3);
        assert_eq!(d.max(), 3);
        let u = Pmf::uniform(1, 4);
        assert!((u.mean() - 2.5).abs() < 1e-12);
        assert!((u.prob_of(2) - 0.25).abs() < 1e-12);
        assert_eq!(u.prob_of(5), 0.0);
    }

    #[test]
    fn cdf_exceedance_quantile() {
        let p = Pmf::new(vec![(1, 0.5), (2, 0.3), (4, 0.2)]).unwrap();
        assert!((p.cdf(1) - 0.5).abs() < 1e-12);
        assert!((p.cdf(3) - 0.8).abs() < 1e-12);
        assert!((p.exceedance(2) - 0.2).abs() < 1e-12);
        assert_eq!(p.exceedance(4), 0.0);
        assert_eq!(p.quantile(0.5), 1);
        assert_eq!(p.quantile(0.8), 2);
        assert_eq!(p.quantile(0.81), 4);
        assert_eq!(p.quantile(1.0), 4);
    }

    #[test]
    fn convolution_is_sum_distribution() {
        let a = Pmf::uniform(1, 2);
        let b = Pmf::uniform(1, 2);
        let s = a.convolve(&b);
        assert_eq!(s.points().len(), 3); // 2, 3, 4
        assert!((s.prob_of(2) - 0.25).abs() < 1e-12);
        assert!((s.prob_of(3) - 0.5).abs() < 1e-12);
        assert!((s.prob_of(4) - 0.25).abs() < 1e-12);
        assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-12);
    }

    #[test]
    fn max_of_independent() {
        let a = Pmf::uniform(1, 2);
        let b = Pmf::uniform(1, 2);
        let m = a.max_of(&b);
        assert!((m.prob_of(1) - 0.25).abs() < 1e-12);
        assert!((m.prob_of(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn map_values_clamps() {
        let p = Pmf::new(vec![(1, 0.5), (5, 0.5)]).unwrap();
        let clamped = p.map_values(|v| v.min(3));
        assert!((clamped.prob_of(3) - 0.5).abs() < 1e-12);
        assert_eq!(clamped.max(), 3);
    }

    #[test]
    fn sampling_matches_distribution() {
        let p = Pmf::new(vec![(1, 0.7), (3, 0.3)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let ones = (0..n).filter(|_| p.sample(&mut rng) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.7).abs() < 0.02, "sampled frequency {freq}");
    }

    #[test]
    fn convolution_chain_mean_linear() {
        // Mean of the sum of 5 uniforms = 5 × mean.
        let u = Pmf::uniform(1, 3);
        let total = (0..4).fold(u.clone(), |acc, _| acc.convolve(&u));
        assert!((total.mean() - 5.0 * u.mean()).abs() < 1e-9);
        assert_eq!(total.min(), 5);
        assert_eq!(total.max(), 15);
    }
}
