//! Property-based tests on the distribution arithmetic.

use proptest::prelude::*;

use rt_prob::Pmf;

/// Random normalized PMFs over small supports.
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    proptest::collection::vec((0u64..20, 1u32..100), 1..6).prop_map(|raw| {
        let total: u32 = raw.iter().map(|&(_, w)| w).sum();
        let points: Vec<(u64, f64)> = raw
            .into_iter()
            .map(|(v, w)| (v, f64::from(w) / f64::from(total)))
            .collect();
        Pmf::new(points).expect("normalized by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mass_is_one(p in arb_pmf()) {
        let total: f64 = p.points().iter().map(|&(_, q)| q).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_monotone_and_bounded(p in arb_pmf(), v in 0u64..25) {
        let c = p.cdf(v);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        prop_assert!(p.cdf(v + 1) + 1e-12 >= c);
        prop_assert!((p.cdf(v) + p.exceedance(v) - 1.0).abs() < 1e-9);
        prop_assert!((p.cdf(p.max()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf(p in arb_pmf(), q in 0.01f64..1.0) {
        let v = p.quantile(q);
        prop_assert!(p.cdf(v) + 1e-9 >= q);
        if v > p.min() {
            prop_assert!(p.cdf(v - 1) < q + 1e-9);
        }
    }

    #[test]
    fn convolution_properties(a in arb_pmf(), b in arb_pmf()) {
        let s = a.convolve(&b);
        let sym = b.convolve(&a);
        // Commutative up to float summation order, mean/support-additive.
        prop_assert_eq!(s.points().len(), sym.points().len());
        for (&(v1, p1), &(v2, p2)) in s.points().iter().zip(sym.points()) {
            prop_assert_eq!(v1, v2);
            prop_assert!((p1 - p2).abs() < 1e-12);
        }
        prop_assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-9);
        prop_assert_eq!(s.min(), a.min() + b.min());
        prop_assert_eq!(s.max(), a.max() + b.max());
        // Variance additive for independent sums.
        prop_assert!((s.variance() - (a.variance() + b.variance())).abs() < 1e-6);
    }

    #[test]
    fn delta_is_convolution_identity(a in arb_pmf()) {
        let shifted = a.convolve(&Pmf::delta(0));
        prop_assert_eq!(shifted.points(), a.points());
    }

    #[test]
    fn max_of_dominates_components(a in arb_pmf(), b in arb_pmf()) {
        let m = a.max_of(&b);
        prop_assert_eq!(m.max(), a.max().max(b.max()));
        prop_assert_eq!(m.min(), a.min().max(b.min()));
        prop_assert!(m.mean() + 1e-9 >= a.mean().max(b.mean()));
    }

    #[test]
    fn map_values_preserves_mass(a in arb_pmf(), cap in 0u64..25) {
        let clamped = a.map_values(|v| v.min(cap));
        let total: f64 = clamped.points().iter().map(|&(_, q)| q).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(clamped.max() <= cap.max(a.min().min(cap)));
    }
}
