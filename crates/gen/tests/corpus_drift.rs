//! Seed-corpus drift guard: the committed corpus under `bench/corpus/`
//! pins the generator's instance stream. Any change to the samplers that
//! silently alters generated instances — which would desynchronize every
//! campaign record store, shard hash and baseline out there — fails this
//! test loudly instead.
//!
//! After an *intentional* generator change, regenerate the pin:
//!
//! ```console
//! MGRTS_REGEN_SEED_CORPUS=1 cargo test -p rt-gen --test corpus_drift
//! ```
//!
//! and commit the new `bench/corpus/seed_corpus.json` together with fresh
//! campaign baselines (`bench/baselines/`).

use std::path::PathBuf;

use rt_gen::{Corpus, GeneratorConfig};

const MASTER_SEED: u64 = 2009;
const COUNT: u64 = 16;

fn corpus_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench/corpus/seed_corpus.json"
    ))
}

#[test]
fn committed_seed_corpus_is_reproducible() {
    let path = corpus_path();
    if std::env::var_os("MGRTS_REGEN_SEED_CORPUS").is_some() {
        let corpus = Corpus::generate(GeneratorConfig::table1(), MASTER_SEED, COUNT);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        corpus.save(&path).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let corpus = Corpus::load(&path).unwrap_or_else(|e| {
        panic!(
            "missing/broken {} ({e}); regenerate with MGRTS_REGEN_SEED_CORPUS=1",
            path.display()
        )
    });
    // The pin must cover the workload the campaigns actually draw from.
    assert_eq!(corpus.config, GeneratorConfig::table1());
    assert_eq!(corpus.master_seed, MASTER_SEED);
    assert_eq!(corpus.problems.len() as u64, COUNT);
    assert!(
        corpus.is_reproducible(),
        "generator drift: the sampler no longer reproduces the committed \
         instance stream. If the change is intentional, regenerate the \
         corpus (MGRTS_REGEN_SEED_CORPUS=1) and refresh bench/baselines/."
    );
}
