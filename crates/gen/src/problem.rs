//! Whole-problem generation: a task set plus a processor count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rt_task::TaskSet;

use crate::sampler::{sample_task, GeneratorConfig, MSpec};

/// A generated MGRTS instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// The task set.
    pub taskset: TaskSet,
    /// Processor count `m`.
    pub m: usize,
    /// The seed that produced this instance (for replay and bug reports).
    pub seed: u64,
}

impl Problem {
    /// Utilization ratio `r = U/m` (Section II).
    #[must_use]
    pub fn utilization_ratio(&self) -> f64 {
        self.taskset.utilization_ratio(self.m)
    }

    /// The `r > 1` pruning filter of Table II (exact arithmetic).
    #[must_use]
    pub fn filtered_out(&self) -> bool {
        self.taskset.utilization_exceeds(self.m)
    }
}

/// Deterministic, seeded problem generator.
#[derive(Debug, Clone)]
pub struct ProblemGenerator {
    cfg: GeneratorConfig,
    master_seed: u64,
}

impl ProblemGenerator {
    /// A generator for the given configuration; `master_seed` fixes the
    /// whole stream of instances.
    #[must_use]
    pub fn new(cfg: GeneratorConfig, master_seed: u64) -> Self {
        ProblemGenerator { cfg, master_seed }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Generate the `index`-th instance of the stream. Instances are
    /// independent of one another: `nth(i)` never depends on whether
    /// `nth(j)` was generated.
    #[must_use]
    pub fn nth(&self, index: u64) -> Problem {
        // Derive a per-instance seed by mixing (SplitMix64 finalizer).
        let seed = mix(self.master_seed ^ mix(index.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        let mut rng = SmallRng::seed_from_u64(seed);
        let tasks = (0..self.cfg.n)
            .map(|_| sample_task(&mut rng, &self.cfg))
            .collect();
        let taskset = TaskSet::new(tasks).expect("n ≥ 1");
        let m = match self.cfg.m {
            MSpec::Fixed(m) => m,
            MSpec::UniformBelowN => rng.gen_range(1..self.cfg.n.max(2)),
            MSpec::MinUtilization => taskset.min_processors(),
        };
        Problem { taskset, m, seed }
    }

    /// Generate instances `0..count` eagerly.
    #[must_use]
    pub fn batch(&self, count: u64) -> Vec<Problem> {
        (0..count).map(|i| self.nth(i)).collect()
    }

    /// The `index`-th instance of the stream whose utilization ratio falls
    /// in `[lo, hi)` — deterministic rejection sampling over the underlying
    /// stream, so campaign shards can ask for "the k-th instance of this
    /// utilization band" independently and in any order.
    ///
    /// Scans at most `max_scan` raw instances; returns `None` when the band
    /// is too rare (the caller treats this as a manifest error).
    #[must_use]
    pub fn nth_in_band(&self, index: u64, lo: f64, hi: f64, max_scan: u64) -> Option<Problem> {
        let mut seen = 0u64;
        for raw in 0..max_scan {
            let p = self.nth(raw);
            let r = p.utilization_ratio();
            if r >= lo && r < hi {
                if seen == index {
                    return Some(p);
                }
                seen += 1;
            }
        }
        None
    }
}

/// Derive a sub-stream seed for a named slice of a campaign grid (a cell,
/// a shard) from the campaign's master seed: FNV-1a over the tag, mixed
/// with the master seed through the SplitMix64 finalizer. Deterministic,
/// stable across platforms, and independent for distinct tags.
#[must_use]
pub fn derive_stream_seed(master_seed: u64, tag: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in tag.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(master_seed ^ h)
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::ParamOrder;

    #[test]
    fn determinism() {
        let g1 = ProblemGenerator::new(GeneratorConfig::table1(), 77);
        let g2 = ProblemGenerator::new(GeneratorConfig::table1(), 77);
        assert_eq!(g1.nth(13), g2.nth(13));
        assert_eq!(g1.batch(5), g2.batch(5));
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = ProblemGenerator::new(GeneratorConfig::table1(), 1);
        let g2 = ProblemGenerator::new(GeneratorConfig::table1(), 2);
        assert_ne!(g1.nth(0), g2.nth(0));
    }

    #[test]
    fn nth_is_random_access() {
        let g = ProblemGenerator::new(GeneratorConfig::table1(), 5);
        let direct = g.nth(42);
        let via_batch = g.batch(43).pop().unwrap();
        assert_eq!(direct, via_batch);
    }

    #[test]
    fn table1_shape() {
        let g = ProblemGenerator::new(GeneratorConfig::table1(), 0);
        for p in g.batch(50) {
            assert_eq!(p.taskset.len(), 10);
            assert_eq!(p.m, 5);
            assert!(p.taskset.max_period() <= 7);
        }
    }

    #[test]
    fn table4_m_is_min_utilization() {
        let g = ProblemGenerator::new(GeneratorConfig::table4(8), 0);
        for p in g.batch(50) {
            assert_eq!(p.m, p.taskset.min_processors());
            assert!(!p.filtered_out(), "mmin never triggers the r>1 filter");
        }
    }

    #[test]
    fn uniform_m_respects_bounds() {
        let cfg = GeneratorConfig {
            m: MSpec::UniformBelowN,
            ..GeneratorConfig::table1()
        };
        let g = ProblemGenerator::new(cfg, 9);
        for p in g.batch(100) {
            assert!(p.m >= 1 && p.m < 10);
        }
    }

    #[test]
    fn utilization_ratio_distribution_peaks_near_one() {
        // Table III: for the paper's parameters the instance mass centres
        // around r ∈ [0.8, 1.1]. Check the bulk falls in a generous band.
        let g = ProblemGenerator::new(GeneratorConfig::table1(), 2009);
        let rs: Vec<f64> = g
            .batch(500)
            .iter()
            .map(Problem::utilization_ratio)
            .collect();
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        assert!(
            (0.7..1.2).contains(&mean),
            "mean utilization ratio {mean} out of expected band"
        );
    }

    #[test]
    fn nth_in_band_is_deterministic_and_random_access() {
        let g = ProblemGenerator::new(GeneratorConfig::table1(), 11);
        let a = g.nth_in_band(3, 0.8, 1.2, 10_000).unwrap();
        let b = g.nth_in_band(3, 0.8, 1.2, 10_000).unwrap();
        assert_eq!(a, b);
        assert!((0.8..1.2).contains(&a.utilization_ratio()));
        // Band members appear in raw stream order: index k+1 sits later in
        // the stream than index k.
        let later = g.nth_in_band(4, 0.8, 1.2, 10_000).unwrap();
        assert_ne!(a, later);
    }

    #[test]
    fn nth_in_band_rejects_impossible_bands() {
        let g = ProblemGenerator::new(GeneratorConfig::table1(), 11);
        assert!(g.nth_in_band(0, 5.0, 6.0, 500).is_none());
    }

    #[test]
    fn stream_seed_derivation_separates_tags() {
        let a = derive_stream_seed(2009, "cell/0");
        let b = derive_stream_seed(2009, "cell/1");
        assert_ne!(a, b);
        assert_eq!(a, derive_stream_seed(2009, "cell/0"));
        assert_ne!(a, derive_stream_seed(2010, "cell/0"));
    }

    #[test]
    fn order_field_is_respected() {
        let cfg = GeneratorConfig {
            order: ParamOrder::PeriodFirst,
            ..GeneratorConfig::table1()
        };
        let g = ProblemGenerator::new(cfg, 3);
        // Smoke test: generation works for every ordering variant.
        assert_eq!(g.nth(0).taskset.len(), 10);
    }
}
