//! Random heterogeneous rate matrices for the Section VI-A extension
//! experiments.
//!
//! The paper describes but does not evaluate heterogeneous platforms; our
//! extension benches need workloads for them. [`RateMatrixGen`] produces
//! `n × m` integer rate matrices where every task can run somewhere and a
//! configurable fraction of task-processor pairs is forbidden
//! (`si,j = 0`, the dedicated-processor case).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rt_platform::Platform;

/// Generator for random execution-rate matrices.
#[derive(Debug, Clone)]
pub struct RateMatrixGen {
    /// Maximum rate (rates are `U(1..=max_rate)` where allowed).
    pub max_rate: u64,
    /// Probability that a pair is forbidden (`si,j = 0`).
    pub forbid_prob: f64,
}

impl Default for RateMatrixGen {
    fn default() -> Self {
        RateMatrixGen {
            max_rate: 3,
            forbid_prob: 0.25,
        }
    }
}

impl RateMatrixGen {
    /// Generate a valid platform for `n` tasks on `m` processors.
    /// Every row keeps at least one non-zero entry.
    #[must_use]
    pub fn generate(&self, n: usize, m: usize, seed: u64) -> Platform {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rates = vec![vec![0u64; m]; n];
        for row in rates.iter_mut() {
            for cell in row.iter_mut() {
                *cell = if rng.gen_bool(self.forbid_prob) {
                    0
                } else {
                    rng.gen_range(1..=self.max_rate)
                };
            }
            if row.iter().all(|&s| s == 0) {
                // Repair: grant one random processor.
                let j = rng.gen_range(0..m);
                row[j] = rng.gen_range(1..=self.max_rate);
            }
        }
        Platform::heterogeneous(rates).expect("repaired matrix is valid")
    }

    /// Generate a platform with unit rates where allowed (`si,j ∈ {0, 1}`):
    /// the "restricted migration" shape where heterogeneity is purely about
    /// eligibility, keeping constraint (11) equivalent to (5) on eligible
    /// pairs.
    #[must_use]
    pub fn generate_unit(&self, n: usize, m: usize, seed: u64) -> Platform {
        let gen = RateMatrixGen {
            max_rate: 1,
            forbid_prob: self.forbid_prob,
        };
        gen.generate(n, m, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_is_servable() {
        let g = RateMatrixGen {
            max_rate: 2,
            forbid_prob: 0.9, // aggressive: forces the repair path
        };
        for seed in 0..50 {
            let p = g.generate(6, 3, seed);
            for i in 0..6 {
                assert!(p.eligibility_count(i) >= 1, "seed {seed} task {i}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = RateMatrixGen::default();
        assert_eq!(g.generate(4, 3, 7), g.generate(4, 3, 7));
    }

    #[test]
    fn unit_rates_are_binary() {
        let g = RateMatrixGen::default();
        let p = g.generate_unit(5, 4, 3);
        for i in 0..5 {
            for j in 0..4 {
                assert!(p.rate(i, j) <= 1);
            }
        }
    }

    #[test]
    fn rates_within_bounds() {
        let g = RateMatrixGen {
            max_rate: 5,
            forbid_prob: 0.0,
        };
        let p = g.generate(3, 3, 0);
        for i in 0..3 {
            for j in 0..3 {
                assert!((1..=5).contains(&p.rate(i, j)));
            }
        }
    }
}
