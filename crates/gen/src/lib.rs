#![warn(missing_docs)]
//! # rt-gen — random MGRTS problem generators
//!
//! Reproduces Section VII-A of the paper. A random problem is a task set
//! plus a processor count, generated under the constraints
//! `1 ≤ Ci ≤ Di ≤ Ti ≤ Tmax` and `1 < m < n`.
//!
//! The paper observes that the order in which `(Ci, Di, Ti)` are sampled
//! changes the induced distribution and settles on sampling `Di` first, then
//! `Ci` and `Ti` independently given `Di`. All 3! orderings collapse to
//! three distinct distributions, offered as [`ParamOrder`]:
//!
//! * [`ParamOrder::DeadlineFirst`] — the paper's choice;
//! * [`ParamOrder::WcetFirst`] (`Ci → Di → Ti`) — favours large periods;
//! * [`ParamOrder::PeriodFirst`] (`Ti → Di → Ci`) — favours short WCETs.
//!
//! Everything is seeded and deterministic: the same [`GeneratorConfig`] and
//! seed always produce the same instances, byte for byte.

pub mod corpus;
pub mod hetero;
pub mod problem;
pub mod sampler;

pub use corpus::{Corpus, CorpusError};
pub use hetero::RateMatrixGen;
pub use problem::{derive_stream_seed, Problem, ProblemGenerator};
pub use sampler::{GeneratorConfig, MSpec, ParamOrder};
