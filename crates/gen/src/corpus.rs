//! Corpus persistence: save and reload generated instance sets, so
//! experiment tables can be re-aggregated (or re-run under different
//! budgets) against byte-identical workloads.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::problem::Problem;
use crate::sampler::GeneratorConfig;

/// A saved corpus: the generator configuration plus the materialized
/// instances (redundant by construction — the config + master seed
/// regenerate the same stream — but storing both makes corpora
/// self-describing and guards against generator drift).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// Generator configuration used.
    pub config: GeneratorConfig,
    /// Master seed of the stream.
    pub master_seed: u64,
    /// The instances, in stream order.
    pub problems: Vec<Problem>,
}

/// I/O or format failure while loading/saving a corpus.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Format(serde_json::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus I/O error: {e}"),
            CorpusError::Format(e) => write!(f, "corpus format error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<serde_json::Error> for CorpusError {
    fn from(e: serde_json::Error) -> Self {
        CorpusError::Format(e)
    }
}

impl Corpus {
    /// Materialize a corpus from a generator.
    #[must_use]
    pub fn generate(config: GeneratorConfig, master_seed: u64, count: u64) -> Self {
        let gen = crate::problem::ProblemGenerator::new(config, master_seed);
        Corpus {
            config,
            master_seed,
            problems: gen.batch(count),
        }
    }

    /// Write as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), CorpusError> {
        let file = File::create(path)?;
        serde_json::to_writer_pretty(BufWriter::new(file), self)?;
        Ok(())
    }

    /// Read back from JSON.
    pub fn load(path: &Path) -> Result<Self, CorpusError> {
        let file = File::open(path)?;
        Ok(serde_json::from_reader(BufReader::new(file))?)
    }

    /// Check that the stored instances match regeneration from the stored
    /// config and seed (guards against generator drift across versions).
    #[must_use]
    pub fn is_reproducible(&self) -> bool {
        let gen = crate::problem::ProblemGenerator::new(self.config, self.master_seed);
        self.problems
            .iter()
            .enumerate()
            .all(|(i, p)| &gen.nth(i as u64) == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::GeneratorConfig;

    #[test]
    fn round_trip_through_disk() {
        let corpus = Corpus::generate(GeneratorConfig::table1(), 99, 10);
        let dir = std::env::temp_dir().join("mgrts-corpus-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        corpus.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(corpus, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reproducibility_check() {
        let corpus = Corpus::generate(GeneratorConfig::table1(), 7, 5);
        assert!(corpus.is_reproducible());
        let mut tampered = corpus.clone();
        tampered.master_seed ^= 1;
        assert!(!tampered.is_reproducible());
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("mgrts-corpus-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json").unwrap();
        assert!(matches!(Corpus::load(&path), Err(CorpusError::Format(_))));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            Corpus::load(Path::new("/nonexistent/x.json")),
            Err(CorpusError::Io(_))
        ));
    }
}
