//! Task-parameter sampling under `1 ≤ Ci ≤ Di ≤ Ti ≤ Tmax`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rt_task::{Task, Time};

/// Order in which `(Ci, Di, Ti)` are drawn (Section VII-A). Each ordering
/// induces a different distribution over valid triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ParamOrder {
    /// The paper's choice: `Di ~ U(1..Tmax)`, then `Ci ~ U(1..Di)` and
    /// `Ti ~ U(Di..Tmax)` (independent given `Di`).
    #[default]
    DeadlineFirst,
    /// `Ci → Di → Ti`: favours large periods.
    WcetFirst,
    /// `Ti → Di → Ci`: favours short WCETs.
    PeriodFirst,
}

/// How the processor count is chosen for a generated problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MSpec {
    /// Fixed `m` (Table I uses `m = 5`).
    Fixed(usize),
    /// Uniform over `1..n` ("m ∈ 1..(n-1)", Section VII-A).
    UniformBelowN,
    /// The minimum count passing the utilization filter:
    /// `mmin = ⌈Σ Ci/Ti⌉` (Table IV).
    MinUtilization,
}

/// Full generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of tasks `n` (> 2 per the paper).
    pub n: usize,
    /// Processor-count rule.
    pub m: MSpec,
    /// Maximum period `Tmax` (> 1 per the paper).
    pub t_max: Time,
    /// Sampling order for `(Ci, Di, Ti)`.
    pub order: ParamOrder,
    /// When true all offsets are 0 (synchronous release); otherwise
    /// `Oi ~ U(0..Ti-1)`.
    pub synchronous: bool,
}

impl GeneratorConfig {
    /// The Table I / II / III workload: 500 problems with `m = 5`, `n = 10`,
    /// `Tmax = 7`.
    #[must_use]
    pub fn table1() -> Self {
        GeneratorConfig {
            n: 10,
            m: MSpec::Fixed(5),
            t_max: 7,
            order: ParamOrder::DeadlineFirst,
            synchronous: false,
        }
    }

    /// The Table IV workload for a given `n`: `Tmax = 15`,
    /// `m = ⌈Σ Ci/Ti⌉`.
    #[must_use]
    pub fn table4(n: usize) -> Self {
        GeneratorConfig {
            n,
            m: MSpec::MinUtilization,
            t_max: 15,
            order: ParamOrder::DeadlineFirst,
            synchronous: false,
        }
    }
}

/// Draw one task under the configured ordering. `U(a..=b)` throughout, as in
/// the paper's `U(min..max)` notation.
pub fn sample_task<R: Rng>(rng: &mut R, cfg: &GeneratorConfig) -> Task {
    let t_max = cfg.t_max;
    debug_assert!(t_max >= 1);
    let (c, d, t) = match cfg.order {
        ParamOrder::DeadlineFirst => {
            let d = rng.gen_range(1..=t_max);
            let c = rng.gen_range(1..=d);
            let t = rng.gen_range(d..=t_max);
            (c, d, t)
        }
        ParamOrder::WcetFirst => {
            let c = rng.gen_range(1..=t_max);
            let d = rng.gen_range(c..=t_max);
            let t = rng.gen_range(d..=t_max);
            (c, d, t)
        }
        ParamOrder::PeriodFirst => {
            let t = rng.gen_range(1..=t_max);
            let d = rng.gen_range(1..=t);
            let c = rng.gen_range(1..=d);
            (c, d, t)
        }
    };
    let o = if cfg.synchronous {
        0
    } else {
        rng.gen_range(0..t)
    };
    Task::new(o, c, d, t).expect("sampled parameters satisfy 1 ≤ C ≤ D ≤ T")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_valid(order: ParamOrder) {
        let cfg = GeneratorConfig {
            n: 5,
            m: MSpec::Fixed(2),
            t_max: 9,
            order,
            synchronous: false,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let t = sample_task(&mut rng, &cfg);
            assert!(1 <= t.wcet && t.wcet <= t.deadline);
            assert!(t.deadline <= t.period);
            assert!(t.period <= 9);
            assert!(t.offset < t.period);
        }
    }

    #[test]
    fn all_orders_respect_constraints() {
        check_valid(ParamOrder::DeadlineFirst);
        check_valid(ParamOrder::WcetFirst);
        check_valid(ParamOrder::PeriodFirst);
    }

    #[test]
    fn synchronous_zeroes_offsets() {
        let cfg = GeneratorConfig {
            synchronous: true,
            ..GeneratorConfig::table1()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sample_task(&mut rng, &cfg).offset, 0);
        }
    }

    #[test]
    fn orderings_have_distinct_biases() {
        // WcetFirst should produce larger periods on average than
        // PeriodFirst (the paper's motivation for choosing the middle way).
        let mut rng = SmallRng::seed_from_u64(3);
        let mut mean_period = |order| {
            let cfg = GeneratorConfig {
                n: 1,
                m: MSpec::Fixed(1),
                t_max: 15,
                order,
                synchronous: true,
            };
            let mut rng2 = SmallRng::seed_from_u64(rng.gen());
            (0..4000)
                .map(|_| sample_task(&mut rng2, &cfg).period as f64)
                .sum::<f64>()
                / 4000.0
        };
        let wf = mean_period(ParamOrder::WcetFirst);
        let pf = mean_period(ParamOrder::PeriodFirst);
        assert!(
            wf > pf + 1.0,
            "WcetFirst mean period {wf} should exceed PeriodFirst {pf}"
        );
    }

    #[test]
    fn tmax_one_is_degenerate_but_valid() {
        let cfg = GeneratorConfig {
            n: 3,
            m: MSpec::Fixed(2),
            t_max: 1,
            order: ParamOrder::DeadlineFirst,
            synchronous: false,
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let t = sample_task(&mut rng, &cfg);
        assert_eq!((t.wcet, t.deadline, t.period, t.offset), (1, 1, 1, 0));
    }

    #[test]
    fn presets_match_paper() {
        let t1 = GeneratorConfig::table1();
        assert_eq!((t1.n, t1.t_max), (10, 7));
        assert_eq!(t1.m, MSpec::Fixed(5));
        let t4 = GeneratorConfig::table4(64);
        assert_eq!((t4.n, t4.t_max), (64, 15));
        assert_eq!(t4.m, MSpec::MinUtilization);
    }
}
