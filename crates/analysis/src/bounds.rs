//! Utilization-based feasibility bounds for implicit-deadline systems on
//! identical multiprocessors.
//!
//! * **Exact** (P-fair theorem, Baruah–Cohen–Plaxton–Varvel 1996): an
//!   implicit-deadline periodic system with integer parameters is feasible
//!   on `m` identical processors in *discrete* time **iff** `U ≤ m` and
//!   `ui ≤ 1` for every task. Because both directions hold, this test
//!   decides every implicit-deadline instance outright — the exact CSP
//!   search is only needed for constrained deadlines.
//! * **GFB** (Goossens–Funk–Baruah 2003): `U ≤ m − (m−1)·umax` proves
//!   global-EDF schedulability. Strictly weaker than the P-fair condition
//!   for feasibility, but it additionally certifies that plain global EDF
//!   (a practical runtime policy, no CSP table needed) suffices — the
//!   report keeps both for that reason.

use rt_task::TaskSet;

use crate::result::TestOutcome;

/// Exact utilization comparison `U ≤ m` in integer arithmetic:
/// `Σ Ci·(L/Ti) ≤ m·L` with `L = lcm(Ti)`, avoiding any float rounding.
#[must_use]
pub fn utilization_at_most(ts: &TaskSet, m: usize) -> bool {
    match (ts.demand_per_hyperperiod(), ts.hyperperiod()) {
        (Ok(demand), Ok(h)) => demand <= m as u64 * h,
        // Hyperperiod overflow: fall back to floats (parameters this large
        // do not appear in any experiment; documented best-effort).
        _ => ts.utilization() <= m as f64 + 1e-9,
    }
}

/// The exact implicit-deadline feasibility test (P-fair theorem).
///
/// Returns [`TestOutcome::Inapplicable`] unless every deadline equals its
/// period.
#[must_use]
pub fn pfair_exact_test(ts: &TaskSet, m: usize) -> TestOutcome {
    if !ts.tasks().iter().all(rt_task::Task::is_implicit) {
        return TestOutcome::Inapplicable;
    }
    // ui ≤ 1 holds by construction (Ci ≤ Di = Ti), so U ≤ m decides.
    if utilization_at_most(ts, m) {
        TestOutcome::Feasible
    } else {
        TestOutcome::Infeasible
    }
}

/// The GFB global-EDF bound `U ≤ m − (m−1)·umax` for implicit deadlines.
#[must_use]
pub fn gfb_test(ts: &TaskSet, m: usize) -> TestOutcome {
    if !ts.tasks().iter().all(rt_task::Task::is_implicit) {
        return TestOutcome::Inapplicable;
    }
    let umax = ts
        .tasks()
        .iter()
        .map(rt_task::Task::utilization)
        .fold(0.0, f64::max);
    let u = ts.utilization();
    if u <= m as f64 - (m as f64 - 1.0) * umax + 1e-9 {
        TestOutcome::Feasible
    } else {
        TestOutcome::Inconclusive
    }
}

/// Detail string for the report.
#[must_use]
pub fn gfb_detail(ts: &TaskSet, m: usize) -> String {
    let umax = ts
        .tasks()
        .iter()
        .map(rt_task::Task::utilization)
        .fold(0.0, f64::max);
    format!(
        "U={:.3}, umax={:.3}, bound={:.3}",
        ts.utilization(),
        umax,
        m as f64 - (m as f64 - 1.0) * umax
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfair_decides_implicit_instances() {
        // U = 1/2 + 1/2 + 1/2 = 1.5 → feasible on 2, infeasible on 1.
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 2, 4, 4), (0, 3, 6, 6)]);
        assert_eq!(pfair_exact_test(&ts, 2), TestOutcome::Feasible);
        assert_eq!(pfair_exact_test(&ts, 1), TestOutcome::Infeasible);
    }

    #[test]
    fn pfair_exact_at_the_boundary() {
        // U = exactly 2 on m = 2 — integer arithmetic must accept.
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 3, 3, 3)]);
        assert_eq!(pfair_exact_test(&ts, 2), TestOutcome::Feasible);
        assert_eq!(pfair_exact_test(&ts, 1), TestOutcome::Infeasible);
    }

    #[test]
    fn pfair_inapplicable_on_constrained() {
        let ts = TaskSet::running_example(); // τ3 has D < T
        assert_eq!(pfair_exact_test(&ts, 2), TestOutcome::Inapplicable);
    }

    #[test]
    fn gfb_bound_behaviour() {
        // Light tasks: U = 0.75, umax = 0.25, bound = 2 - 0.25 → pass.
        let ts = TaskSet::from_ocdt(&[(0, 1, 4, 4), (0, 1, 4, 4), (0, 1, 4, 4)]);
        assert_eq!(gfb_test(&ts, 2), TestOutcome::Feasible);
        // Exactly on the bound: umax = 0.75, U = 1.25 = 2 - 0.75 → pass.
        let on_bound = TaskSet::from_ocdt(&[(0, 3, 4, 4), (0, 1, 4, 4), (0, 1, 4, 4)]);
        assert_eq!(gfb_test(&on_bound, 2), TestOutcome::Feasible);
        // Dhall-style: one heavy task + enough light load defeats the
        // bound (umax = 0.9 → bound 1.1 < U = 1.9)…
        let heavy = TaskSet::from_ocdt(&[(0, 9, 10, 10), (0, 5, 10, 10), (0, 5, 10, 10)]);
        assert_eq!(gfb_test(&heavy, 2), TestOutcome::Inconclusive);
        // …but P-fair still decides it exactly: U = 1.9 ≤ 2.
        assert_eq!(pfair_exact_test(&heavy, 2), TestOutcome::Feasible);
    }

    #[test]
    fn gfb_inapplicable_on_constrained() {
        assert_eq!(
            gfb_test(&TaskSet::running_example(), 2),
            TestOutcome::Inapplicable
        );
    }

    #[test]
    fn utilization_comparison_is_integer_exact() {
        // 2/3 + 1/3 = 1 exactly; float summation of 1/3s would be shaky.
        let ts = TaskSet::from_ocdt(&[(0, 2, 3, 3), (0, 1, 3, 3)]);
        assert!(utilization_at_most(&ts, 1));
        let over = TaskSet::from_ocdt(&[(0, 2, 3, 3), (0, 1, 3, 3), (0, 1, 300, 300)]);
        assert!(!utilization_at_most(&over, 1));
        assert!(utilization_at_most(&over, 2));
    }
}
