//! Classic uniprocessor schedulability tests (the `m = 1` corner of the
//! problem space, and the per-core test behind partitioned baselines).
//!
//! * **Liu & Layland (1973)**: implicit-deadline RM is schedulable when
//!   `U ≤ n(2^{1/n} − 1)`.
//! * **Hyperbolic bound** (Bini–Buttazzo–Buttazzo 2003): RM is schedulable
//!   when `Π(ui + 1) ≤ 2` — strictly dominates Liu & Layland.
//! * **EDF exact** (implicit deadlines): feasible iff `U ≤ 1`.
//! * **Processor-demand criterion** (Baruah–Rosier–Howell 1990): a
//!   *synchronous* constrained-deadline system is EDF-feasible iff
//!   `dbf(ℓ) ≤ ℓ` at every absolute deadline `ℓ` up to the hyperperiod.
//!   Synchronous release is the worst case on a uniprocessor, so a pass
//!   also proves feasibility for arbitrary offsets; a fail proves
//!   infeasibility only when the set really is synchronous.

use rt_task::TaskSet;

use crate::bounds::utilization_at_most;
use crate::result::TestOutcome;

/// Liu & Layland's RM utilization bound `n(2^{1/n} − 1)`.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    n as f64 * (2f64.powf(1.0 / n as f64) - 1.0)
}

/// RM schedulability by the Liu & Layland bound (implicit deadlines,
/// single processor). Pass proves feasibility (RM would meet all
/// deadlines); fail is inconclusive — the bound is only sufficient.
#[must_use]
pub fn rm_liu_layland(ts: &TaskSet) -> TestOutcome {
    if !ts.tasks().iter().all(rt_task::Task::is_implicit) {
        return TestOutcome::Inapplicable;
    }
    if ts.utilization() <= liu_layland_bound(ts.len()) + 1e-9 {
        TestOutcome::Feasible
    } else {
        TestOutcome::Inconclusive
    }
}

/// RM schedulability by the hyperbolic bound `Π(ui+1) ≤ 2` (implicit
/// deadlines, single processor). Dominates [`rm_liu_layland`].
#[must_use]
pub fn rm_hyperbolic(ts: &TaskSet) -> TestOutcome {
    if !ts.tasks().iter().all(rt_task::Task::is_implicit) {
        return TestOutcome::Inapplicable;
    }
    let product: f64 = ts.tasks().iter().map(|t| t.utilization() + 1.0).product();
    if product <= 2.0 + 1e-9 {
        TestOutcome::Feasible
    } else {
        TestOutcome::Inconclusive
    }
}

/// Exact EDF test for implicit deadlines on one processor: `U ≤ 1`.
#[must_use]
pub fn edf_exact_implicit(ts: &TaskSet) -> TestOutcome {
    if !ts.tasks().iter().all(rt_task::Task::is_implicit) {
        return TestOutcome::Inapplicable;
    }
    if utilization_at_most(ts, 1) {
        TestOutcome::Feasible
    } else {
        TestOutcome::Infeasible
    }
}

/// Synchronous demand bound function `dbf(ℓ) = Σ max(0, ⌊(ℓ−Di)/Ti⌋+1)·Ci`.
#[must_use]
pub fn demand_bound(ts: &TaskSet, l: u64) -> u64 {
    ts.tasks()
        .iter()
        .map(|t| {
            if l >= t.deadline {
                ((l - t.deadline) / t.period + 1) * t.wcet
            } else {
                0
            }
        })
        .sum()
}

/// The processor-demand criterion on one processor.
///
/// * Pass (all check points satisfy `dbf(ℓ) ≤ ℓ`) → **Feasible** for any
///   offsets, because synchronous release maximizes demand on one
///   processor.
/// * Fail → **Infeasible** when the instance is synchronous (all offsets
///   equal), otherwise **Inconclusive**.
///
/// Check points are the absolute deadlines up to the hyperperiod; when the
/// hyperperiod overflows or exceeds `max_points` deadlines the test
/// abstains rather than silently truncating.
#[must_use]
pub fn processor_demand_test(ts: &TaskSet, max_points: usize) -> TestOutcome {
    if !utilization_at_most(ts, 1) {
        return TestOutcome::Infeasible;
    }
    let Ok(h) = ts.hyperperiod() else {
        return TestOutcome::Inconclusive;
    };
    let mut points: Vec<u64> = Vec::new();
    for t in ts.tasks() {
        let mut d = t.deadline;
        while d <= h {
            points.push(d);
            if points.len() > max_points {
                return TestOutcome::Inconclusive;
            }
            d += t.period;
        }
    }
    points.sort_unstable();
    points.dedup();
    let synchronous = ts.tasks().windows(2).all(|w| w[0].offset == w[1].offset);
    for &l in &points {
        if demand_bound(ts, l) > l {
            return if synchronous {
                TestOutcome::Infeasible
            } else {
                TestOutcome::Inconclusive
            };
        }
    }
    TestOutcome::Feasible
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_bound_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284271247).abs() < 1e-9);
        // n → ∞ limit is ln 2 ≈ 0.693.
        assert!(liu_layland_bound(1000) > 0.693);
        assert!(liu_layland_bound(1000) < 0.694);
    }

    #[test]
    fn ll_pass_and_abstain() {
        let light = TaskSet::from_ocdt(&[(0, 1, 4, 4), (0, 1, 4, 4)]); // U = 0.5
        assert_eq!(rm_liu_layland(&light), TestOutcome::Feasible);
        let heavy = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 2, 5, 5)]); // U = 0.9
        assert_eq!(rm_liu_layland(&heavy), TestOutcome::Inconclusive);
    }

    #[test]
    fn hyperbolic_dominates_ll() {
        // U = 0.5 + 0.333… = 0.833 > LL(2) = 0.828, but (1.5)(1.333) = 2.0
        // exactly → hyperbolic passes where LL abstains.
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 1, 3, 3)]);
        assert_eq!(rm_liu_layland(&ts), TestOutcome::Inconclusive);
        assert_eq!(rm_hyperbolic(&ts), TestOutcome::Feasible);
    }

    #[test]
    fn edf_exact_boundary() {
        let full = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 1, 2, 2)]); // U = 1
        assert_eq!(edf_exact_implicit(&full), TestOutcome::Feasible);
        let over = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 2, 3, 3)]); // U = 7/6
        assert_eq!(edf_exact_implicit(&over), TestOutcome::Infeasible);
    }

    #[test]
    fn dbf_values() {
        // Task (C=1, D=2, T=3): dbf jumps at 2, 5, 8, …
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 3)]);
        assert_eq!(demand_bound(&ts, 1), 0);
        assert_eq!(demand_bound(&ts, 2), 1);
        assert_eq!(demand_bound(&ts, 4), 1);
        assert_eq!(demand_bound(&ts, 5), 2);
        assert_eq!(demand_bound(&ts, 8), 3);
    }

    #[test]
    fn pdc_feasible_constrained() {
        // (C=1,D=1,T=2) + (C=1,D=2,T=2): dbf(1)=1, dbf(2)=2 → pass.
        let ts = TaskSet::from_ocdt(&[(0, 1, 1, 2), (0, 1, 2, 2)]);
        assert_eq!(processor_demand_test(&ts, 1000), TestOutcome::Feasible);
    }

    #[test]
    fn pdc_infeasible_synchronous() {
        // Both want the first instant: dbf(1) = 2 > 1.
        let ts = TaskSet::from_ocdt(&[(0, 1, 1, 2), (0, 1, 1, 2)]);
        assert_eq!(processor_demand_test(&ts, 1000), TestOutcome::Infeasible);
    }

    #[test]
    fn pdc_offset_system_abstains_on_fail() {
        // Same windows but offset apart — actually feasible; the sync
        // abstraction fails, so the test must abstain, not reject.
        let ts = TaskSet::from_ocdt(&[(0, 1, 1, 2), (1, 1, 1, 2)]);
        assert_eq!(processor_demand_test(&ts, 1000), TestOutcome::Inconclusive);
    }

    #[test]
    fn pdc_point_guard() {
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 1, 7, 7)]);
        assert_eq!(processor_demand_test(&ts, 2), TestOutcome::Inconclusive);
    }

    #[test]
    fn pdc_overutilized() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 1, 2, 2)]);
        assert_eq!(processor_demand_test(&ts, 1000), TestOutcome::Infeasible);
    }
}
