#![warn(missing_docs)]
//! # rt-analysis — polynomial-time schedulability tests
//!
//! The exact CSP route of the reproduced paper decides *every* instance
//! but pays combinatorial search for it. Decades of schedulability theory
//! provide cheap, sound-but-incomplete tests; this crate implements the
//! classic battery and wires it in front of the exact solvers:
//!
//! * [`bounds`] — the P-fair exact condition (`U ≤ m` iff feasible for
//!   implicit deadlines — Baruah–Cohen–Plaxton–Varvel) and the GFB
//!   global-EDF bound;
//! * [`density`] — density metrics and the constrained-deadline global-EDF
//!   density test;
//! * [`uniprocessor`] — Liu & Layland, the hyperbolic bound, exact EDF,
//!   and the processor-demand criterion;
//! * [`global_fp`] — the Bertogna–Cirinei DA test for global fixed
//!   priority and Audsley's optimal priority assignment over it (the
//!   analytic counterpart of the paper's Section VIII priority-assignment
//!   viewpoint);
//! * [`uniform`] — Funk–Goossens–Baruah necessary conditions on uniform
//!   platforms (Section II's intermediate machine class);
//! * [`report`] — the aggregated battery with a consistency guarantee:
//!   sufficient tests only ever say [`TestOutcome::Feasible`], necessary
//!   tests only [`TestOutcome::Infeasible`], so the battery can never
//!   contradict itself or the exact solvers (property-tested against
//!   CSP2 in this crate's integration tests).
//!
//! ## Example
//!
//! ```
//! use rt_task::TaskSet;
//! use rt_analysis::{analyze, TestOutcome};
//!
//! // Implicit deadlines: the battery decides outright.
//! let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 2, 4, 4), (0, 3, 6, 6)]);
//! assert_eq!(analyze(&ts, 2).verdict(), TestOutcome::Feasible);
//! assert_eq!(analyze(&ts, 1).verdict(), TestOutcome::Infeasible);
//! ```

pub mod bounds;
pub mod density;
pub mod global_fp;
pub mod report;
pub mod result;
pub mod uniform;
pub mod uniprocessor;

pub use bounds::{gfb_test, pfair_exact_test, utilization_at_most};
pub use density::{density_test, max_density, total_density};
pub use global_fp::{da_schedulable, da_task_schedulable, global_fp_test, opa_da, workload_bound};
pub use report::{analyze, analyze_with, AnalysisConfig};
pub use result::{AnalysisReport, TestOutcome, TestRecord};
pub use uniform::{uniform_necessary_on_platform, uniform_necessary_test};
pub use uniprocessor::{
    demand_bound, edf_exact_implicit, liu_layland_bound, processor_demand_test, rm_hyperbolic,
    rm_liu_layland,
};
