//! Global fixed-priority schedulability analysis and optimal priority
//! assignment.
//!
//! The paper's Section VIII suggests "searching for a feasible priority
//! assignment among the n! possible orderings". `mgrts-core::priority`
//! does that with exhaustive/heuristic search over a *simulation*
//! predicate; this module adds the analytic side:
//!
//! * the **DA test** (deadline analysis, Bertogna–Cirinei interference
//!   bound): task `τk` meets its deadlines under global FP on `m`
//!   identical processors if
//!
//!   `Ck + ⌊(Σ_{i∈hp(k)} min(Wi(Dk), Dk−Ck+1)) / m⌋ ≤ Dk`
//!
//!   where `Wi(L)` bounds τi's workload in any window of length `L`;
//! * **Audsley's OPA** over the DA test (Davis–Burns showed the test is
//!   OPA-compatible): assigns priorities lowest-first, trying every
//!   unassigned task at each level; failure-free completion yields a
//!   priority order the DA test certifies.
//!
//! Both are *sufficient*: the workload bound assumes the sporadic worst
//! case, which covers our concrete periodic offsets, and with integer
//! parameters the FP schedule only switches at integer instants — so a
//! pass proves discrete feasibility. Integration tests cross-check every
//! certified order against the exact tick-by-tick FP simulator.

use rt_task::{Task, TaskId, TaskSet};

use crate::result::TestOutcome;

/// Bertogna–Cirinei workload bound `Wi(L)`: the most execution a sporadic
/// constrained-deadline task can demand inside *any* window of length `L`
/// when every one of its jobs meets its deadline.
#[must_use]
pub fn workload_bound(task: &Task, window: u64) -> u64 {
    // Densest packing: a carry-in job finishing as late as possible, then
    // periodic jobs starting as early as possible.
    let n_full = (window + task.deadline - task.wcet) / task.period;
    let remainder = window + task.deadline - task.wcet - n_full * task.period;
    n_full * task.wcet + task.wcet.min(remainder)
}

/// The DA test for one task given the set of higher-priority tasks.
#[must_use]
pub fn da_task_schedulable(ts: &TaskSet, m: usize, k: TaskId, higher: &[TaskId]) -> bool {
    let task = ts.task(k);
    if task.wcet > task.deadline {
        return false;
    }
    let slack_cap = task.deadline - task.wcet + 1;
    let interference: u64 = higher
        .iter()
        .map(|&i| workload_bound(ts.task(i), task.deadline).min(slack_cap))
        .sum();
    task.wcet + interference / m as u64 <= task.deadline
}

/// The DA test for a full priority order (`order[0]` = highest priority).
#[must_use]
pub fn da_schedulable(ts: &TaskSet, m: usize, order: &[TaskId]) -> bool {
    (0..order.len()).all(|pos| da_task_schedulable(ts, m, order[pos], &order[..pos]))
}

/// Audsley's optimal priority assignment over the DA test.
///
/// Returns a priority order (highest first) certified by
/// [`da_schedulable`], or `None` when no assignment passes the test —
/// which, the test being sufficient only, does **not** prove FP
/// infeasibility.
#[must_use]
pub fn opa_da(ts: &TaskSet, m: usize) -> Option<Vec<TaskId>> {
    let n = ts.len();
    let mut unassigned: Vec<TaskId> = (0..n).collect();
    let mut order_low_first: Vec<TaskId> = Vec::with_capacity(n);
    // Assign lowest priority first: a task is safe at this level if it
    // passes with all other unassigned tasks as higher-priority.
    while !unassigned.is_empty() {
        let found = unassigned.iter().position(|&cand| {
            let higher: Vec<TaskId> = unassigned.iter().copied().filter(|&i| i != cand).collect();
            da_task_schedulable(ts, m, cand, &higher)
        });
        match found {
            Some(pos) => order_low_first.push(unassigned.remove(pos)),
            None => return None,
        }
    }
    order_low_first.reverse();
    Some(order_low_first)
}

/// Battery wrapper: `Feasible` when OPA finds a certified assignment.
#[must_use]
pub fn global_fp_test(ts: &TaskSet, m: usize) -> TestOutcome {
    if opa_da(ts, m).is_some() {
        TestOutcome::Feasible
    } else {
        TestOutcome::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_bound_basics() {
        // Task (C=2, D=4, T=5). Window 4: carry-in packing fits
        // N = (4+4-2)/5 = 1 full job + min(2, 6-5) = 1 → 3.
        let t = Task::ocdt(0, 2, 4, 5);
        assert_eq!(workload_bound(&t, 4), 3);
        // Window 0: (0+2)/5 = 0 full jobs, min(2, 2) = 2? A zero-length
        // window contains no execution — but the bound is only ever used
        // with L = Dk ≥ 1; document the L ≥ 1 contract via the L = 1 case.
        assert_eq!(workload_bound(&t, 1), 2);
        // Large windows grow linearly with the period.
        assert_eq!(workload_bound(&t, 5 + 4), workload_bound(&t, 4) + 2);
    }

    #[test]
    fn light_tasks_pass_da() {
        // Three light tasks on two processors.
        let ts = TaskSet::from_ocdt(&[(0, 1, 8, 8), (0, 1, 8, 8), (0, 1, 8, 8)]);
        assert!(da_schedulable(&ts, 2, &[0, 1, 2]));
        assert_eq!(global_fp_test(&ts, 2), TestOutcome::Feasible);
    }

    #[test]
    fn overload_fails_da() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)]);
        assert!(!da_schedulable(&ts, 2, &[0, 1, 2]));
        assert_eq!(global_fp_test(&ts, 2), TestOutcome::Inconclusive);
    }

    #[test]
    fn priority_order_matters() {
        // A heavy short-deadline task must go first: with it last, the DA
        // test rejects; OPA finds the working order.
        let ts = TaskSet::from_ocdt(&[(0, 4, 8, 8), (0, 1, 2, 8)]);
        let heavy_last = [0, 1];
        let heavy_first = [1, 0];
        assert!(da_schedulable(&ts, 1, &heavy_first));
        assert!(!da_schedulable(&ts, 1, &heavy_last));
        let opa = opa_da(&ts, 1).expect("OPA must find the working order");
        assert!(da_schedulable(&ts, 1, &opa));
        assert_eq!(opa[0], 1, "short-deadline task gets top priority");
    }

    #[test]
    fn opa_finds_whenever_some_order_passes() {
        // OPA optimality: exhaustively check all 3! orders; if any passes
        // DA, OPA must succeed too.
        let sets = [
            vec![(0, 1, 3, 4), (0, 2, 4, 4), (0, 1, 2, 4)],
            vec![(0, 2, 3, 3), (0, 1, 3, 3), (0, 1, 2, 2)],
            vec![(0, 1, 1, 2), (0, 1, 2, 2), (0, 1, 2, 2)],
        ];
        for spec in sets {
            let ts = TaskSet::from_ocdt(&spec);
            for m in 1..=2 {
                let mut perms = vec![
                    vec![0, 1, 2],
                    vec![0, 2, 1],
                    vec![1, 0, 2],
                    vec![1, 2, 0],
                    vec![2, 0, 1],
                    vec![2, 1, 0],
                ];
                let any = perms.drain(..).any(|p| da_schedulable(&ts, m, &p));
                assert_eq!(
                    opa_da(&ts, m).is_some(),
                    any,
                    "OPA optimality violated on {spec:?} m={m}"
                );
            }
        }
    }

    #[test]
    fn opa_order_is_a_permutation() {
        let ts = TaskSet::from_ocdt(&[(0, 1, 8, 8), (0, 1, 6, 8), (0, 2, 8, 8)]);
        let order = opa_da(&ts, 2).expect("light set passes");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
