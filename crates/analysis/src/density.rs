//! Density metrics and the global-EDF density test for constrained-deadline
//! systems.
//!
//! The *density* of a task is `λi = Ci / min(Di, Ti)` — the fraction of a
//! processor the task needs inside its tightest window. Two classic results
//! use it:
//!
//! * **Necessary**: `λi > 1` (i.e. `Ci > Di`) makes the task impossible to
//!   finish without intra-task parallelism, which the model forbids. (The
//!   task type already rejects `Ci > Di` at construction, so this is only
//!   reachable through the arbitrary-deadline clone path; it is kept as a
//!   defensive check.)
//! * **Sufficient** (global-EDF density test, Goossens–Funk–Baruah
//!   extended to constrained deadlines): a sporadic constrained-deadline
//!   system is global-EDF-schedulable on `m` identical processors when
//!
//!   `λsum ≤ m − (m−1)·λmax`.
//!
//!   EDF-schedulable-for-all-release-patterns covers our concrete periodic
//!   offsets, and with integer parameters the EDF schedule only switches at
//!   integer instants, so a pass proves *discrete* feasibility.

use rt_task::TaskSet;

use crate::result::TestOutcome;

/// Density `λi = Ci / min(Di, Ti)` of one task.
#[must_use]
pub fn task_density(wcet: u64, deadline: u64, period: u64) -> f64 {
    wcet as f64 / deadline.min(period) as f64
}

/// Total density `λsum` of a task set.
#[must_use]
pub fn total_density(ts: &TaskSet) -> f64 {
    ts.tasks()
        .iter()
        .map(|t| task_density(t.wcet, t.deadline, t.period))
        .sum()
}

/// Maximal density `λmax` of a task set (0 for the empty set).
#[must_use]
pub fn max_density(ts: &TaskSet) -> f64 {
    ts.tasks()
        .iter()
        .map(|t| task_density(t.wcet, t.deadline, t.period))
        .fold(0.0, f64::max)
}

/// The global-EDF density test: `λsum ≤ m − (m−1)·λmax` proves
/// feasibility; otherwise inconclusive.
#[must_use]
pub fn density_test(ts: &TaskSet, m: usize) -> TestOutcome {
    let lmax = max_density(ts);
    if lmax > 1.0 {
        return TestOutcome::Infeasible;
    }
    let lsum = total_density(ts);
    let bound = m as f64 - (m as f64 - 1.0) * lmax;
    // Exact comparison in rationals would avoid float edge cases; the
    // parameters are small integers, so f64 is exact here (all values are
    // ratios of integers < 2^53).
    if lsum <= bound + 1e-9 {
        TestOutcome::Feasible
    } else {
        TestOutcome::Inconclusive
    }
}

/// Human-readable summary used by the report.
#[must_use]
pub fn density_detail(ts: &TaskSet, m: usize) -> String {
    format!(
        "λsum={:.3}, λmax={:.3}, bound m-(m-1)λmax={:.3}",
        total_density(ts),
        max_density(ts),
        m as f64 - (m as f64 - 1.0) * max_density(ts),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_computed() {
        assert!((task_density(1, 2, 4) - 0.5).abs() < 1e-12);
        assert!((task_density(3, 6, 4) - 0.75).abs() < 1e-12); // min(D,T)=4
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 1, 4, 4)]);
        assert!((total_density(&ts) - 0.75).abs() < 1e-12);
        assert!((max_density(&ts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn light_system_passes() {
        // λsum = 0.5, bound = 2 - 0.25 → pass on m = 2.
        let ts = TaskSet::from_ocdt(&[(0, 1, 4, 4), (0, 1, 4, 4)]);
        assert_eq!(density_test(&ts, 2), TestOutcome::Feasible);
    }

    #[test]
    fn heavy_system_inconclusive() {
        // The running example: λ = 1/2 + 3/4 + 1 = 2.25; bound = 2-1 = 1.
        let ts = TaskSet::running_example();
        assert_eq!(density_test(&ts, 2), TestOutcome::Inconclusive);
    }

    #[test]
    fn single_processor_edge() {
        // m = 1: bound is exactly 1 regardless of λmax; λsum ≤ 1 passes.
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 1, 2, 4)]);
        // λsum = 0.5 + 0.5 = 1.0.
        assert_eq!(density_test(&ts, 1), TestOutcome::Feasible);
    }

    #[test]
    fn boundary_exact() {
        // λsum exactly equals the bound: two tasks λ = 0.5 each on m = 1.
        let ts = TaskSet::from_ocdt(&[(0, 2, 4, 4), (0, 2, 4, 4)]);
        assert_eq!(density_test(&ts, 1), TestOutcome::Feasible);
    }
}
