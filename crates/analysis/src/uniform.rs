//! Necessary feasibility conditions on *uniform* platforms (Section II's
//! intermediate machine class: processor `Pj` has speed `sj`).
//!
//! Funk–Goossens–Baruah (RTSS 2001): in the fluid model, an
//! implicit-deadline periodic system is feasible on speeds
//! `s1 ≥ s2 ≥ … ≥ sm` iff
//!
//! * `U ≤ Σj sj`, and
//! * for every `k < m`: the `k` largest utilizations sum to at most
//!   `s1 + … + sk`.
//!
//! Any discrete schedule induces a fluid one, so a *violation* proves
//! discrete infeasibility — that direction is exposed here. The converse
//! (fluid-feasible ⇒ discrete-feasible) needs a fluid-to-discrete
//! conversion that integer rates do not always admit, so a pass is
//! reported as [`TestOutcome::Inconclusive`] and left to the exact
//! heterogeneous CSP solvers.

use rt_platform::{Platform, Rate};
use rt_task::TaskSet;

use crate::result::TestOutcome;

/// The FGB necessary conditions on an explicit speed vector.
///
/// Returns `Infeasible` when some prefix condition is violated, otherwise
/// `Inconclusive` (`Inapplicable` for non-implicit deadlines).
#[must_use]
pub fn uniform_necessary_test(ts: &TaskSet, speeds: &[Rate]) -> TestOutcome {
    if !ts.tasks().iter().all(rt_task::Task::is_implicit) {
        return TestOutcome::Inapplicable;
    }
    let mut s: Vec<f64> = speeds.iter().map(|&r| r as f64).collect();
    s.sort_by(|a, b| b.total_cmp(a));
    let mut u: Vec<f64> = ts.tasks().iter().map(rt_task::Task::utilization).collect();
    u.sort_by(|a, b| b.total_cmp(a));

    let mut s_prefix = 0.0;
    let mut u_prefix = 0.0;
    for k in 0..u.len() {
        u_prefix += u[k];
        s_prefix += if k < s.len() { s[k] } else { 0.0 };
        if u_prefix > s_prefix + 1e-9 {
            return TestOutcome::Infeasible;
        }
    }
    TestOutcome::Inconclusive
}

/// Extract the speed vector from a [`Platform`] when it is uniform, then
/// run [`uniform_necessary_test`]. Non-uniform platforms are
/// `Inapplicable`.
#[must_use]
pub fn uniform_necessary_on_platform(ts: &TaskSet, platform: &Platform) -> TestOutcome {
    if !platform.is_uniform() {
        return TestOutcome::Inapplicable;
    }
    // Uniform means every column (processor) has one rate for all tasks;
    // row 0 carries the speed vector.
    let speeds: Vec<Rate> = (0..platform.num_processors())
        .map(|j| platform.rate(0, j))
        .collect();
    uniform_necessary_test(ts, &speeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_capacity_violation() {
        // U = 1.5, capacity 1 + 0.?? — speeds are integers: {1}, U > 1.
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 2, 2, 2)]);
        assert_eq!(uniform_necessary_test(&ts, &[1]), TestOutcome::Infeasible);
        assert_eq!(
            uniform_necessary_test(&ts, &[1, 1]),
            TestOutcome::Inconclusive
        );
    }

    #[test]
    fn prefix_violation_caught() {
        let three = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)]);
        // Three full-utilization tasks: total 3 exceeds two unit speeds.
        assert_eq!(
            uniform_necessary_test(&three, &[1, 1]),
            TestOutcome::Infeasible
        );
        assert_eq!(
            uniform_necessary_test(&three, &[1, 1, 1]),
            TestOutcome::Inconclusive
        );
        // Two such tasks fit one speed-2 processor in the fluid sense
        // (prefix k=1: 1 ≤ 2, k=2: 2 ≤ 2) — not rejected.
        let two = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2)]);
        assert_eq!(
            uniform_necessary_test(&two, &[2]),
            TestOutcome::Inconclusive
        );
        // Three of them exceed it: 3 > 2 at k = 3.
        assert_eq!(
            uniform_necessary_test(&three, &[2]),
            TestOutcome::Infeasible
        );
    }

    #[test]
    fn constrained_inapplicable() {
        let ts = TaskSet::running_example();
        assert_eq!(
            uniform_necessary_test(&ts, &[1, 1]),
            TestOutcome::Inapplicable
        );
    }

    #[test]
    fn platform_extraction() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2), (0, 2, 2, 2)]);
        let uni = Platform::uniform(3, &[1, 1]).unwrap();
        assert_eq!(
            uniform_necessary_on_platform(&ts, &uni),
            TestOutcome::Infeasible
        );
        let het = Platform::heterogeneous(vec![vec![1, 2], vec![2, 1], vec![1, 1]]).unwrap();
        assert_eq!(
            uniform_necessary_on_platform(&ts, &het),
            TestOutcome::Inapplicable
        );
    }
}
