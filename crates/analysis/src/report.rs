//! The analysis battery: run every applicable test cheapest-first and
//! aggregate into an [`AnalysisReport`].
//!
//! This is the "fast path" in front of the exact CSP solvers: on
//! implicit-deadline instances the P-fair condition decides outright; on
//! constrained-deadline instances the battery decides a large fraction
//! (measured by the `filter_power` experiment in `mgrts-bench`) and the
//! CSP search is only needed for the remainder.

use rt_task::demand::{demand_precheck, Precheck};
use rt_task::TaskSet;

use crate::bounds::{gfb_detail, gfb_test, pfair_exact_test, utilization_at_most};
use crate::density::{density_detail, density_test};
use crate::result::{AnalysisReport, TestOutcome, TestRecord};
use crate::uniprocessor::processor_demand_test;

/// Tuning knobs for the battery.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Skip the O(#jobs²) window-demand filter when the hyperperiod
    /// exceeds this many ticks.
    pub max_window_hyperperiod: u64,
    /// Abort the processor-demand criterion past this many check points.
    pub max_pdc_points: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_window_hyperperiod: 10_000,
            max_pdc_points: 100_000,
        }
    }
}

/// Run the full battery for `m` identical processors.
#[must_use]
pub fn analyze(ts: &TaskSet, m: usize) -> AnalysisReport {
    analyze_with(ts, m, &AnalysisConfig::default())
}

/// [`analyze`] with explicit configuration.
#[must_use]
pub fn analyze_with(ts: &TaskSet, m: usize, cfg: &AnalysisConfig) -> AnalysisReport {
    let mut records = Vec::new();

    // 1. Utilization necessity — the paper's Table II filter.
    let util_ok = utilization_at_most(ts, m);
    records.push(TestRecord {
        name: "utilization",
        outcome: if util_ok {
            TestOutcome::Inconclusive
        } else {
            TestOutcome::Infeasible
        },
        detail: format!("U={:.3}, m={m}", ts.utilization()),
    });

    // 2. P-fair exact feasibility (implicit deadlines only).
    records.push(TestRecord {
        name: "pfair-exact",
        outcome: pfair_exact_test(ts, m),
        detail: "U ≤ m iff feasible (implicit deadlines)".to_string(),
    });

    // 3. Global-EDF density test (sufficient, constrained deadlines).
    records.push(TestRecord {
        name: "density",
        outcome: density_test(ts, m),
        detail: density_detail(ts, m),
    });

    // 4. GFB bound — also certifies the *policy* global EDF.
    records.push(TestRecord {
        name: "gfb",
        outcome: gfb_test(ts, m),
        detail: gfb_detail(ts, m),
    });

    // 5. Global FP via OPA over the DA test — also yields a priority
    // assignment certificate.
    records.push(TestRecord {
        name: "opa-da",
        outcome: crate::global_fp::global_fp_test(ts, m),
        detail: "Audsley OPA over the Bertogna-Cirinei DA test".to_string(),
    });

    // 6. Uniprocessor processor-demand criterion.
    if m == 1 {
        records.push(TestRecord {
            name: "pdc",
            outcome: processor_demand_test(ts, cfg.max_pdc_points),
            detail: "synchronous demand-bound check".to_string(),
        });
    }

    // 7. Window-demand necessity (size-guarded: O(#jobs²)).
    let small_enough = matches!(ts.hyperperiod(), Ok(h) if h <= cfg.max_window_hyperperiod);
    if small_enough {
        let outcome = match demand_precheck(ts, m) {
            Precheck::UtilizationExceeded | Precheck::WindowOverload { .. } => {
                TestOutcome::Infeasible
            }
            Precheck::Unknown => TestOutcome::Inconclusive,
        };
        records.push(TestRecord {
            name: "window-demand",
            outcome,
            detail: "forced demand per window ≤ m·|window|".to_string(),
        });
    }

    AnalysisReport { records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_instances_always_decided() {
        let feasible = TaskSet::from_ocdt(&[(0, 1, 2, 2), (0, 2, 4, 4)]);
        let report = analyze(&feasible, 1);
        assert_eq!(report.verdict(), TestOutcome::Feasible);
        assert!(report.is_consistent());

        let infeasible = TaskSet::from_ocdt(&[(0, 2, 2, 2), (0, 2, 2, 2)]);
        let report = analyze(&infeasible, 1);
        assert_eq!(report.verdict(), TestOutcome::Infeasible);
        assert_eq!(report.decided_by(), Some("utilization"));
    }

    #[test]
    fn running_example_undecided_analytically() {
        // The paper's example is feasible but only the exact search proves
        // it: high density defeats every sufficient test.
        let ts = TaskSet::running_example();
        let report = analyze(&ts, 2);
        assert_eq!(report.verdict(), TestOutcome::Inconclusive);
        assert!(report.is_consistent());
    }

    #[test]
    fn window_overload_reported() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 12), (0, 2, 2, 12), (0, 2, 2, 12)]);
        let report = analyze(&ts, 2);
        assert_eq!(report.verdict(), TestOutcome::Infeasible);
        assert_eq!(report.decided_by(), Some("window-demand"));
    }

    #[test]
    fn window_filter_guarded() {
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 12), (0, 2, 2, 12), (0, 2, 2, 12)]);
        let cfg = AnalysisConfig {
            max_window_hyperperiod: 4,
            ..AnalysisConfig::default()
        };
        let report = analyze_with(&ts, 2, &cfg);
        assert!(report.records.iter().all(|r| r.name != "window-demand"));
    }

    #[test]
    fn pdc_only_on_uniprocessor() {
        let ts = TaskSet::from_ocdt(&[(0, 1, 1, 2), (0, 1, 2, 2)]);
        assert!(analyze(&ts, 1).records.iter().any(|r| r.name == "pdc"));
        assert!(analyze(&ts, 2).records.iter().all(|r| r.name != "pdc"));
    }

    #[test]
    fn display_renders() {
        let text = analyze(&TaskSet::running_example(), 2).to_string();
        assert!(text.contains("verdict"));
        assert!(text.contains("density"));
    }
}
