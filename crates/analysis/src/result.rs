//! Outcome types shared by every schedulability test in this crate.

/// What a single analytic test concluded about an instance.
///
/// Every test is *sound* in the direction it reports: `Feasible` is only
/// returned by sufficient tests whose pass proves a schedule exists,
/// `Infeasible` only by necessary tests whose failure proves none does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    /// A feasible schedule provably exists.
    Feasible,
    /// No feasible schedule exists.
    Infeasible,
    /// The test could not decide the instance.
    Inconclusive,
    /// The test's model assumptions do not hold for this instance
    /// (e.g. an implicit-deadline bound on a constrained-deadline set).
    Inapplicable,
}

impl TestOutcome {
    /// True when the test reached a verdict.
    #[must_use]
    pub fn is_decisive(self) -> bool {
        matches!(self, TestOutcome::Feasible | TestOutcome::Infeasible)
    }
}

/// A named test result inside an [`AnalysisReport`].
#[derive(Debug, Clone)]
pub struct TestRecord {
    /// Short stable identifier (e.g. `"density"`, `"gfb"`).
    pub name: &'static str,
    /// What the test concluded.
    pub outcome: TestOutcome,
    /// One-line human-readable detail (bound values etc.).
    pub detail: String,
}

/// Combined verdict of the full analysis battery.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Every test that ran, in execution order.
    pub records: Vec<TestRecord>,
}

impl AnalysisReport {
    /// The overall verdict: the first decisive record wins (tests are
    /// ordered cheapest-first and are mutually consistent by soundness).
    #[must_use]
    pub fn verdict(&self) -> TestOutcome {
        self.records
            .iter()
            .map(|r| r.outcome)
            .find(|o| o.is_decisive())
            .unwrap_or(TestOutcome::Inconclusive)
    }

    /// Name of the test that decided the instance, if any.
    #[must_use]
    pub fn decided_by(&self) -> Option<&'static str> {
        self.records
            .iter()
            .find(|r| r.outcome.is_decisive())
            .map(|r| r.name)
    }

    /// Internal consistency: sound tests may never contradict each other.
    /// Exposed so property tests can assert it on random instances.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let any_feasible = self
            .records
            .iter()
            .any(|r| r.outcome == TestOutcome::Feasible);
        let any_infeasible = self
            .records
            .iter()
            .any(|r| r.outcome == TestOutcome::Infeasible);
        !(any_feasible && any_infeasible)
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "verdict: {:?}", self.verdict())?;
        for r in &self.records {
            writeln!(f, "  {:<14} {:<13?} {}", r.name, r.outcome, r.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, outcome: TestOutcome) -> TestRecord {
        TestRecord {
            name,
            outcome,
            detail: String::new(),
        }
    }

    #[test]
    fn first_decisive_wins() {
        let report = AnalysisReport {
            records: vec![
                rec("a", TestOutcome::Inconclusive),
                rec("b", TestOutcome::Feasible),
                rec("c", TestOutcome::Inconclusive),
            ],
        };
        assert_eq!(report.verdict(), TestOutcome::Feasible);
        assert_eq!(report.decided_by(), Some("b"));
        assert!(report.is_consistent());
    }

    #[test]
    fn all_inconclusive() {
        let report = AnalysisReport {
            records: vec![
                rec("a", TestOutcome::Inconclusive),
                rec("b", TestOutcome::Inapplicable),
            ],
        };
        assert_eq!(report.verdict(), TestOutcome::Inconclusive);
        assert_eq!(report.decided_by(), None);
    }

    #[test]
    fn contradiction_detected() {
        let report = AnalysisReport {
            records: vec![
                rec("a", TestOutcome::Feasible),
                rec("b", TestOutcome::Infeasible),
            ],
        };
        assert!(!report.is_consistent());
    }
}
