//! The DA test is sufficient for *sporadic* global FP, which covers every
//! concrete release pattern: any order it certifies must therefore run
//! without misses in the exact tick-by-tick FP simulator, and any OPA
//! certificate must be a genuinely feasible instance per the exact CSP
//! solver.

use mgrts_core::csp2::Csp2Solver;
use mgrts_core::heuristics::TaskOrder;
use rt_analysis::{da_schedulable, opa_da};
use rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use rt_sim::fp_schedulable;

fn small_config(n: usize, m: usize) -> GeneratorConfig {
    GeneratorConfig {
        n,
        m: MSpec::Fixed(m),
        t_max: 5,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    }
}

#[test]
fn da_certificates_hold_in_simulation() {
    let gen = ProblemGenerator::new(small_config(4, 2), 0xDA7E57);
    let mut certified = 0;
    for p in gen.batch(300) {
        // Try deadline-monotonic order (a natural candidate) and the OPA
        // order when it exists.
        let mut dm: Vec<usize> = (0..p.taskset.len()).collect();
        dm.sort_by_key(|&i| p.taskset.task(i).deadline);
        let mut orders = vec![dm];
        if let Some(opa) = opa_da(&p.taskset, p.m) {
            orders.push(opa);
        }
        for order in orders {
            if da_schedulable(&p.taskset, p.m, &order) {
                certified += 1;
                assert!(
                    fp_schedulable(&p.taskset, p.m, &order),
                    "DA certified order {order:?} but the simulator misses a deadline (seed {})",
                    p.seed
                );
            }
        }
    }
    assert!(certified >= 20, "only {certified} certificates exercised");
}

#[test]
fn opa_pass_implies_csp_feasible() {
    let gen = ProblemGenerator::new(small_config(4, 2), 0x0FA);
    let mut passes = 0;
    for p in gen.batch(300) {
        if opa_da(&p.taskset, p.m).is_some() {
            passes += 1;
            let exact = Csp2Solver::new(&p.taskset, p.m)
                .unwrap()
                .with_order(TaskOrder::DeadlineMinusWcet)
                .solve();
            assert!(
                exact.verdict.is_feasible(),
                "OPA certified an instance the exact solver disproves (seed {})",
                p.seed
            );
        }
    }
    assert!(passes >= 10, "only {passes} OPA passes");
}

#[test]
fn uniprocessor_rm_bounds_hold_in_simulation() {
    // Liu & Layland / hyperbolic passes promise RM schedulability: replay
    // each certified instance under rate-monotonic priorities in the exact
    // simulator. Implicit deadlines, m = 1.
    use rt_analysis::TestOutcome;
    use rt_task::{Task, TaskSet};
    let gen = ProblemGenerator::new(small_config(3, 1), 0x11);
    let mut certified = 0;
    for p in gen.batch(300) {
        let implicit: Vec<Task> = p
            .taskset
            .tasks()
            .iter()
            .map(|t| Task::ocdt(t.offset, t.wcet, t.period, t.period))
            .collect();
        let ts = TaskSet::new(implicit).unwrap();
        let ll = rt_analysis::rm_liu_layland(&ts);
        let hyp = rt_analysis::rm_hyperbolic(&ts);
        if ll == TestOutcome::Feasible || hyp == TestOutcome::Feasible {
            certified += 1;
            let mut rm: Vec<usize> = (0..ts.len()).collect();
            rm.sort_by_key(|&i| ts.task(i).period);
            assert!(
                fp_schedulable(&ts, 1, &rm),
                "RM bound certified seed {} but RM simulation misses",
                p.seed
            );
        }
        // Hyperbolic dominates Liu & Layland: never the other way around.
        assert!(
            !(ll == TestOutcome::Feasible && hyp != TestOutcome::Feasible),
            "LL passed where hyperbolic abstained (seed {})",
            p.seed
        );
    }
    // The Di-first sampler is dense, so passes are the minority — but the
    // test is vacuous without a handful.
    assert!(certified >= 5, "only {certified} RM certificates");
}

#[test]
fn simulation_dominates_da() {
    // The analytic test must never certify more than the simulator
    // accepts; count how often the simulator accepts an order DA rejects
    // (pessimism gap — expected to be nonzero).
    let gen = ProblemGenerator::new(small_config(3, 2), 0x9A9);
    let mut da_pass = 0u32;
    let mut sim_pass = 0u32;
    for p in gen.batch(200) {
        let mut dm: Vec<usize> = (0..p.taskset.len()).collect();
        dm.sort_by_key(|&i| p.taskset.task(i).deadline);
        let da = da_schedulable(&p.taskset, p.m, &dm);
        let sim = fp_schedulable(&p.taskset, p.m, &dm);
        assert!(!da || sim, "DA pass must imply simulation pass");
        da_pass += u32::from(da);
        sim_pass += u32::from(sim);
    }
    assert!(sim_pass >= da_pass);
    assert!(
        sim_pass > da_pass,
        "DA should be strictly pessimistic somewhere on 200 instances"
    );
}
