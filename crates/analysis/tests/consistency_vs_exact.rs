//! Soundness of every analytic test against the exact CSP2 solver: on
//! random instances a `Feasible` verdict must coincide with a real
//! schedule, an `Infeasible` verdict with proven absence of one.

use proptest::prelude::*;

use mgrts_core::csp2::Csp2Solver;
use mgrts_core::heuristics::TaskOrder;
use rt_analysis::{analyze, TestOutcome};
use rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use rt_task::{Task, TaskSet};

fn exact_feasible(ts: &TaskSet, m: usize) -> bool {
    Csp2Solver::new(ts, m)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve()
        .verdict
        .is_feasible()
}

#[test]
fn battery_sound_on_random_constrained_instances() {
    let cfg = GeneratorConfig {
        n: 4,
        m: MSpec::Fixed(2),
        t_max: 4,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 0xA11A);
    let mut decided = 0;
    for p in gen.batch(250) {
        let report = analyze(&p.taskset, p.m);
        assert!(report.is_consistent(), "seed {}", p.seed);
        match report.verdict() {
            TestOutcome::Feasible => {
                decided += 1;
                assert!(
                    exact_feasible(&p.taskset, p.m),
                    "battery claimed feasible, CSP2 disproves (seed {})",
                    p.seed
                );
            }
            TestOutcome::Infeasible => {
                decided += 1;
                assert!(
                    !exact_feasible(&p.taskset, p.m),
                    "battery claimed infeasible, CSP2 found a schedule (seed {})",
                    p.seed
                );
            }
            _ => {}
        }
    }
    // The battery should carry real filtering weight on this workload.
    assert!(decided >= 50, "battery decided only {decided}/250");
}

#[test]
fn pfair_agrees_with_exact_search_on_implicit_sets() {
    // Force implicit deadlines (Di = Ti) and compare the P-fair verdict —
    // which claims to be exact — against the CSP search on every instance.
    let cfg = GeneratorConfig {
        n: 3,
        m: MSpec::Fixed(2),
        t_max: 4,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 0x1D);
    for p in gen.batch(120) {
        let implicit: Vec<Task> = p
            .taskset
            .tasks()
            .iter()
            .map(|t| Task::ocdt(t.offset, t.wcet, t.period, t.period))
            .collect();
        let ts = TaskSet::new(implicit).unwrap();
        let analytic = rt_analysis::pfair_exact_test(&ts, p.m);
        let exact = exact_feasible(&ts, p.m);
        match analytic {
            TestOutcome::Feasible => assert!(exact, "seed {}", p.seed),
            TestOutcome::Infeasible => assert!(!exact, "seed {}", p.seed),
            other => panic!("P-fair must decide implicit sets, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniprocessor: the PDC verdict must match exact search.
    #[test]
    fn pdc_sound_on_uniprocessor(
        specs in proptest::collection::vec((0u64..3, 1u64..4, 0u64..3, 0u64..3), 2..4)
    ) {
        // Build valid constrained tasks: C ≤ D ≤ T ≤ 6.
        let tasks: Vec<Task> = specs
            .iter()
            .map(|&(o, c, dslack, tslack)| {
                let d = c + dslack;
                let t = d + tslack;
                Task::ocdt(o, c, d, t)
            })
            .collect();
        let ts = TaskSet::new(tasks).unwrap();
        let exact = exact_feasible(&ts, 1);
        match rt_analysis::processor_demand_test(&ts, 100_000) {
            TestOutcome::Feasible => prop_assert!(exact),
            TestOutcome::Infeasible => prop_assert!(!exact),
            _ => {}
        }
    }

    /// Density-test passes are always genuinely feasible.
    #[test]
    fn density_pass_implies_feasible(
        specs in proptest::collection::vec((0u64..3, 1u64..3, 0u64..3, 0u64..4), 2..5),
        m in 1usize..3,
    ) {
        let tasks: Vec<Task> = specs
            .iter()
            .map(|&(o, c, dslack, tslack)| {
                let d = c + dslack;
                let t = d + tslack;
                Task::ocdt(o, c, d, t)
            })
            .collect();
        let ts = TaskSet::new(tasks).unwrap();
        if rt_analysis::density_test(&ts, m) == TestOutcome::Feasible {
            prop_assert!(exact_feasible(&ts, m));
        }
    }
}
