//! Search-statistics counters shared by every solver backend.
//!
//! [`SearchStats`] is the lingua franca of the telemetry pipeline: the CSP
//! and SAT engines fill one per solve, engines accumulate them across
//! solves, campaign records persist them as an optional `search` block,
//! and `report profile` merges them per experiment cell. All fields are
//! plain saturating-free `u64` counters — cheap to bump, cheap to merge,
//! loss-free to serialize.

use serde::{DeError, Deserialize, Serialize, Value};

/// Counters for one propagator kind (the CSP engine's per-kind telemetry).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Propagator kind name (e.g. `"alldiff_gac"`, `"linear_eq"`).
    pub kind: String,
    /// Times a propagator of this kind was woken and run.
    pub wakes: u64,
    /// Domain values removed by propagators of this kind.
    pub prunes: u64,
    /// Times a propagator of this kind raised its entailment flag.
    pub entailments: u64,
}

/// Aggregated search statistics for one or more solves.
///
/// A single solve from a CSP backend populates the decision/propagation
/// counters plus the per-kind table; a SAT backend populates the
/// conflict/restart/learnt counters. [`SearchStats::merge`] folds two
/// blocks together (sums for throughput counters, maxima for peaks), so
/// the same type serves per-run, per-engine-lifetime and per-cell roles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Solver runs aggregated into this block.
    pub solves: u64,
    /// Decisions (search-tree nodes / SAT decisions).
    pub decisions: u64,
    /// Backtracks (CSP failures / SAT conflicts both count as dead ends).
    pub backtracks: u64,
    /// Propagator executions (CSP) or propagated literals (SAT).
    pub propagations: u64,
    /// SAT conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// SAT clauses / CSP nogoods learned.
    pub learnt_clauses: u64,
    /// Levels jumped over by non-chronological backtracking, summed over
    /// all conflicts (0 for chronological search). Serde-additive: absent
    /// in pre-learning records and omitted from output while zero (see the
    /// hand-written impls below).
    pub backjump_sum: u64,
    /// Learned-nogood database reductions performed. Serde-additive like
    /// `backjump_sum`.
    pub db_reductions: u64,
    /// Régin all-different matching rebuilds (GAC propagator).
    pub gac_rebuilds: u64,
    /// Deepest trail length observed (CSP store entries).
    pub peak_trail: u64,
    /// Deepest decision stack observed.
    pub peak_depth: u64,
    /// Per-propagator-kind wake/prune/entailment counters, sorted by kind
    /// name. Kinds that never woke are omitted.
    pub kinds: Vec<KindStats>,
}

// Hand-written (de)serialization instead of the derives: the learning
// counters must be *absent* keys — not zeros, not nulls — whenever they are
// zero, so blocks written by non-learning backends stay byte-identical to
// pre-learning records (campaign fingerprints pin this), while records that
// predate the fields still load with zero defaults.
impl Serialize for SearchStats {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("solves".to_string(), self.solves.to_value()),
            ("decisions".to_string(), self.decisions.to_value()),
            ("backtracks".to_string(), self.backtracks.to_value()),
            ("propagations".to_string(), self.propagations.to_value()),
            ("conflicts".to_string(), self.conflicts.to_value()),
            ("restarts".to_string(), self.restarts.to_value()),
            ("learnt_clauses".to_string(), self.learnt_clauses.to_value()),
        ];
        if self.backjump_sum != 0 {
            pairs.push(("backjump_sum".to_string(), self.backjump_sum.to_value()));
        }
        if self.db_reductions != 0 {
            pairs.push(("db_reductions".to_string(), self.db_reductions.to_value()));
        }
        pairs.push(("gac_rebuilds".to_string(), self.gac_rebuilds.to_value()));
        pairs.push(("peak_trail".to_string(), self.peak_trail.to_value()));
        pairs.push(("peak_depth".to_string(), self.peak_depth.to_value()));
        pairs.push(("kinds".to_string(), self.kinds.to_value()));
        Value::Object(pairs)
    }
}

impl Deserialize for SearchStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let opt = |name: &str| -> Result<u64, DeError> {
            Ok(serde::__private::field::<Option<u64>>(v, name)?.unwrap_or(0))
        };
        Ok(SearchStats {
            solves: serde::__private::field(v, "solves")?,
            decisions: serde::__private::field(v, "decisions")?,
            backtracks: serde::__private::field(v, "backtracks")?,
            propagations: serde::__private::field(v, "propagations")?,
            conflicts: serde::__private::field(v, "conflicts")?,
            restarts: serde::__private::field(v, "restarts")?,
            learnt_clauses: serde::__private::field(v, "learnt_clauses")?,
            backjump_sum: opt("backjump_sum")?,
            db_reductions: opt("db_reductions")?,
            gac_rebuilds: serde::__private::field(v, "gac_rebuilds")?,
            peak_trail: serde::__private::field(v, "peak_trail")?,
            peak_depth: serde::__private::field(v, "peak_depth")?,
            kinds: serde::__private::field(v, "kinds")?,
        })
    }
}

impl SearchStats {
    /// True when every counter is zero (nothing was recorded).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == SearchStats::default()
    }

    /// Fold `other` into `self`: throughput counters add, peak counters
    /// take the maximum, and per-kind rows merge by kind name (keeping the
    /// table sorted for deterministic serialization).
    pub fn merge(&mut self, other: &SearchStats) {
        self.solves += other.solves;
        self.decisions += other.decisions;
        self.backtracks += other.backtracks;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.backjump_sum += other.backjump_sum;
        self.db_reductions += other.db_reductions;
        self.gac_rebuilds += other.gac_rebuilds;
        self.peak_trail = self.peak_trail.max(other.peak_trail);
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        for k in &other.kinds {
            match self.kinds.iter_mut().find(|mine| mine.kind == k.kind) {
                Some(mine) => {
                    mine.wakes += k.wakes;
                    mine.prunes += k.prunes;
                    mine.entailments += k.entailments;
                }
                None => self.kinds.push(k.clone()),
            }
        }
        self.kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(name: &str, wakes: u64, prunes: u64, entailments: u64) -> KindStats {
        KindStats {
            kind: name.to_string(),
            wakes,
            prunes,
            entailments,
        }
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = SearchStats {
            solves: 1,
            decisions: 10,
            backtracks: 3,
            peak_trail: 100,
            peak_depth: 7,
            ..SearchStats::default()
        };
        let b = SearchStats {
            solves: 2,
            decisions: 5,
            backtracks: 4,
            peak_trail: 60,
            peak_depth: 9,
            ..SearchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.decisions, 15);
        assert_eq!(a.backtracks, 7);
        assert_eq!(a.peak_trail, 100);
        assert_eq!(a.peak_depth, 9);
    }

    #[test]
    fn merge_joins_kind_tables_by_name_sorted() {
        let mut a = SearchStats {
            kinds: vec![kind("linear_eq", 2, 1, 0), kind("alldiff_gac", 1, 5, 1)],
            ..SearchStats::default()
        };
        let b = SearchStats {
            kinds: vec![kind("alldiff_gac", 3, 2, 0), kind("table", 1, 1, 1)],
            ..SearchStats::default()
        };
        a.merge(&b);
        let names: Vec<&str> = a.kinds.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(names, vec!["alldiff_gac", "linear_eq", "table"]);
        let gac = &a.kinds[0];
        assert_eq!((gac.wakes, gac.prunes, gac.entailments), (4, 7, 1));
    }

    #[test]
    fn empty_detection_and_json_round_trip() {
        assert!(SearchStats::default().is_empty());
        let mut s = SearchStats {
            solves: 1,
            ..SearchStats::default()
        };
        s.kinds.push(kind("or", 4, 2, 2));
        assert!(!s.is_empty());
        let text = serde_json::to_string(&s).expect("serialize");
        let back: SearchStats = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn learning_counters_merge_and_stay_serde_additive() {
        let mut a = SearchStats {
            conflicts: 4,
            learnt_clauses: 3,
            backjump_sum: 9,
            db_reductions: 1,
            ..SearchStats::default()
        };
        a.merge(&SearchStats {
            backjump_sum: 2,
            db_reductions: 1,
            ..SearchStats::default()
        });
        assert_eq!((a.backjump_sum, a.db_reductions), (11, 2));

        // Pre-learning records (no backjump_sum / db_reductions keys) must
        // still load; this JSON shape is pinned — do not extend it.
        let legacy = r#"{"solves":1,"decisions":8,"backtracks":2,
            "propagations":30,"conflicts":0,"restarts":0,
            "learnt_clauses":0,"gac_rebuilds":0,"peak_trail":12,
            "peak_depth":4,"kinds":[]}"#;
        let back: SearchStats = serde_json::from_str(legacy).expect("legacy parse");
        assert_eq!(back.backjump_sum, 0);
        assert_eq!(back.db_reductions, 0);

        // Zero learning counters serialize to the legacy byte shape, so
        // non-learning campaign fingerprints are unchanged.
        let text = serde_json::to_string(&SearchStats::default()).expect("serialize");
        assert!(!text.contains("backjump_sum"), "{text}");
        assert!(!text.contains("db_reductions"), "{text}");
    }
}
