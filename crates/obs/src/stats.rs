//! Search-statistics counters shared by every solver backend.
//!
//! [`SearchStats`] is the lingua franca of the telemetry pipeline: the CSP
//! and SAT engines fill one per solve, engines accumulate them across
//! solves, campaign records persist them as an optional `search` block,
//! and `report profile` merges them per experiment cell. All fields are
//! plain saturating-free `u64` counters — cheap to bump, cheap to merge,
//! loss-free to serialize.

use serde::{Deserialize, Serialize};

/// Counters for one propagator kind (the CSP engine's per-kind telemetry).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Propagator kind name (e.g. `"alldiff_gac"`, `"linear_eq"`).
    pub kind: String,
    /// Times a propagator of this kind was woken and run.
    pub wakes: u64,
    /// Domain values removed by propagators of this kind.
    pub prunes: u64,
    /// Times a propagator of this kind raised its entailment flag.
    pub entailments: u64,
}

/// Aggregated search statistics for one or more solves.
///
/// A single solve from a CSP backend populates the decision/propagation
/// counters plus the per-kind table; a SAT backend populates the
/// conflict/restart/learnt counters. [`SearchStats::merge`] folds two
/// blocks together (sums for throughput counters, maxima for peaks), so
/// the same type serves per-run, per-engine-lifetime and per-cell roles.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Solver runs aggregated into this block.
    pub solves: u64,
    /// Decisions (search-tree nodes / SAT decisions).
    pub decisions: u64,
    /// Backtracks (CSP failures / SAT conflicts both count as dead ends).
    pub backtracks: u64,
    /// Propagator executions (CSP) or propagated literals (SAT).
    pub propagations: u64,
    /// SAT conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// SAT clauses learned.
    pub learnt_clauses: u64,
    /// Régin all-different matching rebuilds (GAC propagator).
    pub gac_rebuilds: u64,
    /// Deepest trail length observed (CSP store entries).
    pub peak_trail: u64,
    /// Deepest decision stack observed.
    pub peak_depth: u64,
    /// Per-propagator-kind wake/prune/entailment counters, sorted by kind
    /// name. Kinds that never woke are omitted.
    pub kinds: Vec<KindStats>,
}

impl SearchStats {
    /// True when every counter is zero (nothing was recorded).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == SearchStats::default()
    }

    /// Fold `other` into `self`: throughput counters add, peak counters
    /// take the maximum, and per-kind rows merge by kind name (keeping the
    /// table sorted for deterministic serialization).
    pub fn merge(&mut self, other: &SearchStats) {
        self.solves += other.solves;
        self.decisions += other.decisions;
        self.backtracks += other.backtracks;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.gac_rebuilds += other.gac_rebuilds;
        self.peak_trail = self.peak_trail.max(other.peak_trail);
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        for k in &other.kinds {
            match self.kinds.iter_mut().find(|mine| mine.kind == k.kind) {
                Some(mine) => {
                    mine.wakes += k.wakes;
                    mine.prunes += k.prunes;
                    mine.entailments += k.entailments;
                }
                None => self.kinds.push(k.clone()),
            }
        }
        self.kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(name: &str, wakes: u64, prunes: u64, entailments: u64) -> KindStats {
        KindStats {
            kind: name.to_string(),
            wakes,
            prunes,
            entailments,
        }
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = SearchStats {
            solves: 1,
            decisions: 10,
            backtracks: 3,
            peak_trail: 100,
            peak_depth: 7,
            ..SearchStats::default()
        };
        let b = SearchStats {
            solves: 2,
            decisions: 5,
            backtracks: 4,
            peak_trail: 60,
            peak_depth: 9,
            ..SearchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.decisions, 15);
        assert_eq!(a.backtracks, 7);
        assert_eq!(a.peak_trail, 100);
        assert_eq!(a.peak_depth, 9);
    }

    #[test]
    fn merge_joins_kind_tables_by_name_sorted() {
        let mut a = SearchStats {
            kinds: vec![kind("linear_eq", 2, 1, 0), kind("alldiff_gac", 1, 5, 1)],
            ..SearchStats::default()
        };
        let b = SearchStats {
            kinds: vec![kind("alldiff_gac", 3, 2, 0), kind("table", 1, 1, 1)],
            ..SearchStats::default()
        };
        a.merge(&b);
        let names: Vec<&str> = a.kinds.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(names, vec!["alldiff_gac", "linear_eq", "table"]);
        let gac = &a.kinds[0];
        assert_eq!((gac.wakes, gac.prunes, gac.entailments), (4, 7, 1));
    }

    #[test]
    fn empty_detection_and_json_round_trip() {
        assert!(SearchStats::default().is_empty());
        let mut s = SearchStats {
            solves: 1,
            ..SearchStats::default()
        };
        s.kinds.push(kind("or", 4, 2, 2));
        assert!(!s.is_empty());
        let text = serde_json::to_string(&s).expect("serialize");
        let back: SearchStats = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, s);
    }
}
