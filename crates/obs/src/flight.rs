//! Spans, events and the per-thread flight recorder.
//!
//! A [`FlightRecorder`] owns one fixed-size ring buffer per registered
//! worker thread ([`ThreadRing`]). Threads record instantaneous
//! [`Event`]s and RAII [`Span`]s; old entries are overwritten once the
//! ring is full, so recording costs O(1) and bounded memory no matter how
//! long the process lives. [`FlightRecorder::dump`] merges every ring
//! into one chronologically sorted JSONL timeline — the artifact written
//! on panic (via [`FlightRecorder::install_panic_hook`]), on observed
//! cancellation, or when a solve crosses a slow-threshold.
//!
//! The module-level [`install`] / [`event`] / [`span`] functions are the
//! implicit thread-local API instrumentation sites use: they are no-ops
//! until the owning component installs a ring for the current thread, so
//! library code can record unconditionally.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::Serialize;

/// One timeline entry: an instantaneous event, or a completed span
/// (`dur_us` set) stamped at its start time.
#[derive(Debug, Clone, Serialize)]
pub struct Event {
    /// Label of the recording thread's ring.
    pub thread: String,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// What happened (e.g. `"race.start"`, `"shard.run"`).
    pub name: String,
    /// Correlation id tying entries of one logical operation together
    /// (the serve layer uses the request content hash).
    pub corr: String,
    /// Span duration in microseconds; `None` for instantaneous events.
    pub dur_us: Option<u64>,
    /// Free-form detail (winner name, outcome, shard index, …).
    pub detail: String,
}

#[derive(Debug)]
struct RingBuf {
    cap: usize,
    buf: Vec<Event>,
    /// Oldest slot once the buffer is full (next overwrite target).
    next: usize,
    dropped: u64,
}

impl RingBuf {
    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// One worker thread's ring buffer. Handed out by
/// [`FlightRecorder::ring`]; cheap to record into (one short mutex
/// acquisition per entry, never contended in the steady state because
/// each thread owns its ring).
#[derive(Debug)]
pub struct ThreadRing {
    label: String,
    epoch: Instant,
    ring: Mutex<RingBuf>,
}

/// Survive lock poisoning: the flight recorder must still dump after a
/// panic elsewhere — losing the timeline to poisoning would defeat its
/// purpose.
fn lock_ring<'a>(m: &'a Mutex<RingBuf>) -> MutexGuard<'a, RingBuf> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ThreadRing {
    /// Microseconds since the owning recorder was created.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record an instantaneous event.
    pub fn event(&self, name: &str, corr: &str, detail: &str) {
        self.push(Event {
            thread: self.label.clone(),
            ts_us: self.now_us(),
            name: name.to_string(),
            corr: corr.to_string(),
            dur_us: None,
            detail: detail.to_string(),
        });
    }

    fn push(&self, ev: Event) {
        lock_ring(&self.ring).push(ev);
    }

    /// The entries currently retained, oldest first, plus how many older
    /// entries were overwritten.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<Event>, u64) {
        let g = lock_ring(&self.ring);
        let mut out = Vec::with_capacity(g.buf.len());
        out.extend_from_slice(&g.buf[g.next..]);
        out.extend_from_slice(&g.buf[..g.next]);
        (out, g.dropped)
    }
}

/// The process-wide flight recorder: a registry of per-thread rings with
/// one shared epoch, dumped as a merged JSONL timeline.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl FlightRecorder {
    /// A recorder whose rings each retain up to `cap` entries.
    #[must_use]
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            epoch: Instant::now(),
            cap: cap.max(1),
            rings: Mutex::new(Vec::new()),
        })
    }

    /// Create and register a ring for one worker thread.
    pub fn ring(&self, label: &str) -> Arc<ThreadRing> {
        let ring = Arc::new(ThreadRing {
            label: label.to_string(),
            epoch: self.epoch,
            ring: Mutex::new(RingBuf {
                cap: self.cap,
                buf: Vec::new(),
                next: 0,
                dropped: 0,
            }),
        });
        self.rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    }

    /// Merge every ring into one JSONL timeline sorted by timestamp. Rings
    /// that overwrote entries contribute a synthetic `flight.dropped`
    /// event so truncation is visible in the dump.
    #[must_use]
    pub fn dump(&self) -> String {
        let rings: Vec<Arc<ThreadRing>> = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut events: Vec<Event> = Vec::new();
        for ring in &rings {
            let (mut evs, dropped) = ring.snapshot();
            if dropped > 0 {
                events.push(Event {
                    thread: ring.label.clone(),
                    ts_us: evs.first().map_or(0, |e| e.ts_us),
                    name: "flight.dropped".to_string(),
                    corr: String::new(),
                    dur_us: None,
                    detail: format!("{dropped} older events overwritten"),
                });
            }
            events.append(&mut evs);
        }
        events.sort_by_key(|e| e.ts_us);
        let mut out = String::new();
        for e in &events {
            if let Ok(line) = serde_json::to_string(e) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Chain a panic hook that writes the merged timeline to stderr after
    /// the default hook runs. Installs at most one hook per process (later
    /// calls are no-ops), so repeated server construction in tests is
    /// safe.
    pub fn install_panic_hook(self: &Arc<Self>) {
        static INSTALLED: AtomicBool = AtomicBool::new(false);
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        let rec = Arc::clone(self);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            let dump = rec.dump();
            if !dump.is_empty() {
                eprintln!("--- flight recorder dump (panic) ---");
                eprint!("{dump}");
                eprintln!("--- end flight recorder dump ---");
            }
        }));
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadRing>>> = const { RefCell::new(None) };
}

/// Register a ring for the current thread and make it the implicit target
/// of [`event`] / [`span`] on this thread. Returns the ring (also useful
/// directly). Worker loops call this once at startup.
pub fn install(recorder: &Arc<FlightRecorder>, label: &str) -> Arc<ThreadRing> {
    let ring = recorder.ring(label);
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&ring)));
    ring
}

/// Drop the current thread's implicit ring (recording becomes a no-op
/// again). The ring stays registered with its recorder.
pub fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Record an instantaneous event on the current thread's ring, if one is
/// installed; otherwise a no-op.
pub fn event(name: &str, corr: &str, detail: &str) {
    CURRENT.with(|c| {
        if let Some(ring) = c.borrow().as_ref() {
            ring.event(name, corr, detail);
        }
    });
}

/// Open a span on the current thread's ring. The span records itself
/// (start timestamp + duration) when dropped; without an installed ring
/// the returned guard is inert.
#[must_use]
pub fn span(name: &str, corr: &str) -> Span {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map_or(Span { inner: None }, |ring| Span {
                inner: Some(SpanInner {
                    ring: Arc::clone(ring),
                    start_us: ring.now_us(),
                    name: name.to_string(),
                    corr: corr.to_string(),
                    detail: String::new(),
                }),
            })
    })
}

#[derive(Debug)]
struct SpanInner {
    ring: Arc<ThreadRing>,
    start_us: u64,
    name: String,
    corr: String,
    detail: String,
}

/// RAII guard returned by [`span`]: records one [`Event`] covering its
/// lifetime when dropped.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attach free-form detail reported with the span (e.g. the outcome,
    /// known only at the end).
    pub fn set_detail(&mut self, detail: &str) {
        if let Some(inner) = &mut self.inner {
            inner.detail = detail.to_string();
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = inner.ring.now_us();
            inner.ring.push(Event {
                thread: inner.ring.label.clone(),
                ts_us: inner.start_us,
                name: inner.name,
                corr: inner.corr,
                dur_us: Some(end.saturating_sub(inner.start_us)),
                detail: inner.detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        let ring = rec.ring("w0");
        for i in 0..6 {
            ring.event(&format!("e{i}"), "c", "");
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 2);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e2", "e3", "e4", "e5"], "oldest evicted first");
        // Retained order stays chronological.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn dump_merges_rings_and_flags_truncation() {
        let rec = FlightRecorder::new(2);
        let a = rec.ring("a");
        let b = rec.ring("b");
        a.event("a1", "x", "");
        b.event("b1", "x", "");
        a.event("a2", "x", "");
        a.event("a3", "x", ""); // evicts a1
        let dump = rec.dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines.iter().all(|l| l.starts_with('{')), "JSONL lines");
        assert!(dump.contains("\"flight.dropped\""));
        assert!(dump.contains("\"a3\"") && dump.contains("\"b1\""));
        assert!(!dump.contains("\"a1\""), "evicted entry absent");
    }

    #[test]
    fn implicit_api_is_noop_until_installed() {
        // No ring installed on this thread: must not panic, must not record.
        event("orphan", "c", "");
        drop(span("orphan_span", "c"));
        let rec = FlightRecorder::new(8);
        let ring = install(&rec, "t");
        event("seen", "c", "detail");
        {
            let mut sp = span("op", "c");
            sp.set_detail("ok");
        }
        uninstall();
        event("after", "c", "");
        let (events, _) = ring.snapshot();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["seen", "op"]);
        assert!(events[1].dur_us.is_some(), "span has a duration");
        assert_eq!(events[1].detail, "ok");
    }
}
