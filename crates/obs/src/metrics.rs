//! Counters, gauges and log-bucketed histograms with Prometheus text
//! exposition.
//!
//! The [`Registry`] hands out shared handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) and renders every registered metric in the Prometheus
//! text exposition format (`# HELP` / `# TYPE` headers, one sample line
//! per series). Histograms use base-2 logarithmic buckets: observation
//! `v` lands in the bucket indexed by `v`'s bit length, so 65 buckets
//! cover the whole `u64` range with no configuration and an O(1)
//! branch-free `observe`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per possible `u64` bit length (0–64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The histogram bucket an observation falls into: its bit length
/// (0 → bucket 0, 1 → 1, 2..=3 → 2, …, `u64::MAX` → 64).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label), or
/// `None` for the last bucket, whose bound renders as `+Inf`.
#[must_use]
pub fn bucket_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(0),
        1..=63 => Some((1u64 << i) - 1),
        _ => None,
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. For collectors that mirror an externally
    /// maintained monotone counter (e.g. a consistent snapshot taken
    /// under a lock) into the registry at scrape time.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, pool sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram over `u64` observations (typically
/// microsecond latencies).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current bucket counts, sum and count.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A collection of named metrics rendered together as one exposition page.
///
/// Registration is idempotent: asking for a (name, label-set) that already
/// exists returns the existing handle, so scrape-time registration of
/// dynamically discovered series (e.g. one counter per solver) is safe.
/// Registering the same name with a different metric *type* panics — that
/// is a programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with a label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            other => panic!(
                "metric `{name}` already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with a label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(g) => g,
            other => panic!(
                "metric `{name}` already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a histogram with a label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            Handle::Histogram(Arc::new(Histogram::default()))
        }) {
            Handle::Histogram(h) => h,
            other => panic!(
                "metric `{name}` already registered as {}",
                other.type_name()
            ),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut entries = self.entries.lock().expect("registry lock");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            return e.handle.clone();
        }
        let handle = make();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format. Series of the same family (name) are grouped under one
    /// `# HELP` / `# TYPE` header, in first-registration order.
    #[must_use]
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("registry lock");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if seen.contains(&e.name.as_str()) {
                continue;
            }
            seen.push(&e.name);
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                e.name,
                escape_help(&e.help),
                e.name,
                e.handle.type_name()
            ));
            for s in entries.iter().filter(|s| s.name == e.name) {
                render_entry(&mut out, s);
            }
        }
        out
    }
}

fn label_eq(a: &[(String, String)], b: &[(&str, &str)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a label set (plus an optional extra label) as `{k="v",…}`, or
/// the empty string when there are no labels at all.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_entry(out: &mut String, e: &Entry) {
    match &e.handle {
        Handle::Counter(c) => {
            out.push_str(&format!(
                "{}{} {}\n",
                e.name,
                label_block(&e.labels, None),
                c.get()
            ));
        }
        Handle::Gauge(g) => {
            out.push_str(&format!(
                "{}{} {}\n",
                e.name,
                label_block(&e.labels, None),
                g.get()
            ));
        }
        Handle::Histogram(h) => {
            let snap = h.snapshot();
            let top = snap
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| i + 1);
            let mut cum = 0u64;
            for (i, &c) in snap.buckets.iter().enumerate().take(top) {
                cum += c;
                let le = bucket_bound(i).map_or_else(|| "+Inf".to_string(), |b| b.to_string());
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    e.name,
                    label_block(&e.labels, Some(("le", &le))),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                e.name,
                label_block(&e.labels, Some(("le", "+Inf"))),
                snap.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                e.name,
                label_block(&e.labels, None),
                snap.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                e.name,
                label_block(&e.labels, None),
                snap.count
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        // Every power-of-two boundary: 2^k − 1 stays in bucket k, 2^k
        // opens bucket k + 1.
        for k in 1..63 {
            let boundary = 1u64 << k;
            assert_eq!(bucket_index(boundary - 1), k, "below 2^{k}");
            assert_eq!(bucket_index(boundary), k + 1, "at 2^{k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn bucket_bounds_are_inclusive_and_contiguous() {
        assert_eq!(bucket_bound(0), Some(0));
        assert_eq!(bucket_bound(1), Some(1));
        assert_eq!(bucket_bound(2), Some(3));
        assert_eq!(bucket_bound(63), Some((1u64 << 63) - 1));
        assert_eq!(bucket_bound(64), None);
        // Each value ≤ its bucket's bound and > the previous bound.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            if let Some(ub) = bucket_bound(i) {
                assert!(v <= ub, "{v} in bucket {i} bound {ub}");
            }
            if i > 0 {
                let prev = bucket_bound(i - 1).expect("non-final");
                assert!(v > prev, "{v} above bucket {} bound {prev}", i - 1);
            }
        }
    }

    #[test]
    fn histogram_observe_extremes() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[64], 1);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, u64::MAX.wrapping_add(1)); // 0 + 1 + MAX wraps
    }

    #[test]
    fn render_counters_gauges_histograms() {
        let r = Registry::new();
        let c = r.counter("mgrts_requests_total", "Requests received.");
        c.add(3);
        let g = r.gauge("mgrts_queue_depth", "Queued jobs.");
        g.set(2);
        let h = r.histogram("mgrts_latency_us", "Latency in microseconds.");
        h.observe(5); // bucket 3 (4..=7)
        let text = r.render();
        assert!(text.contains("# TYPE mgrts_requests_total counter\n"));
        assert!(text.contains("mgrts_requests_total 3\n"));
        assert!(text.contains("# TYPE mgrts_queue_depth gauge\n"));
        assert!(text.contains("mgrts_queue_depth 2\n"));
        assert!(text.contains("# TYPE mgrts_latency_us histogram\n"));
        assert!(text.contains("mgrts_latency_us_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("mgrts_latency_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("mgrts_latency_us_sum 5\n"));
        assert!(text.contains("mgrts_latency_us_count 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", "help");
        h.observe(1); // bucket 1
        h.observe(3); // bucket 2
        h.observe(3); // bucket 2
        let text = r.render();
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn labeled_series_group_under_one_family() {
        let r = Registry::new();
        r.counter_with("wins_total", "Race wins.", &[("solver", "csp1")])
            .inc();
        r.counter_with("wins_total", "Race wins.", &[("solver", "csp2")])
            .add(2);
        // Idempotent re-registration returns the same handle.
        r.counter_with("wins_total", "Race wins.", &[("solver", "csp1")])
            .inc();
        let text = r.render();
        assert_eq!(text.matches("# TYPE wins_total counter").count(), 1);
        assert!(text.contains("wins_total{solver=\"csp1\"} 2\n"));
        assert!(text.contains("wins_total{solver=\"csp2\"} 2\n"));
    }
}
