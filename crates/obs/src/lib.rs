//! Zero-dependency telemetry for the MGRTS stack.
//!
//! Three pillars, one per module:
//!
//! * [`stats`] — [`stats::SearchStats`]: plain-counter search statistics
//!   (decisions, backtracks, per-propagator-kind wakes/prunes/entailments,
//!   GAC matching rebuilds, peak trail depth, SAT conflicts/restarts)
//!   accumulated by the solver backends, merged across runs, and recorded
//!   into campaign records as an optional `search` block.
//! * [`flight`] — a lightweight span/event API backed by a fixed-size
//!   ring buffer per worker thread (the *flight recorder*). Recording is
//!   a thread-local no-op until a recorder is installed; the accumulated
//!   timeline is dumped as JSONL on panic, cancellation, or when a solve
//!   crosses a slow-threshold.
//! * [`metrics`] — a registry of counters, gauges and log-bucketed
//!   latency histograms rendered in the Prometheus text exposition
//!   format (the serve layer's `{"type":"metrics"}` response).
//!
//! The crate is hand-rolled against the vendored `serde` shim — no
//! `tracing`, `prometheus` or `metrics` dependencies — mirroring how the
//! workspace vendored its other infrastructure.

pub mod flight;
pub mod metrics;
pub mod stats;

pub use flight::{FlightRecorder, ThreadRing};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use stats::{KindStats, SearchStats};
