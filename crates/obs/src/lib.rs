//! Zero-dependency telemetry for the MGRTS stack.
//!
//! Three pillars, one per module:
//!
//! * [`stats`] — [`stats::SearchStats`]: plain-counter search statistics
//!   (decisions, backtracks, per-propagator-kind wakes/prunes/entailments,
//!   GAC matching rebuilds, peak trail depth, SAT conflicts/restarts)
//!   accumulated by the solver backends, merged across runs, and recorded
//!   into campaign records as an optional `search` block.
//! * [`flight`] — a lightweight span/event API backed by a fixed-size
//!   ring buffer per worker thread (the *flight recorder*). Recording is
//!   a thread-local no-op until a recorder is installed; the accumulated
//!   timeline is dumped as JSONL on panic, cancellation, or when a solve
//!   crosses a slow-threshold.
//! * [`metrics`] — a registry of counters, gauges and log-bucketed
//!   latency histograms rendered in the Prometheus text exposition
//!   format (the serve layer's `{"type":"metrics"}` response).
//!
//! The crate is hand-rolled against the vendored `serde` shim — no
//! `tracing`, `prometheus` or `metrics` dependencies — mirroring how the
//! workspace vendored its other infrastructure.

pub mod flight;
pub mod metrics;
pub mod stats;

pub use flight::{FlightRecorder, ThreadRing};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use stats::{KindStats, SearchStats};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide metric registry.
///
/// Library layers that have no registry handy (the record store's
/// quarantine, the lease board's retry loop, panic supervisors) count
/// into this one; surfaces that expose metrics (`mgrts serve`) render it
/// alongside their own registry. Registration is idempotent, so
/// counting is as simple as
/// `mgrts_obs::global().counter(name, help).inc()`.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}
