//! `mgrts` binary entry point.

fn main() {
    match mgrts_cli::commands::dispatch(std::env::args()) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
