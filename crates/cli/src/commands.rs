//! Subcommand implementations. Every command is a pure function from
//! parsed arguments to output text, so the test suite drives them without
//! spawning processes.

use std::time::Duration;

use mgrts_core::csp2::Csp2Solver;
use mgrts_core::engine::{Budget, CancelToken, FeasibilitySolver, SolverSpec};
use mgrts_core::heuristics::TaskOrder;
use mgrts_core::minimal_m::minimal_processors;
use mgrts_core::verify::check_identical;
use mgrts_core::{SolveResult, Verdict};
use rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use rt_prob::{analyze_all, hyperperiod_miss_probability, ExecModel, McConfig};
use rt_task::TaskSet;

use crate::args::{ArgError, Args};
use crate::io::{load_instance, CliError};

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Other(e.to_string())
    }
}

/// Resolve `m`: flag overrides file, file overrides nothing.
fn resolve_m(args: &Args, file_m: Option<usize>) -> Result<usize, CliError> {
    if let Some(m) = args.opt::<usize>("m", "a processor count")? {
        return Ok(m);
    }
    file_m.ok_or_else(|| CliError::Other("no --m and the input file embeds none".into()))
}

fn parse_order(args: &Args) -> Result<TaskOrder, CliError> {
    Ok(match args.opt_str("order") {
        None | Some("dc") => TaskOrder::DeadlineMinusWcet,
        Some("input") => TaskOrder::Lexicographic,
        Some("rm") => TaskOrder::RateMonotonic,
        Some("dm") => TaskOrder::DeadlineMonotonic,
        Some("tc") => TaskOrder::PeriodMinusWcet,
        Some(other) => {
            return Err(CliError::Other(format!(
                "unknown --order {other} (expected input|rm|dm|tc|dc)"
            )))
        }
    })
}

fn time_budget(args: &Args) -> Result<Option<Duration>, CliError> {
    Ok(args
        .opt::<u64>("time-ms", "milliseconds")?
        .map(Duration::from_millis))
}

/// Resolve a `--solver` name to an engine. `csp2` honours the separate
/// `--order` flag, so the historical `--solver csp2 --order rm` spelling
/// keeps working next to the explicit `csp2-rm`.
fn resolve_engine(name: &str, order: TaskOrder) -> Result<Box<dyn FeasibilitySolver>, CliError> {
    if name == "csp2" {
        return Ok(SolverSpec::Csp2(order).build());
    }
    let spec: SolverSpec = name.parse().map_err(CliError::Other)?;
    Ok(spec.build())
}

fn run_solver(
    name: &str,
    ts: &TaskSet,
    m: usize,
    order: TaskOrder,
    time: Option<Duration>,
) -> Result<SolveResult, CliError> {
    let engine = resolve_engine(name, order)?;
    let budget = Budget {
        time,
        ..Budget::unlimited()
    };
    Ok(engine.solve(ts, m, &budget, &CancelToken::new())?)
}

/// `mgrts solve <instance> [--m N] [--solver S] [--order O] [--time-ms T]
/// [--gantt] [--json]`
pub fn cmd_solve(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args.positional(0, "instance")?)?;
    let m = resolve_m(args, inst.file_m)?;
    let solver = args.opt_str("solver").unwrap_or("csp2");
    let order = parse_order(args)?;
    let res = run_solver(solver, &inst.taskset, m, order, time_budget(args)?)?;

    let mut out = String::new();
    match &res.verdict {
        Verdict::Feasible(s) => {
            check_identical(&inst.taskset, m, s)
                .map_err(|e| CliError::Other(format!("solver produced invalid schedule: {e}")))?;
            out.push_str("FEASIBLE\n");
            if args.switch("json") {
                out.push_str(&serde_json::to_string(s).expect("schedule serializes"));
                out.push('\n');
            }
            if args.switch("gantt") {
                out.push_str(&rt_sim::render_schedule(s));
            }
        }
        Verdict::Infeasible => out.push_str("INFEASIBLE\n"),
        Verdict::Unknown(r) => out.push_str(&format!("UNKNOWN ({r:?})\n")),
    }
    if !args.switch("quiet") {
        out.push_str(&format!(
            "decisions={} failures={} elapsed={:?}\n",
            res.stats.decisions,
            res.stats.failures,
            res.stats.elapsed()
        ));
    }
    Ok(out)
}

/// `mgrts analyze <instance> [--m N]`
pub fn cmd_analyze(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args.positional(0, "instance")?)?;
    let m = resolve_m(args, inst.file_m)?;
    let report = rt_analysis::analyze(&inst.taskset, m);
    Ok(report.to_string())
}

/// `mgrts generate --n N --tmax T [--m M] [--count K] [--seed S]
/// [--synchronous]` — emits one JSON problem per line.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let n = args.req::<usize>("n", "a task count")?;
    let t_max = args.req::<u64>("tmax", "a maximum period")?;
    let count = args.opt_or::<u64>("count", "an instance count", 1)?;
    let seed = args.opt_or::<u64>("seed", "a seed", 1)?;
    let m = match args.opt_str("m") {
        None => MSpec::UniformBelowN,
        Some("auto") => MSpec::MinUtilization,
        Some(v) => MSpec::Fixed(
            v.parse()
                .map_err(|_| CliError::Other(format!("--m {v}: expected an integer or 'auto'")))?,
        ),
    };
    let cfg = GeneratorConfig {
        n,
        m,
        t_max,
        order: ParamOrder::DeadlineFirst,
        synchronous: args.switch("synchronous"),
    };
    let gen = ProblemGenerator::new(cfg, seed);
    let mut out = String::new();
    for p in gen.batch(count) {
        out.push_str(&serde_json::to_string(&p).expect("problem serializes"));
        out.push('\n');
    }
    Ok(out)
}

/// `mgrts min-m <instance> [--time-ms T]`
pub fn cmd_min_m(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args.positional(0, "instance")?)?;
    let result = minimal_processors(
        &inst.taskset,
        TaskOrder::DeadlineMinusWcet,
        time_budget(args)?,
    )?;
    let mut out = String::new();
    for (m, res) in &result.probes {
        out.push_str(&format!(
            "m={m}: {}\n",
            match &res.verdict {
                Verdict::Feasible(_) => "feasible",
                Verdict::Infeasible => "infeasible",
                Verdict::Unknown(_) => "unknown (budget)",
            }
        ));
    }
    match result.minimal_m {
        Some(m) => out.push_str(&format!("minimal m = {m}\n")),
        None => out.push_str("minimal m not determined within budget\n"),
    }
    Ok(out)
}

/// `mgrts gantt <instance> [--m N]` — availability intervals, plus the
/// schedule when `m` resolves and the instance is feasible.
pub fn cmd_gantt(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args.positional(0, "instance")?)?;
    let mut out = rt_sim::render_intervals(&inst.taskset)?;
    let m = args.opt::<usize>("m", "a processor count")?.or(inst.file_m);
    if let Some(m) = m {
        let res = Csp2Solver::new(&inst.taskset, m)?
            .with_order(TaskOrder::DeadlineMinusWcet)
            .solve();
        if let Some(s) = res.verdict.schedule() {
            out.push('\n');
            out.push_str(&rt_sim::render_schedule(s));
        } else {
            out.push_str("\n(no feasible schedule)\n");
        }
    }
    Ok(out)
}

/// `mgrts prob <instance> [--m N] [--overrun-p P] [--overrun-factor F]
/// [--rounds R]` — probabilistic analysis of the CSP2 schedule.
pub fn cmd_prob(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args.positional(0, "instance")?)?;
    let m = resolve_m(args, inst.file_m)?;
    let p_over = args.opt_or::<f64>("overrun-p", "a probability", 0.0)?;
    let factor = args.opt_or::<f64>("overrun-factor", "a factor", 2.0)?;
    let rounds = args.opt_or::<u64>("rounds", "a round count", 10_000)?;

    let res = Csp2Solver::new(&inst.taskset, m)?
        .with_order(TaskOrder::DeadlineMinusWcet)
        .solve();
    let Some(schedule) = res.verdict.schedule() else {
        return Err(CliError::Other(
            "instance has no feasible schedule to analyze".into(),
        ));
    };
    let model = if p_over > 0.0 {
        ExecModel::with_overruns(&inst.taskset, p_over, factor)
    } else {
        ExecModel::uniform_to_wcet(&inst.taskset)
    };
    let timings = analyze_all(&inst.taskset, schedule, &model)?;
    let mut out = String::new();
    out.push_str(&format!(
        "exact hyperperiod miss probability: {:.6}\n",
        hyperperiod_miss_probability(&timings)
    ));
    out.push_str(&format!(
        "expected reclaimable idle per hyperperiod: {:.3} slots\n",
        rt_prob::expected_idle_per_hyperperiod(&timings, &model)
    ));
    for t in &timings {
        out.push_str(&format!(
            "task {} job {}: miss={:.4} mean-response={}\n",
            t.job.task,
            t.job.k,
            t.miss_prob,
            t.mean_on_time_response()
                .map_or("-".to_string(), |r| format!("{r:.2}")),
        ));
    }
    let mc = rt_prob::monte_carlo_run(
        &inst.taskset,
        schedule,
        &model,
        &McConfig {
            rounds,
            ..McConfig::default()
        },
    )?;
    out.push_str(&format!(
        "monte-carlo ({rounds} rounds): hyperperiod miss rate {:.6}, mean idle {:.3}\n",
        mc.hyperperiod_miss_rate(),
        mc.mean_idle()
    ));
    Ok(out)
}

/// `mgrts portfolio <instance> [--m N] [--solvers a,b,c] [--time-ms T]
/// [--gantt] [--json]` — race a roster of engines with cooperative
/// cancellation; report the winner and per-backend stats.
///
/// Routed through [`mgrts_bench::policy::race_roster`] — the same code
/// path the campaign engine's `portfolio-race` execution policy runs, so
/// this subcommand owns no race loop of its own.
pub fn cmd_portfolio(args: &Args) -> Result<String, CliError> {
    use mgrts_bench::policy::{race_roster, render_race};
    use mgrts_core::engine::PlatformSpec;

    let inst = load_instance(args.positional(0, "instance")?)?;
    let m = resolve_m(args, inst.file_m)?;
    let order = parse_order(args)?;
    let roster: Vec<Box<dyn FeasibilitySolver>> = match args.opt_str("solvers") {
        None => SolverSpec::DEFAULT_PORTFOLIO
            .iter()
            .map(|s| s.build())
            .collect(),
        Some(list) => {
            let mut roster = Vec::new();
            for name in list.split(',').filter(|s| !s.is_empty()) {
                // `csp2` honours --order, exactly like `solve --solver csp2`.
                roster.push(resolve_engine(name, order)?);
            }
            if roster.is_empty() {
                return Err(CliError::Other("--solvers lists no solver".into()));
            }
            roster
        }
    };
    let budget = Budget {
        time: time_budget(args)?,
        ..Budget::unlimited()
    };
    let race = race_roster(
        &roster,
        &inst.taskset,
        &PlatformSpec::identical(m),
        &budget,
        &CancelToken::new(),
    )?;

    let mut out = String::new();
    match &race.verdict {
        Verdict::Feasible(s) => {
            out.push_str("FEASIBLE\n");
            if args.switch("json") {
                out.push_str(&serde_json::to_string(s).expect("schedule serializes"));
                out.push('\n');
            }
            if args.switch("gantt") {
                out.push_str(&rt_sim::render_schedule(s));
            }
        }
        Verdict::Infeasible => out.push_str("INFEASIBLE\n"),
        Verdict::Unknown(r) => out.push_str(&format!("UNKNOWN ({r:?})\n")),
    }
    out.push_str(&render_race(&race));
    Ok(out)
}

/// `mgrts bench campaign
/// <run|resume|dispatch|worker|status|compact|report|gate|parity>` — the
/// sharded, resumable (and distributable) experiment-campaign engine.
///
/// Execution-policy flags (on `run` and `dispatch`; override the
/// manifest's `[policy]` section before planning, and therefore re-shard):
///
/// * `--policy single|portfolio-race` — what runs per campaign unit: one
///   roster solver, or the whole roster raced with cooperative
///   cancellation;
/// * `--adaptive-quantile Q [--adaptive-min-samples N]` — wrap the policy
///   in adaptive budgets: cap each unit's wall clock at the cell's
///   recorded solve-time quantile once N decided samples exist.
///
/// Single-process verbs:
///
/// * `run --manifest FILE [--out DIR] [--threads N] [--max-shards K]
///   [--quiet]` — start fresh (clears the store), stream JSONL records +
///   checkpoints, emit `BENCH_<name>.json`;
/// * `resume [--out DIR] [--threads N] [--max-shards K] [--quiet]` —
///   continue a killed campaign exactly where it stopped (committed
///   shards are deduped by content hash);
///
/// Distributed verbs (N processes / machines sharing one store):
///
/// * `dispatch --manifest FILE [--out DIR] [--fresh]` — prepare (or
///   idempotently join) a shared store and sweep expired leases;
/// * `worker [--out DIR] [--id ID] [--threads N] [--lease-ttl-ms MS]
///   [--poll-ms MS] [--max-shards K] [--policy P] [--quiet]` — claim
///   shards via leases, heartbeat while solving, drain until the campaign
///   completes (`--policy` is a guard: refuse a store whose manifest
///   declares a different policy);
/// * `status [--out DIR] [--json]` — per-worker progress and throughput,
///   in-flight and stale leases, completion ETA (`--json` for
///   orchestrators / autoscalers);
/// * `compact [--out DIR]` — merge worker segments, drop superseded
///   copies, snapshot `canonical.jsonl`;
///
/// Reporting:
///
/// * `report <table1|table3|table4|hetero|winners|summary> [--out DIR]` —
///   render a table over the record store (`winners`: per-cell race
///   winner counts of a portfolio campaign);
/// * `gate --summary FILE --baseline FILE [--tolerance F]` — CI perf
///   gate: fail on > F wall-time regression (default 0.25) or any solver
///   verdict drift;
/// * `parity --race DIR --single DIR` — cross-policy gate: a
///   portfolio-race store's per-unit verdicts must match the best
///   single-solver verdict of the same workload (budget straddles warn).
pub fn cmd_bench(args: &Args) -> Result<String, CliError> {
    use mgrts_bench::campaign::{self, CampaignOptions, Manifest, ReportKind, Summary};
    use mgrts_bench::policy::{AdaptiveSpec, PolicyMode};
    use mgrts_bench::queue::{self, WorkerOptions};
    use mgrts_core::engine::CancelGroup;
    use std::path::PathBuf;

    if args.positional(0, "campaign")? != "campaign" {
        return Err(CliError::Other(
            "usage: mgrts bench campaign \
             <run|resume|dispatch|worker|status|compact|report|gate|parity> …"
                .into(),
        ));
    }
    let verb = args.positional(
        1,
        "run|resume|dispatch|worker|status|compact|report|gate|parity",
    )?;
    // Apply the policy-selection flags on top of a loaded manifest.
    let apply_policy = |manifest: &mut Manifest| -> Result<(), CliError> {
        if let Some(mode) = args.opt_str("policy") {
            manifest.policy.mode = mode.parse::<PolicyMode>().map_err(CliError::Other)?;
        }
        match args.opt::<f64>("adaptive-quantile", "a quantile in (0, 1]")? {
            Some(q) => {
                let min_samples = args.opt_or::<u64>(
                    "adaptive-min-samples",
                    "a sample count",
                    AdaptiveSpec::DEFAULT_MIN_SAMPLES,
                )?;
                manifest.policy.adaptive = Some(
                    AdaptiveSpec::new(q, min_samples)
                        .map_err(|e| CliError::Other(format!("--adaptive-quantile: {e}")))?,
                );
            }
            None => {
                if args.opt_str("adaptive-min-samples").is_some() {
                    return Err(CliError::Other(
                        "--adaptive-min-samples requires --adaptive-quantile".into(),
                    ));
                }
            }
        }
        Ok(())
    };
    let out_dir = |manifest: Option<&Manifest>| -> Result<PathBuf, CliError> {
        if let Some(dir) = args.opt_str("out") {
            return Ok(PathBuf::from(dir));
        }
        match manifest {
            Some(m) => {
                // The default store is keyed by campaign name *and* policy:
                // one manifest now yields different campaigns per policy,
                // and `run`'s fresh start clears the target directory — a
                // race re-run of the smoke manifest must not silently wipe
                // the single-solver store it will be compared against.
                let mut name = m.name.clone();
                if !m.policy.is_default() {
                    name.push('-');
                    name.push_str(m.policy.mode.name());
                    if m.policy.adaptive.is_some() {
                        name.push_str("-adaptive");
                    }
                }
                Ok(PathBuf::from(format!("target/campaigns/{name}")))
            }
            None => Err(CliError::Other(
                "no --out and no manifest to derive it from".into(),
            )),
        }
    };
    let opts = CampaignOptions {
        threads: args.opt_or::<usize>(
            "threads",
            "a thread count",
            CampaignOptions::default().threads,
        )?,
        progress: !args.switch("quiet"),
        max_shards: args.opt::<u64>("max-shards", "a shard count")?,
    };
    let campaign_err = |e: campaign::CampaignError| CliError::Other(e.to_string());

    match verb {
        "run" => {
            let path: String = args.req("manifest", "a manifest file")?;
            let mut manifest = Manifest::load(std::path::Path::new(&path)).map_err(campaign_err)?;
            apply_policy(&mut manifest)?;
            let dir = out_dir(Some(&manifest))?;
            let outcome = campaign::run_fresh(&manifest, &dir, &opts, &CancelGroup::new())
                .map_err(campaign_err)?;
            Ok(format!(
                "{}record store: {}\n",
                campaign::render_summary(&outcome.summary),
                dir.display()
            ))
        }
        "resume" => {
            let dir = out_dir(None)?;
            let outcome =
                campaign::resume(&dir, &opts, &CancelGroup::new()).map_err(campaign_err)?;
            Ok(format!(
                "{}resumed: {} shard(s) committed this invocation\n",
                campaign::render_summary(&outcome.summary),
                outcome.shards_committed
            ))
        }
        "dispatch" => {
            let path: String = args.req("manifest", "a manifest file")?;
            let mut manifest = Manifest::load(std::path::Path::new(&path)).map_err(campaign_err)?;
            apply_policy(&mut manifest)?;
            let dir = out_dir(Some(&manifest))?;
            let report =
                queue::dispatch(&manifest, &dir, args.switch("fresh")).map_err(campaign_err)?;
            Ok(format!(
                "{} store {}: {} shard(s) planned, {} done, {} expired lease(s) reclaimed\n\
                 workers join with: mgrts bench campaign worker --out {}\n",
                if report.initialized {
                    "initialized"
                } else {
                    "joined"
                },
                dir.display(),
                report.shards_total,
                report.shards_done,
                report.leases_reclaimed,
                dir.display(),
            ))
        }
        "worker" => {
            let dir = out_dir(None)?;
            // --policy on a worker is a guard, not an override: the policy
            // lives in the dispatched manifest (it shapes the shard plan),
            // so a worker started for the wrong policy must refuse early
            // rather than silently run whatever the store declares.
            if let Some(expect) = args.opt_str("policy") {
                use mgrts_bench::sink::{LocalStore, RecordStore};
                let expect = expect.parse::<PolicyMode>().map_err(CliError::Other)?;
                let store = LocalStore::open(&dir)?;
                let stored = Manifest::parse(
                    &store
                        .read_manifest()
                        .map_err(|e| CliError::Other(format!("store has no manifest: {e}")))?,
                )
                .map_err(campaign_err)?;
                if stored.policy.mode != expect {
                    return Err(CliError::Other(format!(
                        "store {} was dispatched with policy `{}`, worker expects `{expect}`",
                        dir.display(),
                        stored.policy.mode
                    )));
                }
            }
            let defaults = WorkerOptions::default();
            let wopts = WorkerOptions {
                id: args
                    .opt_str("id")
                    .map_or_else(|| defaults.id.clone(), ToString::to_string),
                threads: args.opt_or::<usize>("threads", "a thread count", defaults.threads)?,
                lease_ttl: args
                    .opt::<u64>("lease-ttl-ms", "milliseconds")?
                    .map_or(defaults.lease_ttl, Duration::from_millis),
                poll: args
                    .opt::<u64>("poll-ms", "milliseconds")?
                    .map_or(defaults.poll, Duration::from_millis),
                max_shards: args.opt::<u64>("max-shards", "a shard count")?,
                progress: !args.switch("quiet"),
            };
            let outcome =
                queue::run_worker(&dir, &wopts, &CancelGroup::new()).map_err(campaign_err)?;
            Ok(format!(
                "{}worker {}: {} shard(s) committed this invocation\n",
                campaign::render_summary(&outcome.summary),
                wopts.id,
                outcome.shards_committed
            ))
        }
        "status" => {
            let dir = out_dir(None)?;
            let report = queue::status(&dir).map_err(campaign_err)?;
            if args.switch("json") {
                let mut out = serde_json::to_string_pretty(&report)
                    .map_err(|e| CliError::Other(e.to_string()))?;
                out.push('\n');
                Ok(out)
            } else {
                Ok(queue::render_status(&report))
            }
        }
        "parity" => {
            let race: String = args.req("race", "a portfolio-race store directory")?;
            let single: String = args.req("single", "a single-solver store directory")?;
            let report =
                campaign::parity(std::path::Path::new(&race), std::path::Path::new(&single))
                    .map_err(campaign_err)?;
            let body = report
                .lines
                .iter()
                .map(|l| format!("  {l}\n"))
                .collect::<String>();
            if report.ok {
                Ok(format!("POLICY PARITY PASS\n{body}"))
            } else {
                Err(CliError::Other(format!("POLICY PARITY FAIL\n{body}")))
            }
        }
        "compact" => {
            let dir = out_dir(None)?;
            let report = campaign::compact(&dir).map_err(campaign_err)?;
            Ok(format!(
                "compacted {}: {} record line(s) -> {} record(s) over {} shard(s); \
                 {} worker segment(s) merged; canonical export snapshotted\n",
                dir.display(),
                report.lines_before,
                report.records,
                report.shards,
                report.segments_merged
            ))
        }
        "report" => {
            let kind: ReportKind = args
                .positional(2, "table1|table3|table4|hetero|winners|profile|summary")?
                .parse()
                .map_err(CliError::Other)?;
            let dir = out_dir(None)?;
            campaign::report(&dir, kind).map_err(campaign_err)
        }
        "gate" => {
            let load = |key: &str| -> Result<Summary, CliError> {
                let path: String = args.req(key, "a BENCH_*.json file")?;
                let text = std::fs::read_to_string(&path)?;
                serde_json::from_str(&text).map_err(|e| CliError::Parse(format!("{path}: {e}")))
            };
            let current = load("summary")?;
            let baseline = load("baseline")?;
            let tolerance = args.opt_or::<f64>("tolerance", "a fraction", 0.25)?;
            let report = campaign::gate(&current, &baseline, tolerance);
            let body = report
                .lines
                .iter()
                .map(|l| format!("  {l}\n"))
                .collect::<String>();
            if report.ok {
                Ok(format!("PERF GATE PASS\n{body}"))
            } else {
                Err(CliError::Other(format!("PERF GATE FAIL\n{body}")))
            }
        }
        other => Err(CliError::Other(format!(
            "unknown campaign verb {other:?} \
             (expected run|resume|dispatch|worker|status|compact|report|gate|parity)"
        ))),
    }
}

/// `mgrts verify <instance> --schedule <schedule.json> [--m N]`
pub fn cmd_verify(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args.positional(0, "instance")?)?;
    let sched_path: String = args.req("schedule", "a schedule file")?;
    let text = std::fs::read_to_string(&sched_path)?;
    let schedule: mgrts_core::Schedule =
        serde_json::from_str(&text).map_err(|e| CliError::Parse(format!("schedule file: {e}")))?;
    let m = args
        .opt::<usize>("m", "a processor count")?
        .or(inst.file_m)
        .unwrap_or_else(|| schedule.num_processors());
    match check_identical(&inst.taskset, m, &schedule) {
        Ok(()) => Ok("VALID: all conditions C1-C4 hold\n".to_string()),
        Err(e) => Ok(format!("INVALID: {e}\n")),
    }
}

/// `mgrts serve [--addr A] [--data-dir DIR] [--workers N] [--queue-cap N]
/// [--budget-ms MS] [--spill-tasks N] [--spill-budget-ms MS]
/// [--solve-delay-ms MS] [--slow-ms MS] [--job-retries N]
/// [--deadline-slack-ms MS]`
///
/// Runs until SIGTERM/SIGINT or a wire-level `shutdown` request.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let defaults = mgrts_bench::serve::ServeConfig::default();
    let cfg = mgrts_bench::serve::ServeConfig {
        addr: args.opt_str("addr").map_or(defaults.addr, str::to_string),
        data_dir: args
            .opt_str("data-dir")
            .map_or(defaults.data_dir, std::path::PathBuf::from),
        workers: args.opt_or("workers", "a worker count", defaults.workers)?,
        queue_cap: args.opt_or("queue-cap", "a queue depth", defaults.queue_cap)?,
        default_budget_ms: args.opt_or("budget-ms", "milliseconds", defaults.default_budget_ms)?,
        spill_tasks: args.opt_or("spill-tasks", "a task count", defaults.spill_tasks)?,
        spill_budget_ms: args.opt_or(
            "spill-budget-ms",
            "milliseconds",
            defaults.spill_budget_ms,
        )?,
        solve_delay_ms: args.opt_or("solve-delay-ms", "milliseconds", defaults.solve_delay_ms)?,
        slow_ms: args.opt_or("slow-ms", "milliseconds", defaults.slow_ms)?,
        job_retries: args.opt_or("job-retries", "a retry count", defaults.job_retries)?,
        deadline_slack_ms: args.opt_or(
            "deadline-slack-ms",
            "milliseconds",
            defaults.deadline_slack_ms,
        )?,
    };
    let token = crate::signal::install();
    let summary = mgrts_bench::serve::run(cfg, &token)?;
    Ok(format!("{summary}\n"))
}

/// Connect to a serve endpoint, retrying until `wait_ms` elapses (the
/// server may still be binding when CI fires the first client). Retries
/// back off exponentially with jitter so a fleet of clients hammering a
/// restarting server spreads out instead of thundering in lockstep.
fn client_connect(addr: &str, wait_ms: u64) -> Result<std::net::TcpStream, CliError> {
    let deadline = std::time::Instant::now() + Duration::from_millis(wait_ms);
    let salt = u64::from(std::process::id());
    let mut attempt = 0u32;
    loop {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(CliError::Other(format!("cannot connect to {addr}: {e}")));
                }
                std::thread::sleep(mgrts_fault::backoff_delay(attempt, 25, 1_000, salt));
                attempt += 1;
            }
        }
    }
}

/// One line-delimited request/response exchange.
fn client_exchange(stream: &std::net::TcpStream, line: &str) -> Result<String, CliError> {
    use std::io::{BufRead, BufReader, Write};
    let mut out = stream.try_clone()?;
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if response.is_empty() {
        return Err(CliError::Other("server closed the connection".into()));
    }
    Ok(response.trim_end().to_string())
}

/// Build the JSON `solve` request from client flags.
fn client_solve_line(args: &Args) -> Result<String, CliError> {
    use serde::Serialize;
    use serde_json::Value;
    let inst = load_instance(args.positional(1, "instance")?)?;
    let m = resolve_m(args, inst.file_m)?;
    let mut fields = vec![
        ("type".to_string(), Value::String("solve".into())),
        ("taskset".to_string(), inst.taskset.to_value()),
        ("m".to_string(), Value::UInt(m as u64)),
    ];
    if let Some(solver) = args.opt_str("solver") {
        fields.push(("solver".to_string(), Value::String(solver.to_string())));
    }
    if let Some(policy) = args.opt_str("policy") {
        fields.push(("policy".to_string(), Value::String(policy.to_string())));
    }
    if let Some(budget) = args.opt::<u64>("budget-ms", "milliseconds")? {
        fields.push(("budget_ms".to_string(), Value::UInt(budget)));
    }
    if let Some(seed) = args.opt::<u64>("seed", "a seed")? {
        fields.push(("seed".to_string(), Value::UInt(seed)));
    }
    serde_json::to_string(&Value::Object(fields)).map_err(|e| CliError::Other(e.to_string()))
}

/// Render a `stats` response as an aligned human-readable listing,
/// preserving the server's field order.
fn render_stats(response: &str) -> Result<String, CliError> {
    let v: serde_json::Value = serde_json::from_str(response)
        .map_err(|e| CliError::Parse(format!("server response: {e}")))?;
    let serde_json::Value::Object(fields) = v else {
        return Err(CliError::Parse(
            "server response: expected an object".into(),
        ));
    };
    let width = fields
        .iter()
        .filter(|(k, _)| k != "type")
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (k, v) in &fields {
        if k == "type" {
            continue;
        }
        let rendered = match v {
            serde_json::Value::UInt(n) => n.to_string(),
            serde_json::Value::String(s) => s.clone(),
            other => serde_json::to_string(other).unwrap_or_default(),
        };
        out.push_str(&format!("{k:width$}  {rendered}\n"));
    }
    Ok(out)
}

/// `mgrts client <solve|poll|stats|metrics> [...]` — a line-protocol
/// client for `mgrts serve`. Prints the raw response JSON, one line per
/// exchange (except `stats` without `--json`, which renders a listing,
/// and `metrics`, which prints the exposition body).
///
/// * `client solve <instance> [--m N] [--solver S | --policy P]`
///   `[--budget-ms MS] [--seed S] [--count K] [--parallel]`
/// * `client poll --ticket T [--wait-ms MS]` — with `--wait-ms`, retries
///   until the ticket settles or the wait elapses (then errors).
/// * `client stats [--json] [--watch SECS]` — `--watch` re-samples every
///   `SECS` seconds until interrupted.
/// * `client metrics` — Prometheus text exposition from the server.
///
/// All verbs accept `--addr HOST:PORT` (default `127.0.0.1:7077`) and
/// `--connect-ms MS` (connection-retry window, default 5000).
pub fn cmd_client(args: &Args) -> Result<String, CliError> {
    let addr = args.opt_str("addr").unwrap_or("127.0.0.1:7077").to_string();
    let connect_ms: u64 = args.opt_or("connect-ms", "milliseconds", 5_000)?;
    match args.positional(0, "verb")? {
        "solve" => {
            let line = client_solve_line(args)?;
            let count: usize = args.opt_or("count", "a repeat count", 1)?;
            if args.switch("parallel") && count > 1 {
                let handles: Vec<_> = (0..count)
                    .map(|_| {
                        let addr = addr.clone();
                        let line = line.clone();
                        std::thread::spawn(move || -> Result<String, CliError> {
                            let stream = client_connect(&addr, connect_ms)?;
                            client_exchange(&stream, &line)
                        })
                    })
                    .collect();
                let mut out = String::new();
                for handle in handles {
                    let response = handle
                        .join()
                        .map_err(|_| CliError::Other("client thread panicked".into()))??;
                    out.push_str(&response);
                    out.push('\n');
                }
                Ok(out)
            } else {
                let stream = client_connect(&addr, connect_ms)?;
                let mut out = String::new();
                for _ in 0..count {
                    out.push_str(&client_exchange(&stream, &line)?);
                    out.push('\n');
                }
                Ok(out)
            }
        }
        "poll" => {
            let ticket: String = args.req("ticket", "a ticket id")?;
            let wait_ms: u64 = args.opt_or("wait-ms", "milliseconds", 0)?;
            let line = format!("{{\"type\":\"poll\",\"ticket\":\"{ticket}\"}}");
            let deadline = std::time::Instant::now() + Duration::from_millis(wait_ms);
            let salt = u64::from(std::process::id());
            let mut attempt = 0u32;
            loop {
                let stream = client_connect(&addr, connect_ms)?;
                let response = client_exchange(&stream, &line)?;
                let v: serde_json::Value = serde_json::from_str(&response)
                    .map_err(|e| CliError::Parse(format!("server response: {e}")))?;
                // `done` and `failed` are both terminal: a failed job will
                // never settle to a verdict, so waiting on it is a hang.
                let pending = v["type"].as_str() == Some("poll")
                    && !matches!(v["status"].as_str(), Some("done" | "failed"));
                if !pending {
                    return Ok(format!("{response}\n"));
                }
                if std::time::Instant::now() >= deadline {
                    if wait_ms == 0 {
                        // Single-shot poll: report the pending status as-is.
                        return Ok(format!("{response}\n"));
                    }
                    return Err(CliError::Other(format!(
                        "ticket {ticket} still pending after {wait_ms} ms"
                    )));
                }
                std::thread::sleep(mgrts_fault::backoff_delay(attempt, 50, 2_000, salt));
                attempt += 1;
            }
        }
        "stats" => {
            let json = args.switch("json");
            let watch: u64 = args.opt_or("watch", "seconds", 0)?;
            loop {
                let stream = client_connect(&addr, connect_ms)?;
                let response = client_exchange(&stream, "{\"type\":\"stats\"}")?;
                let rendered = if json {
                    format!("{response}\n")
                } else {
                    render_stats(&response)?
                };
                if watch == 0 {
                    return Ok(rendered);
                }
                // Write directly (not via print!) so a closed pipe — the
                // consumer went away — ends the watch instead of panicking.
                use std::io::Write as _;
                let mut out = std::io::stdout();
                let sep = if json { "" } else { "\n" };
                if out
                    .write_all(rendered.as_bytes())
                    .and_then(|()| out.write_all(sep.as_bytes()))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    return Ok(String::new());
                }
                std::thread::sleep(Duration::from_secs(watch));
            }
        }
        "metrics" => {
            let stream = client_connect(&addr, connect_ms)?;
            let response = client_exchange(&stream, "{\"type\":\"metrics\"}")?;
            let v: serde_json::Value = serde_json::from_str(&response)
                .map_err(|e| CliError::Parse(format!("server response: {e}")))?;
            match v["body"].as_str() {
                Some(body) => Ok(body.to_string()),
                None => Ok(format!("{response}\n")),
            }
        }
        other => Err(CliError::Other(format!(
            "unknown client verb {other:?} (expected solve|poll|stats|metrics)"
        ))),
    }
}

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "mgrts — global multiprocessor real-time scheduling as a CSP\n\
     \n\
     USAGE: mgrts <command> [args]\n\
     \n\
     COMMANDS\n\
       solve <instance>     decide feasibility and print a schedule\n\
                            [--m N] [--solver csp1|csp2|csp2-generic|csp2-learn|sat|\n\
                            local|local-tabu|local-sa]\n\
                            [--order input|rm|dm|tc|dc] [--time-ms T] [--gantt] [--json]\n\
       analyze <instance>   run the polynomial schedulability battery [--m N]\n\
       generate             emit random instances (JSON, one per line)\n\
                            --n N --tmax T [--m M|auto] [--count K] [--seed S] [--synchronous]\n\
       min-m <instance>     incremental search for the smallest feasible m\n\
       gantt <instance>     render availability intervals (and schedule with --m)\n\
       prob <instance>      probabilistic execution-time analysis [--m N]\n\
                            [--overrun-p P] [--overrun-factor F] [--rounds R]\n\
       verify <instance>    check a schedule file against C1-C4 --schedule FILE\n\
       portfolio <instance> race engines in parallel; first definitive verdict wins\n\
                            [--m N] [--solvers csp1,csp2-dc,sat,...] [--time-ms T]\n\
                            [--gantt] [--json]\n\
       bench campaign run   execute a campaign manifest (sharded, resumable)\n\
                            --manifest FILE [--out DIR] [--threads N]\n\
                            [--max-shards K] [--quiet]\n\
                            [--policy single|portfolio-race]\n\
                            [--adaptive-quantile Q [--adaptive-min-samples N]]\n\
       bench campaign resume  continue a killed campaign --out DIR\n\
       bench campaign dispatch  prepare/join a shared store for workers\n\
                            --manifest FILE [--out DIR] [--fresh]\n\
                            [--policy P] [--adaptive-quantile Q]\n\
       bench campaign worker  claim + solve shards via leases until done\n\
                            --out DIR [--id ID] [--threads N]\n\
                            [--lease-ttl-ms MS] [--poll-ms MS]\n\
                            [--max-shards K] [--policy P] [--quiet]\n\
       bench campaign status  per-worker progress, throughput + ETA\n\
                            --out DIR [--json]\n\
       bench campaign compact  merge segments, drop stale copies --out DIR\n\
       bench campaign report  <table1|table3|table4|hetero|winners|profile\n\
                            |summary> --out DIR\n\
       bench campaign gate  compare BENCH summaries (CI perf gate)\n\
                            --summary FILE --baseline FILE [--tolerance F]\n\
       bench campaign parity  portfolio-race verdicts vs single-solver runs\n\
                            --race DIR --single DIR\n\
       serve                resident feasibility service (JSON lines over TCP)\n\
                            [--addr H:P] [--data-dir DIR] [--workers N]\n\
                            [--queue-cap N] [--budget-ms MS] [--spill-tasks N]\n\
                            [--spill-budget-ms MS]; SIGTERM shuts down cleanly\n\
       client solve <instance>  send a solve request to a running server\n\
                            [--addr H:P] [--m N] [--solver S | --policy P]\n\
                            [--budget-ms MS] [--seed S] [--count K] [--parallel]\n\
       client poll          resolve a spill ticket --ticket T [--wait-ms MS]\n\
       client stats         server counters (cache hits, queue depth, ...)\n\
                            [--json] [--watch SECS]\n\
       client metrics       Prometheus text exposition from the server\n\
     \n\
     Instances are JSON: {\"tasks\":[{\"offset\":0,\"wcet\":1,\"deadline\":2,\"period\":2},…]}\n\
     or the full problem objects produced by `mgrts generate`. `-` reads stdin.\n"
        .to_string()
}

/// Dispatch a full command line (without the program name).
pub fn dispatch(mut argv: std::env::Args) -> Result<String, CliError> {
    let _program = argv.next();
    let Some(command) = argv.next() else {
        return Ok(usage());
    };
    let args = Args::parse(argv)?;
    run_command(&command, &args)
}

/// Dispatch with explicit tokens (test entry point).
pub fn run_command(command: &str, args: &Args) -> Result<String, CliError> {
    if args.switch("help") {
        return Ok(usage());
    }
    match command {
        "solve" => cmd_solve(args),
        "analyze" => cmd_analyze(args),
        "generate" => cmd_generate(args),
        "min-m" => cmd_min_m(args),
        "gantt" => cmd_gantt(args),
        "prob" => cmd_prob(args),
        "portfolio" => cmd_portfolio(args),
        "bench" => cmd_bench(args),
        "verify" => cmd_verify(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Other(format!(
            "unknown command {other:?}; run `mgrts help`"
        ))),
    }
}
