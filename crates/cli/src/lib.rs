#![warn(missing_docs)]
//! # mgrts-cli — command-line front end
//!
//! A thin shell over the workspace crates: load a JSON instance, pick a
//! solver (CSP1 on the generic engine, the specialized CSP2 search, the
//! CNF/CDCL route, or min-conflicts local search), and print verdicts,
//! Gantt charts, analysis reports or probabilistic summaries.
//!
//! The binary is `mgrts`; run `mgrts help` for the command list. All
//! command logic lives in [`commands`] as pure functions so the test suite
//! exercises it in-process.

pub mod args;
pub mod commands;
pub mod io;
pub mod signal;

pub use args::{ArgError, Args};
pub use commands::{run_command, usage};
pub use io::{load_instance, parse_instance, CliError, Instance};
