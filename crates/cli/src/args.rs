//! A small deliberate argument parser (no external dependency): positional
//! arguments plus `--flag value` / `--switch` options.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Argument errors, rendered to the user by `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--opt` given twice.
    Duplicate(String),
    /// `--opt` expected a value but hit the end or another option.
    MissingValue(String),
    /// An option's value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// Raw value.
        value: String,
        /// Expected type, for the message.
        expected: &'static str,
    },
    /// A required option was not supplied.
    Required(String),
    /// A required positional argument was not supplied.
    MissingPositional(&'static str),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(o) => write!(f, "option --{o} given more than once"),
            ArgError::MissingValue(o) => write!(f, "option --{o} expects a value"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value}: expected {expected}"),
            ArgError::Required(o) => write!(f, "missing required option --{o}"),
            ArgError::MissingPositional(name) => write!(f, "missing <{name}> argument"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that take no value.
const SWITCHES: &[&str] = &[
    "gantt",
    "json",
    "quiet",
    "synchronous",
    "help",
    "fresh",
    "parallel",
];

impl Args {
    /// Parse raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let name = name.to_string();
                if SWITCHES.contains(&name.as_str()) {
                    args.switches.push(name);
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.clone()))?;
                    if args.options.insert(name.clone(), value).is_some() {
                        return Err(ArgError::Duplicate(name));
                    }
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Number of positional arguments.
    #[must_use]
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// Optional string option.
    #[must_use]
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Optional parsed option.
    pub fn opt<T: std::str::FromStr>(
        &self,
        name: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Required parsed option.
    pub fn req<T: std::str::FromStr>(
        &self,
        name: &str,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        self.opt(name, expected)?
            .ok_or_else(|| ArgError::Required(name.to_string()))
    }

    /// Parsed option with a default.
    pub fn opt_or<T: std::str::FromStr>(
        &self,
        name: &str,
        expected: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        Ok(self.opt(name, expected)?.unwrap_or(default))
    }

    /// True when `--name` was given (switches only).
    #[must_use]
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(ToString::to_string))
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["file.json", "--m", "3", "--json"]).unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "file.json");
        assert_eq!(a.req::<usize>("m", "integer").unwrap(), 3);
        assert!(a.switch("json"));
        assert!(!a.switch("gantt"));
    }

    #[test]
    fn defaults_and_missing() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.opt_or::<u64>("seed", "integer", 7).unwrap(), 7);
        assert!(matches!(
            a.positional(0, "input"),
            Err(ArgError::MissingPositional("input"))
        ));
        assert!(matches!(
            a.req::<usize>("m", "integer"),
            Err(ArgError::Required(_))
        ));
    }

    #[test]
    fn errors_detected() {
        assert!(matches!(
            parse(&["--m", "2", "--m", "3"]),
            Err(ArgError::Duplicate(_))
        ));
        assert!(matches!(parse(&["--m"]), Err(ArgError::MissingValue(_))));
        let a = parse(&["--m", "abc"]).unwrap();
        assert!(matches!(
            a.req::<usize>("m", "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }
}
