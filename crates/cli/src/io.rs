//! Instance and schedule (de)serialization for the CLI.
//!
//! The on-disk instance format is JSON and accepts two shapes:
//!
//! ```json
//! {"tasks": [{"offset":0,"wcet":1,"deadline":2,"period":2}, …]}
//! ```
//!
//! or a full generated problem (what `mgrts generate` writes):
//!
//! ```json
//! {"taskset": {"tasks": […]}, "m": 2, "seed": 42}
//! ```

use rt_gen::Problem;
use rt_task::TaskSet;

/// A loaded instance: the task set plus an optional processor count from
/// the file (a `--m` flag overrides it).
#[derive(Debug, Clone)]
pub struct Instance {
    /// The task set.
    pub taskset: TaskSet,
    /// Processor count embedded in the file, when the file was a full
    /// problem.
    pub file_m: Option<usize>,
}

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// I/O failure reading or writing a file.
    Io(std::io::Error),
    /// Neither instance shape parsed.
    Parse(String),
    /// Task-model violation (empty set, D > T where forbidden, …).
    Task(rt_task::TaskError),
    /// Anything command-specific.
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::Parse(e) => write!(f, "parse: {e}"),
            CliError::Task(e) => write!(f, "task model: {e}"),
            CliError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<rt_task::TaskError> for CliError {
    fn from(e: rt_task::TaskError) -> Self {
        CliError::Task(e)
    }
}

/// Parse instance JSON text (both accepted shapes).
pub fn parse_instance(text: &str) -> Result<Instance, CliError> {
    if let Ok(p) = serde_json::from_str::<Problem>(text) {
        return Ok(Instance {
            taskset: p.taskset,
            file_m: Some(p.m),
        });
    }
    match serde_json::from_str::<TaskSet>(text) {
        Ok(ts) => Ok(Instance {
            taskset: ts,
            file_m: None,
        }),
        Err(e) => Err(CliError::Parse(format!(
            "input is neither a problem nor a task set: {e}"
        ))),
    }
}

/// Load an instance from a path, `-` meaning stdin.
pub fn load_instance(path: &str) -> Result<Instance, CliError> {
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(path)?
    };
    parse_instance(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_taskset() {
        let text = r#"{"tasks":[{"offset":0,"wcet":1,"deadline":2,"period":2}]}"#;
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.taskset.len(), 1);
        assert_eq!(inst.file_m, None);
    }

    #[test]
    fn parses_full_problem() {
        let text = r#"{
            "taskset": {"tasks":[{"offset":0,"wcet":1,"deadline":2,"period":2}]},
            "m": 2, "seed": 7
        }"#;
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.file_m, Some(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse_instance("[1,2,3]"), Err(CliError::Parse(_))));
        assert!(matches!(
            parse_instance("not json"),
            Err(CliError::Parse(_))
        ));
    }

    #[test]
    fn roundtrip_with_generator_output() {
        let ts = TaskSet::running_example();
        let text = serde_json::to_string(&ts).unwrap();
        let inst = parse_instance(&text).unwrap();
        assert_eq!(inst.taskset, ts);
    }
}
