//! Graceful-shutdown signals for the resident server: SIGTERM/SIGINT are
//! bridged onto the engine's [`CancelToken`], so `mgrts serve` winds down
//! through the same cooperative-cancellation path a `shutdown` request
//! takes (stop accepting, preempt running solves, release leases).
//!
//! The workspace builds offline without the `libc` crate, so the POSIX
//! `signal(2)` entry point is declared directly; `std` already links
//! `libc` on every Unix target. Non-Unix builds install nothing and rely
//! on the wire-level `shutdown` request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mgrts_core::engine::CancelToken;

/// Set by the signal handler; polled by the watcher thread. A handler
/// may only do async-signal-safe work, which a relaxed store is.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn note_signal(_signum: i32) {
    SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
fn install_raw_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `note_signal` only performs an atomic store, which is
    // async-signal-safe; `signal` itself is the POSIX entry point std's
    // own ctrl-c handling builds on.
    unsafe {
        signal(SIGINT, note_signal);
        signal(SIGTERM, note_signal);
    }
}

#[cfg(not(unix))]
fn install_raw_handlers() {}

/// Install SIGTERM/SIGINT handlers and return a [`CancelToken`] that is
/// cancelled when either arrives. The token is watched from a detached
/// thread (signal handlers cannot touch locks), which also exits if the
/// token is cancelled from elsewhere.
pub fn install() -> CancelToken {
    install_raw_handlers();
    let token = CancelToken::new();
    let watched = token.clone();
    std::thread::spawn(move || loop {
        if SHUTDOWN_REQUESTED.load(Ordering::Relaxed) {
            watched.cancel();
            return;
        }
        if watched.is_cancelled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    token
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_cancels_installed_token() {
        let token = install();
        assert!(!token.is_cancelled());
        SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !token.is_cancelled() {
            assert!(std::time::Instant::now() < deadline, "watcher never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        SHUTDOWN_REQUESTED.store(false, Ordering::Relaxed);
    }
}
