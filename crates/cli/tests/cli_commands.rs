//! End-to-end tests of the CLI command functions, driven in-process with
//! temp files.

use std::io::Write;

use mgrts_cli::{run_command, Args, CliError};

fn args(tokens: &[&str]) -> Args {
    Args::parse(tokens.iter().map(ToString::to_string)).unwrap()
}

/// Write the paper's running example as an instance file.
fn example_file(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("example.json");
    let mut f = std::fs::File::create(&path).unwrap();
    write!(
        f,
        r#"{{"tasks":[
            {{"offset":0,"wcet":1,"deadline":2,"period":2}},
            {{"offset":1,"wcet":3,"deadline":4,"period":4}},
            {{"offset":0,"wcet":2,"deadline":2,"period":3}}
        ]}}"#
    )
    .unwrap();
    path
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mgrts-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn solve_every_solver_on_the_running_example() {
    let dir = tmpdir("solve");
    let file = example_file(&dir);
    let path = file.to_str().unwrap();
    for solver in [
        "csp1",
        "csp2",
        "csp2-generic",
        "sat",
        "local",
        "local-tabu",
        "local-sa",
    ] {
        let out = run_command("solve", &args(&[path, "--m", "2", "--solver", solver])).unwrap();
        assert!(out.starts_with("FEASIBLE"), "{solver}: {out}");
    }
}

#[test]
fn solve_reports_infeasible() {
    let dir = tmpdir("infeasible");
    let path = dir.join("overload.json");
    std::fs::write(
        &path,
        r#"{"tasks":[
            {"offset":0,"wcet":1,"deadline":1,"period":2},
            {"offset":0,"wcet":1,"deadline":1,"period":2},
            {"offset":0,"wcet":1,"deadline":1,"period":2}
        ]}"#,
    )
    .unwrap();
    let out = run_command("solve", &args(&[path.to_str().unwrap(), "--m", "2"])).unwrap();
    assert!(out.starts_with("INFEASIBLE"), "{out}");
}

#[test]
fn solve_gantt_and_json_render() {
    let dir = tmpdir("render");
    let file = example_file(&dir);
    let path = file.to_str().unwrap();
    let out = run_command("solve", &args(&[path, "--m", "2", "--gantt", "--json"])).unwrap();
    assert!(out.contains("FEASIBLE"));
    assert!(out.contains("P1"), "gantt output expected: {out}");
    assert!(out.contains("\"grid\""), "schedule json expected");
}

#[test]
fn analyze_prints_report() {
    let dir = tmpdir("analyze");
    let file = example_file(&dir);
    let out = run_command("analyze", &args(&[file.to_str().unwrap(), "--m", "2"])).unwrap();
    assert!(out.contains("verdict"));
    assert!(out.contains("density"));
}

#[test]
fn generate_then_solve_roundtrip() {
    let generated = run_command(
        "generate",
        &args(&[
            "--n", "4", "--tmax", "4", "--count", "3", "--seed", "9", "--m", "2",
        ]),
    )
    .unwrap();
    let lines: Vec<&str> = generated.trim().lines().collect();
    assert_eq!(lines.len(), 3);
    let dir = tmpdir("roundtrip");
    for (i, line) in lines.iter().enumerate() {
        let path = dir.join(format!("inst{i}.json"));
        std::fs::write(&path, line).unwrap();
        // m embedded in the generated problem: no --m needed.
        let out = run_command("solve", &args(&[path.to_str().unwrap()])).unwrap();
        assert!(
            out.starts_with("FEASIBLE") || out.starts_with("INFEASIBLE"),
            "{out}"
        );
    }
}

#[test]
fn generate_auto_m_uses_utilization_bound() {
    let out = run_command(
        "generate",
        &args(&[
            "--n", "5", "--tmax", "5", "--m", "auto", "--count", "4", "--seed", "2",
        ]),
    )
    .unwrap();
    for line in out.trim().lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        let m = v["m"].as_u64().unwrap();
        assert!(m >= 1);
        // m = ⌈U⌉ implies the utilization filter passes.
        let tasks = v["taskset"]["tasks"].as_array().unwrap();
        let u: f64 = tasks
            .iter()
            .map(|t| t["wcet"].as_u64().unwrap() as f64 / t["period"].as_u64().unwrap() as f64)
            .sum();
        assert!(m as f64 >= u - 1e-9, "m={m} below U={u}");
    }
}

#[test]
fn gantt_with_m_appends_schedule() {
    let dir = tmpdir("gantt-m");
    let file = example_file(&dir);
    let out = run_command("gantt", &args(&[file.to_str().unwrap(), "--m", "2"])).unwrap();
    assert!(out.contains("P1"), "schedule rows expected: {out}");
    // Infeasible processor count renders the fallback note.
    let out1 = run_command("gantt", &args(&[file.to_str().unwrap(), "--m", "1"])).unwrap();
    assert!(out1.contains("no feasible schedule"), "{out1}");
}

#[test]
fn min_m_finds_two_for_the_example() {
    let dir = tmpdir("minm");
    let file = example_file(&dir);
    let out = run_command("min-m", &args(&[file.to_str().unwrap()])).unwrap();
    assert!(out.contains("minimal m = 2"), "{out}");
}

#[test]
fn gantt_shows_intervals() {
    let dir = tmpdir("gantt");
    let file = example_file(&dir);
    let out = run_command("gantt", &args(&[file.to_str().unwrap()])).unwrap();
    // Figure 1 content: three task rows over H = 12.
    assert!(
        out.contains("τ1") || out.contains("t1") || out.contains("T1"),
        "{out}"
    );
}

#[test]
fn prob_reports_miss_probability() {
    let dir = tmpdir("prob");
    let file = example_file(&dir);
    let out = run_command(
        "prob",
        &args(&[
            file.to_str().unwrap(),
            "--m",
            "2",
            "--overrun-p",
            "0.25",
            "--rounds",
            "2000",
        ]),
    )
    .unwrap();
    assert!(out.contains("exact hyperperiod miss probability"));
    assert!(out.contains("monte-carlo"));
}

#[test]
fn verify_accepts_solver_output_and_rejects_tampering() {
    let dir = tmpdir("verify");
    let file = example_file(&dir);
    let path = file.to_str().unwrap();
    let out = run_command("solve", &args(&[path, "--m", "2", "--json", "--quiet"])).unwrap();
    let json = out.lines().nth(1).expect("schedule json line");
    let sched_path = dir.join("schedule.json");
    std::fs::write(&sched_path, json).unwrap();
    let ok = run_command(
        "verify",
        &args(&[path, "--schedule", sched_path.to_str().unwrap()]),
    )
    .unwrap();
    assert!(ok.starts_with("VALID"), "{ok}");

    // Tamper: blank out instant 0 on both processors.
    let mut schedule: mgrts_core::Schedule = serde_json::from_str(json).unwrap();
    schedule.set(0, 0, None);
    schedule.set(1, 0, None);
    std::fs::write(&sched_path, serde_json::to_string(&schedule).unwrap()).unwrap();
    let bad = run_command(
        "verify",
        &args(&[path, "--schedule", sched_path.to_str().unwrap()]),
    )
    .unwrap();
    assert!(bad.starts_with("INVALID"), "{bad}");
}

#[test]
fn unknown_command_and_usage() {
    let err = run_command("frobnicate", &args(&[])).unwrap_err();
    assert!(matches!(err, CliError::Other(_)));
    let usage = run_command("help", &args(&[])).unwrap();
    assert!(usage.contains("solve"));
    assert!(usage.contains("generate"));
}

#[test]
fn missing_m_is_a_clear_error() {
    let dir = tmpdir("nom");
    let file = example_file(&dir);
    let err = run_command("solve", &args(&[file.to_str().unwrap()])).unwrap_err();
    assert!(err.to_string().contains("--m"), "{err}");
}

#[test]
fn portfolio_races_default_roster() {
    let dir = tmpdir("portfolio");
    let file = example_file(&dir);
    let path = file.to_str().unwrap();
    let out = run_command("portfolio", &args(&[path, "--m", "2"])).unwrap();
    assert!(out.starts_with("FEASIBLE"), "{out}");
    assert!(out.contains("winner: "), "{out}");
    // Per-backend stats table lists the whole default roster.
    for name in ["csp2-dc", "csp1", "sat", "csp2-generic", "local"] {
        assert!(out.contains(name), "missing backend {name} in:\n{out}");
    }
}

#[test]
fn portfolio_with_explicit_roster_and_infeasible_instance() {
    let dir = tmpdir("portfolio-roster");
    let path = dir.join("overload.json");
    std::fs::write(
        &path,
        r#"{"tasks":[
            {"offset":0,"wcet":1,"deadline":1,"period":2},
            {"offset":0,"wcet":1,"deadline":1,"period":2},
            {"offset":0,"wcet":1,"deadline":1,"period":2}
        ]}"#,
    )
    .unwrap();
    let out = run_command(
        "portfolio",
        &args(&[
            path.to_str().unwrap(),
            "--m",
            "2",
            "--solvers",
            "csp1,csp2-dc,sat",
        ]),
    )
    .unwrap();
    assert!(out.starts_with("INFEASIBLE"), "{out}");
    assert!(out.contains("winner: "), "{out}");
    assert!(out.contains("csp2-dc"), "{out}");
}

/// A tiny campaign manifest for the bench-command tests.
fn campaign_manifest(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("mini.toml");
    std::fs::write(
        &path,
        r#"
[campaign]
name = "mini"
seed = 7
time_limit_ms = 2000
instances_per_cell = 3
shard_size = 2

[grid]
n = [3]
m = [2]
t_max = [4]
solvers = ["csp2-dc", "sat"]
"#,
    )
    .unwrap();
    path
}

#[test]
fn bench_campaign_run_report_and_resume() {
    let dir = tmpdir("bench-campaign");
    let manifest = campaign_manifest(&dir);
    let store = dir.join("store");
    let out = run_command(
        "bench",
        &args(&[
            "campaign",
            "run",
            "--manifest",
            manifest.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--quiet",
        ]),
    )
    .unwrap();
    assert!(out.contains("campaign mini"), "{out}");
    assert!(out.contains("(complete)"), "{out}");
    assert!(store.join("records.jsonl").exists());
    assert!(store.join("BENCH_mini.json").exists());

    let report = run_command(
        "bench",
        &args(&[
            "campaign",
            "report",
            "table1",
            "--out",
            store.to_str().unwrap(),
        ]),
    )
    .unwrap();
    assert!(report.contains("TABLE I"), "{report}");
    assert!(report.contains("TABLE II"), "{report}");

    // Resuming a complete campaign is a no-op.
    let resumed = run_command(
        "bench",
        &args(&[
            "campaign",
            "resume",
            "--out",
            store.to_str().unwrap(),
            "--quiet",
        ]),
    )
    .unwrap();
    assert!(resumed.contains("0 shard(s) committed"), "{resumed}");
}

#[test]
fn bench_campaign_dispatch_worker_status_compact() {
    let dir = tmpdir("bench-queue");
    let manifest = campaign_manifest(&dir);
    let store = dir.join("shared");
    let dispatched = run_command(
        "bench",
        &args(&[
            "campaign",
            "dispatch",
            "--manifest",
            manifest.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
        ]),
    )
    .unwrap();
    assert!(dispatched.contains("initialized"), "{dispatched}");
    assert!(dispatched.contains("shard(s) planned"), "{dispatched}");

    // Before any worker: incomplete, no leases.
    let idle = run_command(
        "bench",
        &args(&["campaign", "status", "--out", store.to_str().unwrap()]),
    )
    .unwrap();
    assert!(idle.contains("shards 0/"), "{idle}");
    assert!(idle.contains("0 lease(s) in flight"), "{idle}");

    // One worker drains the whole campaign.
    let worked = run_command(
        "bench",
        &args(&[
            "campaign",
            "worker",
            "--out",
            store.to_str().unwrap(),
            "--id",
            "cli-w1",
            "--threads",
            "2",
            "--poll-ms",
            "20",
            "--quiet",
        ]),
    )
    .unwrap();
    assert!(worked.contains("(complete)"), "{worked}");
    assert!(worked.contains("worker cli-w1"), "{worked}");
    assert!(store.join("records-cli-w1.jsonl").exists());
    assert!(store.join("BENCH_mini.json").exists());

    let status = run_command(
        "bench",
        &args(&["campaign", "status", "--out", store.to_str().unwrap()]),
    )
    .unwrap();
    assert!(status.contains("(complete)"), "{status}");
    assert!(status.contains("cli-w1"), "{status}");

    // A second dispatch of the same manifest joins without clearing.
    let joined = run_command(
        "bench",
        &args(&[
            "campaign",
            "dispatch",
            "--manifest",
            manifest.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
        ]),
    )
    .unwrap();
    assert!(joined.contains("joined"), "{joined}");

    // Compact merges the worker segment into the canonical pair.
    let compacted = run_command(
        "bench",
        &args(&["campaign", "compact", "--out", store.to_str().unwrap()]),
    )
    .unwrap();
    assert!(
        compacted.contains("1 worker segment(s) merged"),
        "{compacted}"
    );
    assert!(!store.join("records-cli-w1.jsonl").exists());
    assert!(store.join("records.jsonl").exists());
    assert!(store.join("canonical.jsonl").exists());

    // Reports still render over the compacted store, including hetero
    // (this grid has no hetero cells — the report must say so).
    let hetero = run_command(
        "bench",
        &args(&[
            "campaign",
            "report",
            "hetero",
            "--out",
            store.to_str().unwrap(),
        ]),
    )
    .unwrap();
    assert!(hetero.contains("no heterogeneous cells"), "{hetero}");
}

#[test]
fn bench_campaign_gate_passes_self_and_fails_regression() {
    let dir = tmpdir("bench-gate");
    let manifest = campaign_manifest(&dir);
    let store = dir.join("store");
    run_command(
        "bench",
        &args(&[
            "campaign",
            "run",
            "--manifest",
            manifest.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--quiet",
        ]),
    )
    .unwrap();
    let summary = store.join("BENCH_mini.json");
    let ok = run_command(
        "bench",
        &args(&[
            "campaign",
            "gate",
            "--summary",
            summary.to_str().unwrap(),
            "--baseline",
            summary.to_str().unwrap(),
        ]),
    )
    .unwrap();
    assert!(ok.starts_with("PERF GATE PASS"), "{ok}");

    // A baseline claiming everything ran instantly must fail the gate.
    let text = std::fs::read_to_string(&summary).unwrap();
    let tampered_text: String = text
        .lines()
        .map(|l| {
            if l.contains("\"wall_ms\"") {
                "  \"wall_ms\": 0,".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let tampered = dir.join("tampered.json");
    std::fs::write(&tampered, tampered_text).unwrap();
    let err = run_command(
        "bench",
        &args(&[
            "campaign",
            "gate",
            "--summary",
            summary.to_str().unwrap(),
            "--baseline",
            tampered.to_str().unwrap(),
        ]),
    );
    // Fails only if this invocation took any measurable time; the verdict
    // path is what we assert on either way.
    if let Err(e) = err {
        assert!(e.to_string().contains("PERF GATE FAIL"), "{e}");
    }
}

#[test]
fn bench_rejects_malformed_invocations() {
    let err = run_command("bench", &args(&["campaign", "frobnicate"])).unwrap_err();
    assert!(err.to_string().contains("unknown campaign verb"), "{err}");
    let err = run_command("bench", &args(&["portfolio"])).unwrap_err();
    assert!(matches!(err, CliError::Other(_)));
    let err = run_command("bench", &args(&["campaign", "run"])).unwrap_err();
    assert!(err.to_string().contains("manifest"), "{err}");
}

#[test]
fn portfolio_rejects_unknown_solver_name() {
    let dir = tmpdir("portfolio-bad");
    let file = example_file(&dir);
    let err = run_command(
        "portfolio",
        &args(&[file.to_str().unwrap(), "--m", "2", "--solvers", "quantum"]),
    )
    .unwrap_err();
    assert!(matches!(err, CliError::Other(_)), "{err:?}");
}

#[test]
fn client_rejects_malformed_invocations() {
    let err = run_command("client", &args(&[])).unwrap_err();
    assert!(err.to_string().contains("verb"), "{err}");
    let err = run_command("client", &args(&["frobnicate"])).unwrap_err();
    assert!(err.to_string().contains("unknown client verb"), "{err}");
    let err = run_command("client", &args(&["poll"])).unwrap_err();
    assert!(err.to_string().contains("ticket"), "{err}");
    let err = run_command("client", &args(&["solve"])).unwrap_err();
    assert!(err.to_string().contains("instance"), "{err}");
    // An unreachable server fails within the bounded retry window.
    let err = run_command(
        "client",
        &args(&["stats", "--addr", "127.0.0.1:1", "--connect-ms", "1"]),
    )
    .unwrap_err();
    assert!(err.to_string().contains("cannot connect"), "{err}");
}

#[test]
fn client_round_trips_against_in_process_server() {
    let dir = tmpdir("client-serve");
    let file = example_file(&dir);
    let server = mgrts_bench::serve::Server::start(mgrts_bench::serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: dir.join("serve-data"),
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // Two sequential requests on one connection: a miss, then a hit.
    let out = run_command(
        "client",
        &args(&[
            "solve",
            file.to_str().unwrap(),
            "--addr",
            &addr,
            "--m",
            "2",
            "--solver",
            "csp2-dc",
            "--count",
            "2",
        ]),
    )
    .unwrap();
    let responses: Vec<serde_json::Value> = out
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 2, "{out}");
    assert_eq!(responses[0]["cache"].as_str(), Some("miss"), "{out}");
    assert_eq!(responses[1]["cache"].as_str(), Some("hit"), "{out}");

    let stats = run_command("client", &args(&["stats", "--json", "--addr", &addr])).unwrap();
    let stats: serde_json::Value = serde_json::from_str(stats.trim()).unwrap();
    assert_eq!(stats["type"].as_str(), Some("stats"));
    assert_eq!(stats["cache_hits"].as_u64(), Some(1));

    // Without --json the same counters render as an aligned listing.
    let listing = run_command("client", &args(&["stats", "--addr", &addr])).unwrap();
    assert!(listing.contains("cache_hits"), "{listing}");
    assert!(!listing.contains('{'), "{listing}");

    // The metrics verb prints the Prometheus exposition body directly.
    let metrics = run_command("client", &args(&["metrics", "--addr", &addr])).unwrap();
    assert!(
        metrics.contains("# TYPE mgrts_serve_requests_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mgrts_serve_cache_hits_total 1"),
        "{metrics}"
    );
    server.shutdown();
}
