//! Lease-based distributed work queue over the shard planner.
//!
//! One campaign, many machines: every worker process points at the same
//! record store (a shared directory today; the [`RecordStore`] trait is
//! the seam for an object store) and cooperatively drains the manifest's
//! shard plan. Coordination is *leases* — small JSON files under
//! `<store>/leases/`, one per in-flight shard:
//!
//! * **claim** — a worker creates `leases/<hash>.lease` with `O_EXCL`
//!   (`create_new`), so exactly one claimer wins; the file names the
//!   worker, a random nonce and a heartbeat timestamp;
//! * **heartbeat** — while solving, a background thread rewrites every
//!   held lease (atomic tmp + rename) to push the expiry forward;
//! * **expiry / reclaim** — a lease whose heartbeat is older than its TTL
//!   belongs to a dead worker. Reclaim is a two-phase steal: atomically
//!   `rename` the expired file to a claimer-unique tombstone (only one
//!   renamer can win, the others get `NotFound`), then re-claim with
//!   `create_new`. The SIGKILLed worker's shard re-runs and its partial
//!   records are superseded by hash, exactly like single-process resume;
//! * **release** — after the records-then-checkpoint commit, the lease is
//!   deleted.
//!
//! Leases are an *efficiency* protocol, not a correctness one: if clock
//! skew or a pathological race ever lets two workers run the same shard,
//! both commits are idempotent — the record store dedupes replayed shards
//! by content hash and unit key, and the canonical export is byte-stable.
//! No ordering between workers is required beyond each worker's own
//! records-then-checkpoint append ordering.
//!
//! Entry points: [`dispatch`] prepares (or joins) a shared store from a
//! manifest and reclaims expired leases, [`run_worker`] drains shards
//! until the campaign completes, and [`status`] reports per-worker
//! progress, in-flight and stale leases, and completion — surfaced as the
//! `mgrts bench campaign dispatch|worker|status` CLI verbs.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mgrts_core::engine::CancelGroup;
use mgrts_fault::{backoff_delay, is_transient_io, FaultFs};

use crate::campaign::{panic_reason, run_shard, summarize, CampaignError, Manifest, Summary};
use crate::policy::ExecutionPolicy;
use crate::shard::Shard;
use crate::sink::{fnv64, validate_writer_id, LocalStore, RecordStore};

/// Lease subdirectory inside a record store.
pub const LEASE_DIR: &str = "leases";

/// Shard failures (panics) tolerated before a shard is *parked* as
/// poison: workers stop re-claiming it, so one bad shard cannot wedge the
/// whole campaign in a crash loop.
pub const PARK_AFTER: u32 = 3;

/// Transient-IO retry attempts before a lease operation is declared
/// genuinely failed.
const LEASE_RETRIES: u32 = 5;

/// Run `op`, retrying transient IO errors (interruptions, timeouts, full
/// disks — see [`mgrts_fault::is_transient_io`]) with jittered
/// exponential backoff and a counted metric. Structural errors (missing
/// store dir, permissions) fail immediately.
pub(crate) fn retry_transient<T>(
    salt: u64,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient_io(&e) && attempt < LEASE_RETRIES => {
                mgrts_obs::global()
                    .counter(
                        "mgrts_lease_transient_errors_total",
                        "Transient IO errors absorbed by lease-operation retries",
                    )
                    .inc();
                std::thread::sleep(backoff_delay(attempt, 5, 200, salt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One parked (poison) shard: the marker workers consult before
/// claiming.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParkedShard {
    /// Shard content hash.
    pub shard: String,
    /// Recorded failures when the shard was parked.
    pub fails: u32,
    /// Last failure's panic message.
    pub reason: String,
    /// Park wall-clock, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

fn fails_path(lease_dir: &Path, shard: &str) -> PathBuf {
    lease_dir.join(format!("{shard}.fails"))
}

fn parked_path(lease_dir: &Path, shard: &str) -> PathBuf {
    lease_dir.join(format!("{shard}.parked"))
}

/// Durably count one failure of `shard` (best-effort: racing workers may
/// under-count, which only delays parking by a round). Returns the new
/// count and parks the shard once it reaches [`PARK_AFTER`].
pub(crate) fn note_shard_failure(lease_dir: &Path, shard: &str, reason: &str) -> u32 {
    mgrts_obs::global()
        .counter(
            "mgrts_worker_panics_total",
            "Shard executions that panicked and were caught by the worker supervisor",
        )
        .inc();
    let path = fails_path(lease_dir, shard);
    let fails = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(0)
        .saturating_add(1);
    // tmp + rename: a torn count would otherwise reset the tally.
    let tmp = lease_dir.join(format!("{shard}.fails.tmp-{}", std::process::id()));
    if std::fs::write(&tmp, fails.to_string()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
    if fails >= PARK_AFTER {
        mgrts_obs::global()
            .counter(
                "mgrts_shards_parked_total",
                "Shards parked as poison after repeated failures",
            )
            .inc();
        let entry = ParkedShard {
            shard: shard.to_string(),
            fails,
            reason: reason.chars().take(512).collect(),
            unix_ms: now_unix_ms(),
        };
        if let Ok(json) = serde_json::to_string(&entry) {
            let tmp = lease_dir.join(format!("{shard}.parked.tmp-{}", std::process::id()));
            if std::fs::write(&tmp, json).is_ok() {
                let _ = std::fs::rename(&tmp, parked_path(lease_dir, shard));
            }
        }
    }
    fails
}

/// Every parked shard of a store, sorted by hash.
pub fn parked_shards(store_dir: &Path) -> Vec<ParkedShard> {
    parked_in(&store_dir.join(LEASE_DIR))
}

/// Parked shards read straight from a lease directory.
pub(crate) fn parked_in(lease_dir: &Path) -> Vec<ParkedShard> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(lease_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(".parked") {
            continue;
        }
        if let Ok(text) = std::fs::read_to_string(entry.path()) {
            if let Ok(parked) = serde_json::from_str::<ParkedShard>(&text) {
                out.push(parked);
            }
        }
    }
    out.sort_by(|a, b| a.shard.cmp(&b.shard));
    out
}

/// Milliseconds since the Unix epoch — the heartbeat clock. Workers on
/// different machines only compare this against TTLs (tens of seconds),
/// so ordinary clock sync is ample.
#[must_use]
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One lease file: who holds a shard, and until when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Shard content hash the lease covers.
    pub shard: String,
    /// Holder's worker id.
    pub worker: String,
    /// Claim-unique nonce: distinguishes a restarted worker reusing its id
    /// from the dead incarnation's stale lease.
    pub nonce: u64,
    /// Last heartbeat, milliseconds since the Unix epoch.
    pub heartbeat_unix_ms: u64,
    /// Time-to-live after the last heartbeat.
    pub ttl_ms: u64,
}

impl Lease {
    /// Expired at `now` (heartbeat + TTL elapsed)?
    #[must_use]
    pub fn is_expired(&self, now_ms: u64) -> bool {
        now_ms > self.heartbeat_unix_ms.saturating_add(self.ttl_ms)
    }
}

/// The lease directory of one record store, bound to one worker identity.
#[derive(Debug)]
pub struct LeaseBoard {
    dir: PathBuf,
    worker: String,
    nonce: u64,
    ttl: Duration,
}

impl LeaseBoard {
    /// Open `store_dir/leases` for `worker` with lease TTL `ttl`.
    ///
    /// A missing store directory is *structural* (nothing was dispatched
    /// here — retrying cannot help) and fails immediately with
    /// `NotFound`; transient errors creating the lease directory are
    /// retried with backoff.
    pub fn open(store_dir: &Path, worker: &str, ttl: Duration) -> std::io::Result<LeaseBoard> {
        validate_writer_id(worker)?;
        if !store_dir.exists() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "store directory {} does not exist — run `dispatch` first",
                    store_dir.display()
                ),
            ));
        }
        let dir = store_dir.join(LEASE_DIR);
        retry_transient(fnv64(worker.as_bytes()), || {
            FaultFs::check("lease.open")?;
            std::fs::create_dir_all(&dir)
        })?;
        // A per-process nonce: claim identity across a worker restart that
        // reuses the same id. Derived from the clock + pid, not security-
        // sensitive — it only disambiguates, mutual exclusion comes from
        // `create_new` / `rename`.
        let nonce = now_unix_ms()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(std::process::id()));
        Ok(LeaseBoard {
            dir,
            worker: worker.to_string(),
            nonce,
            ttl,
        })
    }

    fn lease_path(&self, shard: &str) -> PathBuf {
        self.dir.join(format!("{shard}.lease"))
    }

    /// The lease directory this board manages (`store_dir/leases`).
    pub(crate) fn lease_dir(&self) -> &Path {
        &self.dir
    }

    fn fresh_lease(&self, shard: &str) -> Lease {
        Lease {
            shard: shard.to_string(),
            worker: self.worker.clone(),
            nonce: self.nonce,
            heartbeat_unix_ms: now_unix_ms(),
            ttl_ms: self.ttl.as_millis() as u64,
        }
    }

    /// Create-exclusive claim attempt; `false` means someone else holds a
    /// live lease (or won the race).
    pub fn try_claim(&self, shard: &str) -> std::io::Result<bool> {
        FaultFs::check("lease.claim")?;
        let path = self.lease_path(shard);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                use std::io::Write;
                let lease = self.fresh_lease(shard);
                file.write_all(
                    serde_json::to_string(&lease)
                        .map_err(std::io::Error::other)?
                        .as_bytes(),
                )?;
                file.sync_all()?;
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                self.try_reclaim(shard, &path)
            }
            Err(e) => Err(e),
        }
    }

    /// Steal an expired lease: atomically rename it to a claimer-unique
    /// tombstone (only one renamer wins), then claim fresh.
    fn try_reclaim(&self, shard: &str, path: &Path) -> std::io::Result<bool> {
        let now = now_unix_ms();
        match read_lease(path) {
            Some(lease) if !lease.is_expired(now) => return Ok(false),
            Some(_) => {}
            None => {
                // Unreadable or torn lease. Only treat it as dead once it
                // is older than our TTL — a claimer between `create_new`
                // and its first write looks exactly like this.
                let age_ok = std::fs::metadata(path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age > self.ttl);
                if !age_ok {
                    return Ok(false);
                }
            }
        }
        let tomb = self.dir.join(format!(
            "{shard}.reclaim-{}-{:016x}",
            self.worker, self.nonce
        ));
        if std::fs::rename(path, &tomb).is_err() {
            return Ok(false); // another claimer stole it first
        }
        let _ = std::fs::remove_file(&tomb);
        // Re-claim with create_new: a third claimer that observed NotFound
        // may race us here; exclusivity still holds.
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut file) => {
                use std::io::Write;
                let lease = self.fresh_lease(shard);
                file.write_all(
                    serde_json::to_string(&lease)
                        .map_err(std::io::Error::other)?
                        .as_bytes(),
                )?;
                file.sync_all()?;
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Push a held lease's expiry forward (atomic tmp + rename). Returns
    /// `false` — and leaves the file alone — if the lease is no longer
    /// ours (it expired and someone reclaimed it); the caller keeps
    /// running, because a double-run is deduped anyway.
    pub fn renew(&self, shard: &str) -> std::io::Result<bool> {
        FaultFs::check("lease.renew")?;
        let path = self.lease_path(shard);
        match read_lease(&path) {
            Some(l) if l.worker == self.worker && l.nonce == self.nonce => {}
            _ => return Ok(false),
        }
        let tmp = self
            .dir
            .join(format!("{shard}.renew-{}-{:016x}", self.worker, self.nonce));
        std::fs::write(
            &tmp,
            serde_json::to_string(&self.fresh_lease(shard)).map_err(std::io::Error::other)?,
        )?;
        std::fs::rename(&tmp, &path)?;
        Ok(true)
    }

    /// Drop a lease we hold (after commit). Leaves foreign leases alone.
    /// Transient IO errors are retried: a leaked lease costs a full TTL
    /// of another worker's time, so releases try hard.
    pub fn release(&self, shard: &str) -> std::io::Result<()> {
        let path = self.lease_path(shard);
        retry_transient(fnv64(shard.as_bytes()), || {
            FaultFs::check("lease.release")?;
            match read_lease(&path) {
                Some(l) if l.worker == self.worker && l.nonce == self.nonce => {
                    let _ = std::fs::remove_file(&path);
                }
                _ => {}
            }
            Ok(())
        })
    }

    /// Every parseable lease on the board.
    pub fn list(&self) -> std::io::Result<Vec<Lease>> {
        list_leases(&self.dir)
    }
}

fn read_lease(path: &Path) -> Option<Lease> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Every parseable lease in a store's lease directory.
pub fn list_leases(lease_dir: &Path) -> std::io::Result<Vec<Lease>> {
    let mut out = Vec::new();
    if !lease_dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(lease_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(".lease") {
            continue;
        }
        if let Some(lease) = read_lease(&entry.path()) {
            out.push(lease);
        }
    }
    out.sort_by(|a, b| a.shard.cmp(&b.shard));
    Ok(out)
}

/// Delete every expired lease (the coordinator's reclaim sweep). Returns
/// the shard hashes freed.
///
/// Uses the same two-phase steal as worker reclaim: rename the
/// expired-looking file to a sweeper-unique tombstone, *re-read what was
/// actually stolen*, and put a still-live lease back — a bare
/// `remove_file` here could race a worker that just reclaimed the lease
/// and delete its fresh claim.
pub fn reclaim_expired(store_dir: &Path) -> std::io::Result<Vec<String>> {
    let lease_dir = store_dir.join(LEASE_DIR);
    let mut freed = Vec::new();
    let sweep_tag = format!("sweep-{}-{}", std::process::id(), now_unix_ms());
    for lease in list_leases(&lease_dir)? {
        if !lease.is_expired(now_unix_ms()) {
            continue;
        }
        let path = lease_dir.join(format!("{}.lease", lease.shard));
        let tomb = lease_dir.join(format!("{}.{sweep_tag}", lease.shard));
        if std::fs::rename(&path, &tomb).is_err() {
            continue; // already reclaimed by someone else
        }
        match read_lease(&tomb) {
            // Stole a *live* lease (a worker reclaimed between our list and
            // rename): hand it back. The path is vacant unless a third
            // claimer sneaked in — then the rename-back clobbers its claim,
            // which at worst double-runs a shard (deduped by design).
            Some(current) if !current.is_expired(now_unix_ms()) => {
                let _ = std::fs::rename(&tomb, &path);
            }
            _ => {
                let _ = std::fs::remove_file(&tomb);
                freed.push(lease.shard);
            }
        }
    }
    Ok(freed)
}

/// The lease key a worker holds for its entire lifetime (its *presence*),
/// as opposed to the per-shard leases it claims and releases while
/// draining. Shard hashes are 16 hex digits, so the prefix cannot collide
/// with one.
#[must_use]
pub fn presence_key(worker_id: &str) -> String {
    format!("worker-{worker_id}")
}

/// Is this lease a worker-presence lease (vs an in-flight shard lease)?
#[must_use]
pub fn is_presence(lease: &Lease) -> bool {
    lease.shard.starts_with("worker-")
}

/// Error unless no unexpired lease exists — neither in-flight shards nor
/// live worker presences. The guard `compact` and `dispatch --fresh` run
/// before touching segment files other processes might hold open.
pub(crate) fn ensure_quiesced(store_dir: &Path, then: &str) -> Result<(), CampaignError> {
    let now = now_unix_ms();
    let live: Vec<String> = list_leases(&store_dir.join(LEASE_DIR))?
        .into_iter()
        .filter(|l| !l.is_expired(now))
        .map(|l| l.shard)
        .collect();
    if !live.is_empty() {
        return Err(CampaignError::Store(format!(
            "{} live lease(s) [{}] — workers are still using this store; {then} \
             after they finish (or their leases expire)",
            live.len(),
            live.join(", ")
        )));
    }
    Ok(())
}

/// Remove every lease file, expired or not (only safe after
/// [`ensure_quiesced`]).
fn clear_leases(store_dir: &Path) -> std::io::Result<()> {
    let lease_dir = store_dir.join(LEASE_DIR);
    if !lease_dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(&lease_dir)? {
        let entry = entry?;
        if entry.file_name().to_str().is_some_and(|n| {
            n.ends_with(".lease")
                || n.ends_with(".fails")
                || n.ends_with(".parked")
                || n.contains(".tmp-")
        }) {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Dispatch: prepare / join a shared store
// ---------------------------------------------------------------------------

/// What [`dispatch`] found or prepared.
#[derive(Debug)]
pub struct DispatchReport {
    /// Shards in the plan.
    pub shards_total: u64,
    /// Shards already checkpointed.
    pub shards_done: u64,
    /// Expired leases reclaimed by this dispatch.
    pub leases_reclaimed: u64,
    /// True when the store was initialized by this call (vs joined).
    pub initialized: bool,
}

/// Prepare a shared record store for workers: write the canonical
/// manifest (validating round-trip stability, as `run` does), create the
/// lease directory, and sweep expired leases. Joining an existing store
/// with the *same* fingerprint is idempotent and keeps its records;
/// a different fingerprint is an error unless `fresh` clears the store.
pub fn dispatch(
    manifest: &Manifest,
    store_dir: &Path,
    fresh: bool,
) -> Result<DispatchReport, CampaignError> {
    let round_trip = Manifest::parse(&manifest.to_toml())?;
    if round_trip != *manifest {
        return Err(CampaignError::Manifest(
            "manifest does not survive canonical re-serialization (the cell list \
             must be the full cartesian product of its axis values)"
                .into(),
        ));
    }
    let store = LocalStore::open(store_dir)?;
    let mut initialized = true;
    match store.read_manifest() {
        Ok(existing) => {
            let existing = Manifest::parse(&existing)?;
            if fresh {
                // Clearing unlinks segment files live workers hold open —
                // refuse while any of them is present, then drop their
                // stale leases along with the data.
                ensure_quiesced(store_dir, "re-dispatch --fresh")?;
                store.clear()?;
                clear_leases(store_dir)?;
            } else if existing.fingerprint() == manifest.fingerprint() {
                initialized = false; // idempotent join
            } else {
                return Err(CampaignError::Store(format!(
                    "store {} holds a different campaign (fingerprint mismatch); \
                     pass --fresh to clear it",
                    store_dir.display()
                )));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(CampaignError::Io(e)),
    }
    if initialized {
        store.write_manifest(&manifest.to_toml())?;
    }
    std::fs::create_dir_all(store_dir.join(LEASE_DIR))?;
    let freed = reclaim_expired(store_dir)?;
    let done = store.done_shards()?;
    Ok(DispatchReport {
        shards_total: manifest.plan().len() as u64,
        shards_done: done.len() as u64,
        leases_reclaimed: freed.len() as u64,
        initialized,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Knobs of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker id (`[A-Za-z0-9_-]{1,64}`); also names the record segment.
    pub id: String,
    /// Solver threads inside this worker (each claims its own shard).
    pub threads: usize,
    /// Lease time-to-live: how long after the last heartbeat peers may
    /// reclaim this worker's shards.
    pub lease_ttl: Duration,
    /// Poll interval while waiting on peers' leases.
    pub poll: Duration,
    /// Stop after committing this many shards (test/CI hook).
    pub max_shards: Option<u64>,
    /// Progress lines on stderr.
    pub progress: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            id: format!("w{}", std::process::id()),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(250),
            max_shards: None,
            progress: false,
        }
    }
}

/// What one worker invocation accomplished.
#[derive(Debug)]
pub struct WorkerOutcome {
    /// Summary over the *shared* store at exit (also published as
    /// `BENCH_<name>.json` when the campaign completed).
    pub summary: Summary,
    /// Shards this worker committed.
    pub shards_committed: u64,
    /// Shards parked as poison (repeated panics) at exit — the campaign
    /// drained everything *else*; these need operator attention.
    pub parked: Vec<ParkedShard>,
}

/// Drain shards from a dispatched store until the campaign completes (or
/// `max_shards` / cancellation stops this worker early). Any number of
/// worker processes may run concurrently against one store; each claims
/// shards via leases, heartbeats while solving, commits through its own
/// record segment, and reclaims peers' expired leases.
pub fn run_worker(
    store_dir: &Path,
    opts: &WorkerOptions,
    cancel: &CancelGroup,
) -> Result<WorkerOutcome, CampaignError> {
    let started = Instant::now();
    let store = LocalStore::open(store_dir)?;
    let manifest = Manifest::parse(&store.read_manifest().map_err(|e| {
        CampaignError::Store(format!(
            "store {} has no manifest — run `dispatch` first ({e})",
            store_dir.display()
        ))
    })?)?;
    let shards = manifest.plan();
    let done = store.done_shards()?;
    let planned: HashSet<&str> = shards.iter().map(|s| s.hash.as_str()).collect();
    if let Some(stranger) = done.iter().find(|h| !planned.contains(h.as_str())) {
        return Err(CampaignError::Store(format!(
            "checkpointed shard {stranger} is not part of this manifest's plan \
             (the store was produced by a different manifest)"
        )));
    }
    // The worker's policy snapshot: a joining or restarted worker sees
    // whatever peers have committed so far, so an adaptive wrapper's
    // quantile allowances engage as the shared store fills up. Budgets are
    // measurement-domain — differing snapshots across workers never change
    // what the record store dedupes on.
    let policy = manifest.build_policy(&store)?;

    let board = LeaseBoard::open(store_dir, &opts.id, opts.lease_ttl)?;
    // Presence lease: held for the worker's whole lifetime, not per shard.
    // Between shards a worker holds no shard lease, so without this a
    // concurrent `compact` / `dispatch --fresh` could judge the store
    // quiesced and unlink the segment this worker is appending to. A
    // restarted worker reusing its id waits out the dead incarnation's
    // presence TTL here.
    let presence = presence_key(&opts.id);
    loop {
        if retry_transient(fnv64(presence.as_bytes()), || board.try_claim(&presence))? {
            break;
        }
        if cancel.is_cancelled() {
            return Err(CampaignError::Store(format!(
                "worker id {} is still present (live lease) and the start was cancelled",
                opts.id
            )));
        }
        std::thread::sleep(opts.poll);
    }
    let writer = Mutex::new(store.open_writer(&opts.id)?);
    let held: Mutex<HashSet<String>> = Mutex::new(HashSet::from([presence.clone()]));
    let committed = Mutex::new(0u64);
    let failure: Mutex<Option<CampaignError>> = Mutex::new(None);
    let stop_heartbeat = AtomicBool::new(false);
    let threads = opts.threads.max(1);
    let active = std::sync::atomic::AtomicUsize::new(threads);

    crossbeam::scope(|scope| {
        // Heartbeat thread: push every held lease's expiry forward at a
        // quarter of the TTL, so a live worker never looks dead. The last
        // solver thread to exit raises `stop_heartbeat`.
        scope.spawn(|_| {
            let tick = (opts.lease_ttl / 4).max(Duration::from_millis(20));
            let mut last = Instant::now();
            while !stop_heartbeat.load(Ordering::Relaxed) {
                // Short sleeps between renewals keep shutdown prompt even
                // with long TTLs.
                std::thread::sleep(tick.min(Duration::from_millis(50)));
                if last.elapsed() < tick {
                    continue;
                }
                last = Instant::now();
                // Snapshot outside the lock: renewals are file writes and
                // must not stall the solver threads' claim scans.
                let to_renew: Vec<String> = held.lock().iter().cloned().collect();
                for shard in &to_renew {
                    let _ = board.renew(shard);
                }
            }
        });

        for _ in 0..threads {
            scope.spawn(|_| {
                worker_thread(
                    &manifest, &*policy, &shards, &store, &board, &writer, &held, &committed,
                    &failure, opts, cancel,
                );
                if active.fetch_sub(1, Ordering::AcqRel) == 1 {
                    stop_heartbeat.store(true, Ordering::Relaxed);
                }
            });
        }
    })
    .expect("worker thread panicked");
    let _ = board.release(&presence);

    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    let shards_committed = committed.into_inner();
    let parked = parked_shards(store_dir);
    if opts.progress {
        for p in &parked {
            eprintln!(
                "  [{}] shard {} is parked as poison after {} failures: {}",
                opts.id, p.shard, p.fails, p.reason
            );
        }
    }
    let done_after = store.done_shards()?;
    let records = store.load_records()?;
    let summary = summarize(
        &manifest,
        &records,
        shards.len() as u64,
        done_after.len() as u64,
        started.elapsed().as_millis() as u64,
    );
    store.put_artifact(
        &format!("BENCH_{}.json", manifest.name),
        &serde_json::to_string_pretty(&summary).map_err(std::io::Error::other)?,
    )?;
    Ok(WorkerOutcome {
        summary,
        shards_committed,
        parked,
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_thread(
    manifest: &Manifest,
    policy: &dyn ExecutionPolicy,
    shards: &[Shard],
    store: &LocalStore,
    board: &LeaseBoard,
    writer: &Mutex<Box<dyn crate::sink::ShardWriter + Send>>,
    held: &Mutex<HashSet<String>>,
    committed: &Mutex<u64>,
    failure: &Mutex<Option<CampaignError>>,
    opts: &WorkerOptions,
    cancel: &CancelGroup,
) {
    loop {
        if cancel.is_cancelled() || failure.lock().is_some() {
            return;
        }
        if let Some(cap) = opts.max_shards {
            if *committed.lock() >= cap {
                return;
            }
        }
        // Refresh the done set from the shared store: peers commit
        // concurrently, and their checkpoints are the ground truth. This
        // re-read is deliberate, not cached — it costs one pass over the
        // (small) checkpoint segments per *committed shard* (plus one per
        // poll tick while blocked), and staleness here would be far more
        // expensive: a shard a peer just committed looks pending, its
        // lease is already released, and we would re-solve it whole.
        let done = match store.done_shards() {
            Ok(d) => d,
            Err(e) => {
                *failure.lock() = Some(CampaignError::Io(e));
                cancel.cancel_all();
                return;
            }
        };
        // Parked (poison) shards are excluded from both the completion
        // check and the claim scan: the campaign drains everything else
        // and exits instead of crash-looping on one bad shard.
        let parked: HashSet<String> = parked_in(board.lease_dir())
            .into_iter()
            .map(|p| p.shard)
            .collect();
        if shards
            .iter()
            .all(|s| done.contains(&s.hash) || parked.contains(&s.hash))
        {
            return; // campaign complete (modulo parked shards)
        }
        // Claim the first pending shard whose lease we can take. Workers
        // scan in plan order, so contention clusters at the frontier and
        // resolves by create_new exclusivity.
        let mut claimed: Option<&Shard> = None;
        for shard in shards
            .iter()
            .filter(|s| !done.contains(&s.hash) && !parked.contains(&s.hash))
        {
            if held.lock().contains(&shard.hash) {
                continue; // a sibling thread of this worker has it
            }
            match retry_transient(fnv64(shard.hash.as_bytes()), || {
                board.try_claim(&shard.hash)
            }) {
                Ok(true) => {
                    held.lock().insert(shard.hash.clone());
                    claimed = Some(shard);
                    break;
                }
                Ok(false) => continue,
                Err(e) => {
                    *failure.lock() = Some(CampaignError::Io(e));
                    cancel.cancel_all();
                    return;
                }
            }
        }
        let Some(shard) = claimed else {
            // Everything pending is leased by live peers: wait for them to
            // finish or for their leases to expire.
            std::thread::sleep(opts.poll);
            continue;
        };
        // Re-derive store-dependent policy state (adaptive allowances) so
        // this shard's budgets reflect every record committed so far, not
        // the snapshot this worker started with.
        if let Err(e) = policy.refresh(store) {
            *failure.lock() = Some(e);
            cancel.cancel_all();
            return;
        }
        // Supervise the shard execution: a panicking solver must not take
        // the worker (and its held leases) down with it. The caught shard
        // gets a durable failure count and is parked as poison after
        // `PARK_AFTER` strikes; its lease is released immediately below,
        // not after a TTL.
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_shard(manifest, policy, shard, cancel)
        }));
        match result {
            Ok(Ok(Some(records))) => {
                let commit = writer.lock().commit_shard(shard, &records);
                if let Err(e) = commit {
                    *failure.lock() = Some(CampaignError::Io(e));
                    cancel.cancel_all();
                } else {
                    let mut c = committed.lock();
                    *c += 1;
                    if opts.progress {
                        eprintln!(
                            "  [{}] shard {} committed ({} this worker, {} units)",
                            opts.id,
                            shard.index,
                            *c,
                            records.len(),
                        );
                    }
                }
            }
            Ok(Ok(None)) => {} // cancelled mid-shard: lease released, shard re-runs later
            Ok(Err(e)) => {
                *failure.lock() = Some(e);
                cancel.cancel_all();
            }
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                let fails = note_shard_failure(board.lease_dir(), &shard.hash, &reason);
                if opts.progress {
                    eprintln!(
                        "  [{}] shard {} panicked (strike {fails}/{PARK_AFTER}): {reason}",
                        opts.id, shard.index,
                    );
                }
            }
        }
        held.lock().remove(&shard.hash);
        let _ = board.release(&shard.hash);
        if cancel.is_cancelled() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

/// One worker's committed-shard throughput, derived from the commit
/// timestamps in its checkpoint segment.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerRate {
    /// Worker id (segment name).
    pub worker: String,
    /// Timestamped shard commits.
    pub shards: u64,
    /// Commit rate in shards per minute, measured from the worker's first
    /// commit to now.
    pub shards_per_min: f64,
    /// Does a live presence lease back this worker (dead workers are
    /// excluded from the aggregate rate)?
    pub live: bool,
}

/// Campaign ETA derived from per-worker throughput: `shards remaining /
/// aggregate live-worker rate`. The machine-readable autoscaling hint —
/// an orchestrator reading `status --json` scales workers until `eta_ms`
/// fits its deadline.
#[derive(Debug, Clone, Serialize)]
pub struct EtaReport {
    /// Shards not yet checkpointed.
    pub shards_remaining: u64,
    /// Workers with a live presence lease.
    pub live_workers: u64,
    /// Summed commit rate of the live workers, shards per minute.
    pub aggregate_shards_per_min: f64,
    /// Estimated milliseconds until the campaign completes; `None` when
    /// nothing remains or no live worker has a measurable rate.
    pub eta_ms: Option<u64>,
}

/// Queue-level progress of a shared store.
#[derive(Debug, Serialize)]
pub struct StatusReport {
    /// Campaign name.
    pub campaign: String,
    /// Shards in the plan.
    pub shards_total: u64,
    /// Shards checkpointed.
    pub shards_done: u64,
    /// Believable records in the store.
    pub records: u64,
    /// Committed-shard count per worker segment.
    pub workers: Vec<(String, u64)>,
    /// Per-worker throughput (timestamped commits only; pre-policy
    /// checkpoint lines carry no timestamp and are skipped).
    pub rates: Vec<WorkerRate>,
    /// The derived completion estimate.
    pub eta: EtaReport,
    /// In-flight *shard* leases, each flagged `true` when expired (stale).
    pub leases: Vec<(Lease, bool)>,
    /// Worker-presence leases (live workers attached to the store), each
    /// flagged `true` when expired (a dead worker not yet swept).
    pub presences: Vec<(Lease, bool)>,
    /// Shards parked as poison after repeated failures.
    pub parked: Vec<ParkedShard>,
    /// All shards checkpointed?
    pub complete: bool,
}

/// Inspect a shared store: per-worker progress and throughput, live and
/// stale leases, the completion ETA.
pub fn status(store_dir: &Path) -> Result<StatusReport, CampaignError> {
    let store = LocalStore::open(store_dir)?;
    let manifest = Manifest::parse(&store.read_manifest().map_err(|e| {
        CampaignError::Store(format!(
            "store {} has no manifest ({e})",
            store_dir.display()
        ))
    })?)?;
    let shards_total = manifest.plan().len() as u64;
    let done = store.done_shards()?;
    let records = store.load_records()?;
    let now = now_unix_ms();
    let (presences, leases): (Vec<_>, Vec<_>) = list_leases(&store_dir.join(LEASE_DIR))?
        .into_iter()
        .map(|l| {
            let expired = l.is_expired(now);
            (l, expired)
        })
        .partition(|(l, _)| is_presence(l));
    // strip_prefix, not trim_start_matches: the latter strips repeatedly,
    // so a worker whose *id* itself starts with "worker-" would never
    // match its own presence key.
    let live_ids: HashSet<String> = presences
        .iter()
        .filter(|(_, expired)| !expired)
        .filter_map(|(l, _)| l.shard.strip_prefix("worker-").map(ToString::to_string))
        .collect();
    let rates: Vec<WorkerRate> = store
        .writer_checkpoints()?
        .into_iter()
        .map(|(worker, times)| {
            let live = live_ids.contains(&worker);
            let shards = times.len() as u64;
            // Inter-commit rate over the window first-commit → now:
            // (shards - 1) commits happened *after* the window opened, so
            // counting all `shards` would inflate the rate unboundedly at
            // low counts (1 shard / 1 s since it ≠ 60 shards/min). "To
            // now", not "to last commit": an idle-but-alive worker's rate
            // must decay instead of freezing at its historical best. One
            // commit carries no interval information — rate 0 until the
            // second.
            let shards_per_min = match times.first() {
                Some(&first) if shards >= 2 && now > first => {
                    (shards - 1) as f64 / ((now - first) as f64 / 60_000.0)
                }
                _ => 0.0,
            };
            WorkerRate {
                worker,
                shards,
                shards_per_min,
                live,
            }
        })
        .collect();
    let shards_remaining = shards_total.saturating_sub(done.len() as u64);
    // fold from +0.0, not sum(): std's empty f64 sum is -0.0, which would
    // leak a confusing "-0.0" into the JSON surface.
    let aggregate: f64 = rates
        .iter()
        .filter(|r| r.live)
        .fold(0.0, |a, r| a + r.shards_per_min);
    let eta = EtaReport {
        shards_remaining,
        live_workers: live_ids.len() as u64,
        aggregate_shards_per_min: aggregate,
        eta_ms: if shards_remaining == 0 || aggregate <= 0.0 {
            None
        } else {
            Some((shards_remaining as f64 / aggregate * 60_000.0) as u64)
        },
    };
    Ok(StatusReport {
        campaign: manifest.name,
        shards_total,
        shards_done: done.len() as u64,
        records: records.len() as u64,
        workers: store.writer_progress()?,
        rates,
        eta,
        leases,
        presences,
        parked: parked_shards(store_dir),
        complete: done.len() as u64 >= shards_total,
    })
}

/// Text rendering of a [`StatusReport`].
#[must_use]
pub fn render_status(s: &StatusReport) -> String {
    let mut out = format!(
        "campaign {} — shards {}/{}{}, {} records\n",
        s.campaign,
        s.shards_done,
        s.shards_total,
        if s.complete { " (complete)" } else { "" },
        s.records,
    );
    if s.workers.is_empty() {
        out.push_str("no worker has committed yet\n");
    } else {
        out.push_str(&format!(
            "{:<20} {:>10} {:>14}\n",
            "worker", "shards", "shards/min"
        ));
        for (id, shards) in &s.workers {
            let rate = s
                .rates
                .iter()
                .find(|r| r.worker == *id)
                .map(|r| format!("{:.2}{}", r.shards_per_min, if r.live { "" } else { " †" }))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("{id:<20} {shards:>10} {rate:>14}\n"));
        }
    }
    match s.eta.eta_ms {
        Some(ms) => out.push_str(&format!(
            "eta: {} shard(s) remaining / {:.2} shards/min over {} live worker(s) ≈ {:.1} s\n",
            s.eta.shards_remaining,
            s.eta.aggregate_shards_per_min,
            s.eta.live_workers,
            ms as f64 / 1000.0
        )),
        None if s.eta.shards_remaining > 0 => out.push_str(&format!(
            "eta: {} shard(s) remaining, no live worker rate to estimate from\n",
            s.eta.shards_remaining
        )),
        None => {}
    }
    let now = now_unix_ms();
    let dead = s.presences.iter().filter(|(_, e)| *e).count();
    out.push_str(&format!(
        "{} worker(s) attached, {dead} dead (presence expired)\n",
        s.presences.len()
    ));
    for (lease, expired) in &s.presences {
        let age_ms = now.saturating_sub(lease.heartbeat_unix_ms);
        out.push_str(&format!(
            "  {} (heartbeat {age_ms} ms ago{})\n",
            lease.worker,
            if *expired { ", DEAD" } else { "" },
        ));
    }
    let stale = s.leases.iter().filter(|(_, e)| *e).count();
    out.push_str(&format!(
        "{} lease(s) in flight, {stale} stale\n",
        s.leases.len()
    ));
    for (lease, expired) in &s.leases {
        let age_ms = now.saturating_sub(lease.heartbeat_unix_ms);
        out.push_str(&format!(
            "  shard {} held by {} (heartbeat {age_ms} ms ago{})\n",
            lease.shard,
            lease.worker,
            if *expired { ", EXPIRED" } else { "" },
        ));
    }
    if !s.parked.is_empty() {
        out.push_str(&format!("{} shard(s) PARKED as poison\n", s.parked.len()));
        for p in &s.parked {
            out.push_str(&format!(
                "  shard {} parked after {} failure(s): {}\n",
                p.shard, p.fails, p.reason
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mgrts-queue-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let dir = tmp("claim");
        let a = LeaseBoard::open(&dir, "a", Duration::from_secs(60)).unwrap();
        let b = LeaseBoard::open(&dir, "b", Duration::from_secs(60)).unwrap();
        assert!(a.try_claim("s1").unwrap());
        assert!(!b.try_claim("s1").unwrap(), "live lease stolen");
        assert!(b.try_claim("s2").unwrap(), "other shards stay claimable");
        a.release("s1").unwrap();
        assert!(b.try_claim("s1").unwrap(), "released lease re-claimable");
        // b's release must not delete a lease it doesn't hold.
        a.release("s2").unwrap();
        assert!(!a.try_claim("s2").unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_leases_are_reclaimable_and_renew_extends() {
        let dir = tmp("expiry");
        let fast = LeaseBoard::open(&dir, "fast", Duration::from_millis(40)).unwrap();
        let other = LeaseBoard::open(&dir, "other", Duration::from_millis(40)).unwrap();
        assert!(fast.try_claim("s1").unwrap());
        assert!(fast.try_claim("s2").unwrap());
        // Keep s1 alive across several TTLs with renewals; let s2 die.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(25));
            assert!(fast.renew("s1").unwrap());
        }
        assert!(!other.try_claim("s1").unwrap(), "renewed lease stolen");
        std::thread::sleep(Duration::from_millis(90));
        assert!(
            other.try_claim("s2").unwrap(),
            "expired lease not reclaimed"
        );
        // The original holder notices it lost s2: renew refuses.
        assert!(!fast.renew("s2").unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_sweep_frees_only_expired() {
        let dir = tmp("sweep");
        let a = LeaseBoard::open(&dir, "a", Duration::from_millis(30)).unwrap();
        let b = LeaseBoard::open(&dir, "b", Duration::from_secs(60)).unwrap();
        a.try_claim("dead").unwrap();
        b.try_claim("live").unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let freed = reclaim_expired(&dir).unwrap();
        assert_eq!(freed, vec!["dead".to_string()]);
        let left = list_leases(&dir.join(LEASE_DIR)).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].shard, "live");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_claims_admit_exactly_one_winner() {
        let dir = tmp("race");
        let winners = Mutex::new(0u32);
        crossbeam::scope(|scope| {
            for i in 0..8 {
                let dir = &dir;
                let winners = &winners;
                scope.spawn(move |_| {
                    let board =
                        LeaseBoard::open(dir, &format!("w{i}"), Duration::from_secs(60)).unwrap();
                    if board.try_claim("contested").unwrap() {
                        *winners.lock() += 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(*winners.lock(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_ids_are_validated() {
        let dir = tmp("ids");
        assert!(LeaseBoard::open(&dir, "ok-id", Duration::from_secs(1)).is_ok());
        assert!(LeaseBoard::open(&dir, "bad/id", Duration::from_secs(1)).is_err());
        assert!(LeaseBoard::open(&dir, "", Duration::from_secs(1)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_on_missing_store_dir_is_structural_not_found() {
        let missing =
            std::env::temp_dir().join(format!("mgrts-queue-no-such-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&missing);
        let err = LeaseBoard::open(&missing, "w", Duration::from_secs(1)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        assert!(err.to_string().contains("dispatch"), "err: {err}");
    }

    #[test]
    fn transient_claim_faults_are_retried_structural_are_not() {
        let dir = tmp("transient");
        // Occurrences 1 and 2 of lease.claim are interrupted — transient,
        // absorbed by retry_transient — so the claim still lands.
        let _guard = mgrts_fault::install_guarded(
            mgrts_fault::FaultPlan::parse(
                "seed=7;lease.claim:interrupted:n1;lease.claim:interrupted:n2",
            )
            .unwrap(),
        );
        let board = LeaseBoard::open(&dir, "w", Duration::from_secs(60)).unwrap();
        let claimed =
            retry_transient(fnv64(b"s1"), || board.try_claim("s1")).expect("transient absorbed");
        assert!(claimed);
        assert_eq!(mgrts_fault::injected_total(), 2);
        drop(_guard);

        // A structural fault (permission denied) fails without retry.
        let _guard = mgrts_fault::install_guarded(
            mgrts_fault::FaultPlan::parse("seed=7;lease.claim:denied:always").unwrap(),
        );
        let err = retry_transient(fnv64(b"s2"), || board.try_claim("s2")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        assert_eq!(mgrts_fault::injected_total(), 1, "no retries on structural");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_failures_park_after_threshold_and_clear_leases_sweeps() {
        let dir = tmp("park");
        let lease_dir = dir.join(LEASE_DIR);
        std::fs::create_dir_all(&lease_dir).unwrap();
        for strike in 1..=PARK_AFTER {
            let fails = note_shard_failure(&lease_dir, "abc123", "boom");
            assert_eq!(fails, strike);
        }
        let parked = parked_shards(&dir);
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].shard, "abc123");
        assert_eq!(parked[0].fails, PARK_AFTER);
        assert_eq!(parked[0].reason, "boom");
        // One strike on a different shard does not park it.
        note_shard_failure(&lease_dir, "other", "meh");
        assert_eq!(parked_shards(&dir).len(), 1);
        // clear_leases sweeps fail counts and park markers with the leases.
        clear_leases(&dir).unwrap();
        assert!(parked_shards(&dir).is_empty());
        assert!(std::fs::read_dir(&lease_dir).unwrap().next().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
