//! Extension experiment: probabilistic execution times on CSP schedules
//! (the paper's Section VIII long-term objective).
//!
//! Takes feasible Table-I instances, schedules them with CSP2+(D-C), then
//! sweeps a two-point overrun model (`P(overrun) = p`, overrun = 2×WCET)
//! and reports the mean per-hyperperiod deadline-miss probability, exact
//! and Monte-Carlo. Under the paper's idling policy the analysis is exact,
//! so the two columns must agree to sampling error.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin ext_prob -- [flags]`

use mgrts_bench::Args;
use mgrts_core::csp2::{Csp2Budget, Csp2Solver};
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, ProblemGenerator};
use rt_prob::{analyze_all, hyperperiod_miss_probability, ExecModel, McConfig};

fn main() {
    let args = Args::parse();
    let want = (args.instances / 10).clamp(5, 50) as usize;
    eprintln!(
        "EXT-PROB: first {want} feasible Table-I instances, seed {}",
        args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    let mut schedules = Vec::new();
    for p in gen.batch(args.instances) {
        if schedules.len() >= want {
            break;
        }
        let res = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .with_budget(Csp2Budget {
                time: Some(args.time_limit),
                max_decisions: None,
            })
            .solve();
        if let Some(s) = res.verdict.schedule() {
            schedules.push((p.taskset.clone(), s.clone()));
        }
    }
    eprintln!("collected {} schedules", schedules.len());

    println!("\nDEADLINE-MISS PROBABILITY vs OVERRUN PROBABILITY (overrun = 2x WCET)\n");
    println!(
        "{:>10} {:>16} {:>16}",
        "p(overrun)", "exact mean", "monte-carlo mean"
    );
    for p_over in [0.001, 0.01, 0.05, 0.1, 0.2] {
        let mut exact_sum = 0.0;
        let mut mc_sum = 0.0;
        for (ts, schedule) in &schedules {
            let model = ExecModel::with_overruns(ts, p_over, 2.0);
            let timings = analyze_all(ts, schedule, &model).expect("constrained");
            exact_sum += hyperperiod_miss_probability(&timings);
            let mc = rt_prob::monte_carlo_run(
                ts,
                schedule,
                &model,
                &McConfig {
                    rounds: 2_000,
                    seed: args.seed,
                },
            )
            .expect("constrained");
            mc_sum += mc.hyperperiod_miss_rate();
        }
        let k = schedules.len() as f64;
        println!(
            "{:>10.3} {:>16.6} {:>16.6}",
            p_over,
            exact_sum / k,
            mc_sum / k
        );
    }

    // Early-completion dividend: expected reclaimable idle under a
    // uniform(1, WCET) model.
    let mut idle_sum = 0.0;
    let mut slots_sum = 0.0;
    for (ts, schedule) in &schedules {
        let model = ExecModel::uniform_to_wcet(ts);
        let timings = analyze_all(ts, schedule, &model).expect("constrained");
        idle_sum += rt_prob::expected_idle_per_hyperperiod(&timings, &model);
        slots_sum += timings
            .iter()
            .map(|t| t.allocation.len() as f64)
            .sum::<f64>();
    }
    println!(
        "\nuniform(1,WCET) model: expected reclaimable idle = {:.1}% of allocated slots",
        100.0 * idle_sum / slots_sum
    );
}
