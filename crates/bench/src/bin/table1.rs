//! Tables I and II reproduction (Section VII-C).
//!
//! 500 random problems with m = 5, n = 10, Tmax = 7, solved by all six
//! solver columns under a wall-clock limit; reports the number of runs
//! reaching the limit, split by solved-by-someone (Table I) and, for
//! unsolved instances, by the r > 1 filter (Table II).
//!
//! Paper defaults: `--instances 500 --time-limit-ms 30000`. The binary's
//! default time limit is 1 s — modern hardware classification of "hard"
//! shifts accordingly; the qualitative ranking of solvers does not.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin table1 -- [flags]`

use mgrts_bench::{run_corpus, tables, Args, SolverKind};
use rt_gen::{GeneratorConfig, ProblemGenerator};

fn main() {
    let args = Args::parse();
    eprintln!(
        "Tables I & II: {} instances (m=5, n=10, Tmax=7), limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    let problems = gen.batch(args.instances);
    let records = run_corpus(
        &problems,
        &SolverKind::ROSTER,
        args.time_limit,
        args.threads,
        true,
    );
    if let Some(path) = &args.json {
        mgrts_bench::runner::save_records(&records, path).expect("write records");
        eprintln!("raw records written to {}", path.display());
    }

    println!("\nTABLE I — number of runs reaching the time limit\n");
    println!(
        "{}",
        tables::table1(&records, &SolverKind::ROSTER, args.instances)
    );
    println!("\nTABLE II — unsolved runs reaching the limit, by r > 1 filter\n");
    println!("{}", tables::table2(&records, &SolverKind::ROSTER));
}
