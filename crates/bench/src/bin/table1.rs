//! Tables I and II reproduction (Section VII-C), rebased on the campaign
//! engine.
//!
//! 500 random problems with m = 5, n = 10, Tmax = 7, solved by all six
//! solver columns under a wall-clock limit; reports the number of runs
//! reaching the limit, split by solved-by-someone (Table I) and, for
//! unsolved instances, by the r > 1 filter (Table II). The run streams its
//! records to a record store (`--out`, default `target/campaigns/table1`)
//! and emits `BENCH_table1.json` there; the printed tables are reports
//! over that store, byte-identical to `mgrts bench campaign run` +
//! `report table1` on the same manifest. The binary always starts fresh
//! (clearing the store) — to continue an interrupted run instead, use
//! `mgrts bench campaign resume --out <store>`.
//!
//! Paper defaults: `--instances 500 --time-limit-ms 30000`. The binary's
//! default time limit is 1 s — modern hardware classification of "hard"
//! shifts accordingly; the qualitative ranking of solvers does not.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin table1 -- [flags]`

use mgrts_bench::campaign::{self, CampaignOptions, Manifest};
use mgrts_bench::Args;
use mgrts_core::engine::CancelGroup;

fn main() {
    let args = Args::parse();
    eprintln!(
        "Tables I & II: {} instances (m=5, n=10, Tmax=7), limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let m = Manifest::table1("table1", args.instances, args.seed, args.time_limit);
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| "target/campaigns/table1".into());
    let opts = CampaignOptions {
        threads: args.threads,
        progress: true,
        max_shards: None,
    };
    campaign::run_fresh(&m, &out_dir, &opts, &CancelGroup::new()).expect("campaign run");
    let records = mgrts_bench::sink::load_records(&out_dir).expect("load records");
    if let Some(path) = &args.json {
        let runs: Vec<_> = records
            .iter()
            .map(mgrts_bench::sink::CampaignRecord::to_run_record)
            .collect();
        mgrts_bench::runner::save_records(&runs, path).expect("write records");
        eprintln!("raw records written to {}", path.display());
    }
    print!("{}", campaign::report_table1(&m, &records));
    eprintln!("record store: {}", out_dir.display());
}
