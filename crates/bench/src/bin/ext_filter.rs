//! Extension experiment: filtering power of the polynomial schedulability
//! battery on the paper's Table-I workload.
//!
//! The paper filters only by `r > 1` (Table II). `rt-analysis` adds the
//! P-fair exact condition, the density test, GFB and the window-demand
//! filter; this binary measures how many of the 500 instances each test
//! decides, and audits every decision against the exact CSP2 solver.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin ext_filter -- [flags]`

use std::collections::BTreeMap;

use mgrts_bench::Args;
use mgrts_core::csp2::{Csp2Budget, Csp2Solver};
use mgrts_core::heuristics::TaskOrder;
use rt_analysis::{analyze, TestOutcome};
use rt_gen::{GeneratorConfig, ProblemGenerator};

fn main() {
    let args = Args::parse();
    eprintln!(
        "EXT-FILTER: {} instances (m=5, n=10, Tmax=7), seed {}",
        args.instances, args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    let problems = gen.batch(args.instances);

    let mut decided_by: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut feasible = 0u64;
    let mut infeasible = 0u64;
    let mut undecided = 0u64;
    let mut audited = 0u64;
    let mut audit_failures = 0u64;

    for p in &problems {
        let report = analyze(&p.taskset, p.m);
        assert!(report.is_consistent(), "battery contradiction");
        match report.verdict() {
            TestOutcome::Feasible | TestOutcome::Infeasible => {
                *decided_by.entry(report.decided_by().unwrap()).or_insert(0) += 1;
                if report.verdict() == TestOutcome::Feasible {
                    feasible += 1;
                } else {
                    infeasible += 1;
                }
                // Audit against the exact solver (budgeted; skip overruns).
                let exact = Csp2Solver::new(&p.taskset, p.m)
                    .unwrap()
                    .with_order(TaskOrder::DeadlineMinusWcet)
                    .with_budget(Csp2Budget {
                        time: Some(args.time_limit),
                        max_decisions: None,
                    })
                    .solve();
                if !exact.verdict.is_unknown() {
                    audited += 1;
                    let claim_feasible = report.verdict() == TestOutcome::Feasible;
                    if claim_feasible != exact.verdict.is_feasible() {
                        audit_failures += 1;
                        eprintln!("AUDIT FAILURE on seed {}", p.seed);
                    }
                }
            }
            _ => undecided += 1,
        }
    }

    let total = problems.len() as u64;
    println!("\nFILTERING POWER OF THE ANALYTIC BATTERY (Table-I workload)\n");
    println!("{:<16} {:>9}", "decided by", "instances");
    for (name, count) in &decided_by {
        println!("{name:<16} {count:>9}");
    }
    println!(
        "\ndecided {}/{} ({:.1}%): {} feasible, {} infeasible; {} left to exact search",
        total - undecided,
        total,
        100.0 * (total - undecided) as f64 / total as f64,
        feasible,
        infeasible,
        undecided
    );
    println!("audited against CSP2+(D-C): {audited} decided instances, {audit_failures} failures");
    assert_eq!(
        audit_failures, 0,
        "analytic battery contradicted the exact solver"
    );
}
