//! Figure 1 reproduction: the availability-interval pattern of the running
//! example over one hyperperiod, plus a feasible schedule found by
//! CSP2+(D-C) — obtained through the same engine seam the campaign
//! executor uses (no bespoke solver construction).
//!
//! Run with: `cargo run -p mgrts-bench --bin figure1`

use mgrts_core::engine::{Budget, CancelToken, SolverSpec};
use mgrts_core::heuristics::TaskOrder;
use rt_sim::{render_intervals, render_schedule};
use rt_task::TaskSet;

fn main() {
    let ts = TaskSet::running_example();
    println!("Figure 1 — availability intervals of Example 1 (m = 2, H = 12)\n");
    println!("{}", render_intervals(&ts).unwrap());
    let res = SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet)
        .build()
        .solve(&ts, 2, &Budget::unlimited(), &CancelToken::new())
        .expect("running example is a valid task set");
    println!("A feasible schedule (CSP2 + (D-C)):\n");
    println!("{}", render_schedule(res.verdict.schedule().unwrap()));
}
