//! Extension experiment: quantile budget sizing recovers infeasible
//! instances.
//!
//! Instances that are infeasible when every task is budgeted at its WCET
//! can become feasible at the 90th-percentile budget, at the price of a
//! bounded per-job overrun probability. This binary takes the Table-I
//! workload's infeasible instances (under a uniform(1, WCET) execution
//! model), sweeps the confidence level `q`, and reports the fraction
//! recovered — the feasibility-versus-confidence tradeoff curve.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin ext_budget -- [flags]`

use mgrts_bench::Args;
use mgrts_core::csp2::{Csp2Budget, Csp2Solver};
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, ProblemGenerator};
use rt_prob::{quantile_budgets, with_budgets, ExecModel};
use rt_task::TaskSet;

fn feasible(ts: &TaskSet, m: usize, args: &Args) -> Option<bool> {
    let res = Csp2Solver::new(ts, m)
        .unwrap()
        .with_order(TaskOrder::DeadlineMinusWcet)
        .with_budget(Csp2Budget {
            time: Some(args.time_limit),
            max_decisions: None,
        })
        .solve();
    if res.verdict.is_unknown() {
        None
    } else {
        Some(res.verdict.is_feasible())
    }
}

fn main() {
    let args = Args::parse();
    eprintln!(
        "EXT-BUDGET: {} instances (m=5, n=10, Tmax=7), seed {}",
        args.instances, args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    // Collect instances that are decidedly infeasible at WCET budgets.
    let mut infeasible = Vec::new();
    for p in gen.batch(args.instances) {
        if feasible(&p.taskset, p.m, &args) == Some(false) {
            infeasible.push(p);
        }
    }
    eprintln!("{} WCET-infeasible instances", infeasible.len());

    println!("\nFEASIBILITY RECOVERED BY QUANTILE BUDGETS (uniform(1,WCET) model)\n");
    println!(
        "{:>6} {:>10} {:>12} {:>20}",
        "q", "recovered", "recovered %", "worst job overrun"
    );
    for q in [0.5, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let mut recovered = 0u64;
        let mut worst = 0.0f64;
        for p in &infeasible {
            let model = ExecModel::uniform_to_wcet(&p.taskset);
            let budgets = quantile_budgets(&model, q);
            for (i, &b) in budgets.iter().enumerate() {
                worst = worst.max(model.pmf(i).exceedance(b));
            }
            let Ok(resized) = with_budgets(&p.taskset, &budgets) else {
                continue;
            };
            if feasible(&resized, p.m, &args) == Some(true) {
                recovered += 1;
            }
        }
        println!(
            "{q:>6.2} {recovered:>10} {:>11.1}% {worst:>20.3}",
            100.0 * recovered as f64 / infeasible.len().max(1) as f64
        );
    }
}
