//! Table IV reproduction (Section VII-E), rebased on the campaign engine:
//! scaling with the number of tasks.
//!
//! One grid cell per n ∈ {4, 8, 16, 32, 64, 128, 256} with Tmax = 15 and
//! m = ⌈Σ Ci/Ti⌉ (the minimum passing the utilization filter), solved by
//! CSP1 and CSP2+(D-C). The old per-n generation loop is gone — the
//! campaign grid *is* the loop, and the printed table is a report over the
//! record store (`--out`, default `target/campaigns/table4`; the binary
//! always starts fresh — `mgrts bench campaign resume` continues a killed
//! run). CSP1 rows
//! show `–` where every run hit the encoding size guard — the paper's
//! "runs out of memory on large instances".
//!
//! Paper defaults: `--instances 100 --time-limit-ms 30000`.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin table4 -- [flags]`

use mgrts_bench::campaign::{self, CampaignOptions, Manifest};
use mgrts_bench::Args;
use mgrts_core::engine::CancelGroup;

const NS: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn main() {
    let mut args = Args::parse_from(std::env::args().skip(1));
    if std::env::args().all(|a| a != "--instances") {
        args.instances = 100; // the paper's Table IV batch size
    }
    eprintln!(
        "Table IV: {} instances per n, Tmax=15, m=⌈U⌉, limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let m = Manifest::table4(&NS, args.instances, args.seed, args.time_limit);
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| "target/campaigns/table4".into());
    // Large-n instances allocate hundreds of MB of search state each, and
    // the flat shard queue reaches the n ≥ 64 cells with every worker
    // active — cap at 2 workers (the old per-n ladder's large-n limit) so
    // peak memory stays bounded.
    let opts = CampaignOptions {
        threads: args.threads.min(2),
        progress: true,
        max_shards: None,
    };
    campaign::run_fresh(&m, &out_dir, &opts, &CancelGroup::new()).expect("campaign run");
    let records = mgrts_bench::sink::load_records(&out_dir).expect("load records");
    if let Some(path) = &args.json {
        let runs: Vec<_> = records
            .iter()
            .map(mgrts_bench::sink::CampaignRecord::to_run_record)
            .collect();
        mgrts_bench::runner::save_records(&runs, path).expect("write records");
        eprintln!("raw records written to {}", path.display());
    }
    print!("{}", campaign::report_table4(&m, &records));
    eprintln!("record store: {}", out_dir.display());
}
