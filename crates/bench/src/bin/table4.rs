//! Table IV reproduction (Section VII-E): scaling with the number of tasks.
//!
//! For each n ∈ {4, 8, 16, 32, 64, 128, 256}: random problems with
//! Tmax = 15 and m = ⌈Σ Ci/Ti⌉ (the minimum passing the utilization
//! filter), solved by CSP1 and CSP2+(D-C). Reports mean r, m, hyperperiod,
//! and per solver the solved fraction and mean resolution time. CSP1 rows
//! show `–` where every run hit the encoding size guard — the paper's
//! "runs out of memory on large instances".
//!
//! Paper defaults: `--instances 100 --time-limit-ms 30000`.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin table4 -- [flags]`

use mgrts_bench::{run_corpus, tables, Args, InstanceOutcome, SolverKind};
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, ProblemGenerator};

const NS: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn main() {
    let mut args = Args::parse_from(std::env::args().skip(1));
    if std::env::args().all(|a| a != "--instances") {
        args.instances = 100; // the paper's Table IV batch size
    }
    eprintln!(
        "Table IV: {} instances per n, Tmax=15, m=⌈U⌉, limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let roster = [
        SolverKind::Csp1,
        SolverKind::Csp2(TaskOrder::DeadlineMinusWcet),
    ];
    let mut rows = Vec::new();
    for n in NS {
        eprintln!("n = {n} …");
        let gen = ProblemGenerator::new(GeneratorConfig::table4(n), args.seed);
        let problems = gen.batch(args.instances);
        // Large-n instances allocate hundreds of MB of search state each;
        // cap the parallelism so peak memory stays bounded.
        let threads = if n >= 64 {
            2
        } else if n >= 32 {
            4
        } else {
            args.threads
        };
        let records = run_corpus(&problems, &roster, args.time_limit, threads, false);

        let mean = |f: &dyn Fn(&rt_gen::Problem) -> f64| -> f64 {
            problems.iter().map(f).sum::<f64>() / problems.len() as f64
        };
        let per_solver = roster
            .iter()
            .map(|&s| {
                let runs: Vec<_> = records.iter().filter(|r| r.solver == s).collect();
                let solved = runs
                    .iter()
                    .filter(|r| r.outcome == InstanceOutcome::Solved)
                    .count() as f64
                    / runs.len() as f64;
                let t_ms =
                    runs.iter().map(|r| r.time_us as f64).sum::<f64>() / runs.len() as f64 / 1000.0;
                let all_too_large = runs.iter().all(|r| r.outcome == InstanceOutcome::TooLarge);
                (solved, t_ms, all_too_large)
            })
            .collect();
        rows.push(tables::Table4Row {
            n,
            mean_r: mean(&|p| p.utilization_ratio()),
            mean_m: mean(&|p| p.m as f64),
            mean_h: mean(&|p| p.taskset.hyperperiod().unwrap_or(0) as f64),
            per_solver,
        });
    }
    println!("\nTABLE IV — experiments with a growing number of tasks\n");
    println!("{}", tables::table4(&rows, &roster));
}
