//! Extension experiment: the SAT route as a seventh solver column.
//!
//! Section IV motivates CSP1's boolean shape with "even boolean
//! satisfiability (SAT) solvers could be used"; the paper never runs one.
//! This binary does: the Table-I workload (m = 5, n = 10, Tmax = 7) under
//! CSP1-on-the-generic-engine, CSP2+(D-C), and CSP1-as-CNF on the CDCL
//! solver, reporting overruns and mean decision time per column.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin ext_sat -- [flags]`

use mgrts_bench::{run_corpus, Args, InstanceOutcome, SolverSpec};
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, ProblemGenerator};

fn main() {
    let args = Args::parse();
    let roster = [
        SolverSpec::Csp1,
        SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet),
        SolverSpec::Csp1Sat,
    ];
    eprintln!(
        "EXT-SAT: {} instances (m=5, n=10, Tmax=7), limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    let problems = gen.batch(args.instances);
    let records = run_corpus(&problems, &roster, args.time_limit, args.threads, true);
    if let Some(path) = &args.json {
        mgrts_bench::runner::save_records(&records, path).expect("write records");
    }

    println!("\nEXTENDED TABLE I — CSP1 vs CSP2+(D-C) vs SAT (CDCL)\n");
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>10} {:>14}",
        "solver", "solved", "infeasible", "overruns", "too-large", "mean time (ms)"
    );
    for solver in roster {
        let rows: Vec<_> = records.iter().filter(|r| r.solver == solver).collect();
        let count = |o: InstanceOutcome| rows.iter().filter(|r| r.outcome == o).count();
        let decided: Vec<_> = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    InstanceOutcome::Solved | InstanceOutcome::ProvedInfeasible
                )
            })
            .collect();
        let mean_ms = if decided.is_empty() {
            0.0
        } else {
            decided.iter().map(|r| r.time_us as f64).sum::<f64>() / decided.len() as f64 / 1000.0
        };
        println!(
            "{:<10} {:>8} {:>10} {:>9} {:>10} {:>14.2}",
            solver.label(),
            count(InstanceOutcome::Solved),
            count(InstanceOutcome::ProvedInfeasible),
            count(InstanceOutcome::Overrun),
            count(InstanceOutcome::TooLarge),
            mean_ms
        );
    }

    // Verdict agreement audit between CSP2+(D-C) and SAT where both decided.
    let mut agree = 0u64;
    let mut both = 0u64;
    for i in 0..problems.len() as u64 {
        let of = |s: SolverSpec| {
            records
                .iter()
                .find(|r| r.instance == i && r.solver == s)
                .map(|r| r.outcome)
        };
        if let (Some(a), Some(b)) = (
            of(SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet)),
            of(SolverSpec::Csp1Sat),
        ) {
            let dec = |o: InstanceOutcome| {
                matches!(
                    o,
                    InstanceOutcome::Solved | InstanceOutcome::ProvedInfeasible
                )
            };
            if dec(a) && dec(b) {
                both += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
    }
    println!("\nverdict agreement CSP2+(D-C) vs SAT on co-decided instances: {agree}/{both}");
    assert_eq!(agree, both, "exact solvers disagreed — this is a bug");
}
