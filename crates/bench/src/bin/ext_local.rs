//! Extension experiment: local-search strategy ablation (the paper's
//! Section VIII first future-work bullet).
//!
//! On the Table-I workload, each incomplete strategy (min-conflicts, tabu,
//! simulated annealing) gets the same move budget; the exact CSP2+(D-C)
//! solver provides ground truth. Reported per strategy: how many feasible
//! instances it solves, and its mean move count on solved instances.
//! Local search never decides infeasible instances, so the interesting
//! denominator is the feasible subset.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin ext_local -- [flags]`

use mgrts_bench::Args;
use mgrts_core::csp2::{Csp2Budget, Csp2Solver};
use mgrts_core::heuristics::TaskOrder;
use mgrts_core::local_search::{solve_local_search, LocalSearchConfig, LsStrategy};
use mgrts_core::verify::check_identical;
use rt_gen::{GeneratorConfig, ProblemGenerator};

fn main() {
    let args = Args::parse();
    eprintln!(
        "EXT-LOCAL: {} instances (m=5, n=10, Tmax=7), seed {}",
        args.instances, args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    let mut feasible = Vec::new();
    for p in gen.batch(args.instances) {
        let res = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .with_budget(Csp2Budget {
                time: Some(args.time_limit),
                max_decisions: None,
            })
            .solve();
        if res.verdict.is_feasible() {
            feasible.push(p);
        }
    }
    eprintln!("{} feasible instances form the benchmark", feasible.len());

    let strategies: [(&str, LsStrategy); 3] = [
        ("min-conflicts", LsStrategy::MinConflicts),
        ("tabu(10)", LsStrategy::Tabu { tenure: 10 }),
        (
            "annealing",
            LsStrategy::Annealing {
                t0: 2.0,
                cooling: 0.9995,
            },
        ),
    ];

    println!(
        "\nLOCAL-SEARCH ABLATION on {} feasible instances\n",
        feasible.len()
    );
    println!(
        "{:<14} {:>7} {:>10} {:>16}",
        "strategy", "solved", "solve %", "mean moves"
    );
    for (label, strategy) in strategies {
        let mut solved = 0u64;
        let mut moves = 0u64;
        for p in &feasible {
            let cfg = LocalSearchConfig {
                strategy,
                max_iters: 100_000,
                seed: p.seed,
                ..LocalSearchConfig::default()
            };
            let res = solve_local_search(&p.taskset, p.m, &cfg).unwrap();
            if let Some(s) = res.verdict.schedule() {
                check_identical(&p.taskset, p.m, s).expect("local search schedule invalid");
                solved += 1;
                moves += res.stats.decisions;
            }
        }
        let pct = 100.0 * solved as f64 / feasible.len().max(1) as f64;
        let mean = if solved == 0 {
            0.0
        } else {
            moves as f64 / solved as f64
        };
        println!("{label:<14} {solved:>7} {pct:>9.1}% {mean:>16.0}");
    }
}
