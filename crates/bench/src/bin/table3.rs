//! Table III reproduction (Section VII-D): distribution of the 500
//! generated instances over utilization-ratio buckets and the mean
//! resolution time (over all six solvers) per bucket.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin table3 -- [flags]`

use mgrts_bench::{run_corpus, tables, Args, SolverKind};
use rt_gen::{GeneratorConfig, ProblemGenerator};

fn main() {
    let args = Args::parse();
    eprintln!(
        "Table III: {} instances (m=5, n=10, Tmax=7), limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), args.seed);
    let problems = gen.batch(args.instances);
    let records = run_corpus(
        &problems,
        &SolverKind::ROSTER,
        args.time_limit,
        args.threads,
        true,
    );
    if let Some(path) = &args.json {
        mgrts_bench::runner::save_records(&records, path).expect("write records");
        eprintln!("raw records written to {}", path.display());
    }
    println!("\nTABLE III — instance distribution and mean resolution time by r\n");
    println!("{}", tables::table3(&records));
}
