//! Table III reproduction (Section VII-D), rebased on the campaign engine:
//! distribution of the 500 generated instances over utilization-ratio
//! buckets and the mean resolution time (over all six solvers) per bucket.
//! Streams records to a store (`--out`, default `target/campaigns/table3`)
//! and emits `BENCH_table3.json`. Always starts fresh; use
//! `mgrts bench campaign resume --out <store>` to continue a killed run.
//!
//! Run with: `cargo run --release -p mgrts-bench --bin table3 -- [flags]`

use mgrts_bench::campaign::{self, CampaignOptions, Manifest};
use mgrts_bench::Args;
use mgrts_core::engine::CancelGroup;

fn main() {
    let args = Args::parse();
    eprintln!(
        "Table III: {} instances (m=5, n=10, Tmax=7), limit {:?}, seed {}",
        args.instances, args.time_limit, args.seed
    );
    let m = Manifest::table1("table3", args.instances, args.seed, args.time_limit);
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| "target/campaigns/table3".into());
    let opts = CampaignOptions {
        threads: args.threads,
        progress: true,
        max_shards: None,
    };
    campaign::run_fresh(&m, &out_dir, &opts, &CancelGroup::new()).expect("campaign run");
    let records = mgrts_bench::sink::load_records(&out_dir).expect("load records");
    if let Some(path) = &args.json {
        let runs: Vec<_> = records
            .iter()
            .map(mgrts_bench::sink::CampaignRecord::to_run_record)
            .collect();
        mgrts_bench::runner::save_records(&runs, path).expect("write records");
        eprintln!("raw records written to {}", path.display());
    }
    print!("{}", campaign::report_table3(&m, &records));
    eprintln!("record store: {}", out_dir.display());
}
