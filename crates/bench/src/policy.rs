//! Execution policies: *what runs, and with what budget*, for one
//! campaign unit.
//!
//! Before this module the campaign executor hard-wired one shape of work
//! into [`crate::campaign`]: every `(cell, instance, solver)` unit ran one
//! roster solver under the manifest's global `time_limit_ms`. The paper's
//! headline comparison (Table I) and both ROADMAP follow-ups — racing the
//! roster per instance, and sizing budgets from recorded solve times —
//! need different answers to the same two questions, so the seam is one
//! trait:
//!
//! * [`SingleSolver`] — the historical path: one unit per
//!   `(cell, instance, solver)`, each running `roster[solver]`;
//! * [`PortfolioRace`] — one unit per `(cell, instance)`, racing the whole
//!   roster via [`mgrts_core::portfolio`] with cooperative cancellation;
//!   the record keeps the winner label, every loser's serializable stats
//!   and the cancellation latency;
//! * [`AdaptiveBudget`] — a wrapper around either of the above that caps
//!   each unit's wall-clock allowance at a configurable quantile of the
//!   solve times already recorded in the [`RecordStore`], falling back to
//!   the manifest's `time_limit_ms` until enough samples exist.
//!
//! Policies are declared in the manifest's `[policy]` section (see
//! [`crate::campaign::Manifest`]), participate in the campaign fingerprint
//! (changing the policy re-shards), and are **resumable and lease-safe**:
//! a policy is built once per executor/worker process from the manifest
//! plus a snapshot of the store, so any number of workers can drain the
//! same plan. Adaptive allowances are re-derived per claimed shard via
//! [`ExecutionPolicy::refresh`] (so long-running workers see records
//! committed after they started) — a budget is a measurement-domain
//! quantity (like the wall clock itself), so two workers with different
//! snapshots still commit records that dedupe identically.

use std::str::FromStr;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use mgrts_core::engine::{
    Budget, CancelToken, EnginePool, FeasibilitySolver, PlatformSpec, SolverSpec,
};
use mgrts_core::portfolio::{self, BackendStat};
use mgrts_core::solve::Verdict;
use mgrts_obs::flight;
use rt_gen::Problem;
use rt_platform::Platform;
use rt_task::TaskSet;

use crate::campaign::{CampaignError, Manifest};
use crate::runner::{classify, run_one_engine_full, run_one_hetero_engine_full, InstanceOutcome};
use crate::sink::RecordStore;

// ---------------------------------------------------------------------------
// Declarative policy configuration (the manifest `[policy]` section)
// ---------------------------------------------------------------------------

/// Which executor shape produced a record (persisted per line; old
/// pre-policy segments deserialize as `None` and default to `Single`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// One roster solver per unit.
    Single,
    /// The whole roster raced per unit.
    PortfolioRace,
}

/// Where a unit's wall-clock allowance came from (persisted per line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetSource {
    /// The manifest's global `time_limit_ms`.
    Manifest,
    /// An [`AdaptiveBudget`] quantile over recorded solve times.
    Adaptive,
}

/// The base executor shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyMode {
    /// One roster solver per unit (the historical default).
    #[default]
    Single,
    /// Race the roster per instance.
    PortfolioRace,
}

impl PolicyMode {
    /// Stable manifest / CLI name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PolicyMode::Single => "single",
            PolicyMode::PortfolioRace => "portfolio-race",
        }
    }
}

impl std::fmt::Display for PolicyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "single" => PolicyMode::Single,
            "portfolio-race" | "portfolio" | "race" => PolicyMode::PortfolioRace,
            other => {
                return Err(format!(
                    "unknown policy mode `{other}` (expected single|portfolio-race)"
                ))
            }
        })
    }
}

/// Adaptive-budget wrapper configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSpec {
    /// Quantile of recorded decided solve times used as the per-cell
    /// allowance, in `(0, 1]`.
    pub quantile: f64,
    /// Decided samples a cell needs before the quantile applies; below it
    /// the manifest `time_limit_ms` is used unchanged.
    pub min_samples: u64,
}

impl AdaptiveSpec {
    /// Default sample floor before a quantile allowance engages.
    pub const DEFAULT_MIN_SAMPLES: u64 = 8;

    /// Validated constructor — the single place the quantile range rule
    /// lives (manifest parsing, the CLI flags and policy building all
    /// route through it / [`AdaptiveSpec::validate`]).
    pub fn new(quantile: f64, min_samples: u64) -> Result<Self, String> {
        let spec = AdaptiveSpec {
            quantile,
            min_samples,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the spec's invariants (quantile in `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.quantile > 0.0 && self.quantile <= 1.0 {
            Ok(())
        } else {
            Err(format!("adaptive quantile {} out of (0, 1]", self.quantile))
        }
    }
}

/// The manifest's declarative policy: base mode plus the optional
/// adaptive-budget wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicySpec {
    /// Base executor shape.
    pub mode: PolicyMode,
    /// Optional adaptive-budget wrapper.
    pub adaptive: Option<AdaptiveSpec>,
}

impl PolicySpec {
    /// Is this the historical default (single solver, manifest budgets)?
    /// The default keeps fingerprints byte-identical to pre-policy
    /// campaigns, so existing stores and baselines stay valid.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == PolicySpec::default()
    }

    /// Fingerprint component; policy changes re-shard because this feeds
    /// every shard's content hash (the default contributes nothing — see
    /// [`PolicySpec::is_default`]).
    #[must_use]
    pub fn tag(&self) -> String {
        let mut out = self.mode.name().to_string();
        if let Some(a) = &self.adaptive {
            out.push_str(&format!(
                "+adaptive(q={},min={})",
                a.quantile, a.min_samples
            ));
        }
        out
    }

    /// The [`PolicyKind`] recorded on every unit this policy executes.
    #[must_use]
    pub fn kind(&self) -> PolicyKind {
        match self.mode {
            PolicyMode::Single => PolicyKind::Single,
            PolicyMode::PortfolioRace => PolicyKind::PortfolioRace,
        }
    }

    /// Units contributed per `(cell, instance)`: the roster length under
    /// `Single`, one racing unit under `PortfolioRace`.
    #[must_use]
    pub fn units_per_instance(&self, roster_len: usize) -> usize {
        match self.mode {
            PolicyMode::Single => roster_len,
            PolicyMode::PortfolioRace => 1,
        }
    }

    /// Build the executable policy for `manifest` over a snapshot of
    /// `store` (the adaptive wrapper reads recorded solve times; the other
    /// policies ignore the store).
    pub fn build(
        &self,
        manifest: &Manifest,
        store: &dyn RecordStore,
    ) -> Result<Box<dyn ExecutionPolicy>, CampaignError> {
        let base: Box<dyn ExecutionPolicy> = match self.mode {
            PolicyMode::Single => Box::new(SingleSolver {
                roster: manifest.roster.clone(),
                time_limit: manifest.time_limit,
                pool: EnginePool::new(),
            }),
            PolicyMode::PortfolioRace => Box::new(PortfolioRace {
                roster: manifest.roster.clone(),
                time_limit: manifest.time_limit,
                pool: EnginePool::new(),
            }),
        };
        match &self.adaptive {
            None => Ok(base),
            Some(spec) => {
                spec.validate().map_err(CampaignError::Manifest)?;
                let budgets = adaptive_cell_budgets(manifest.cells.len(), store, spec)?;
                Ok(Box::new(AdaptiveBudget {
                    inner: base,
                    spec: *spec,
                    n_cells: manifest.cells.len(),
                    per_cell: std::sync::Mutex::new(budgets),
                }))
            }
        }
    }
}

/// Snapshot the per-cell quantile allowances from the records currently in
/// `store`. Samples only runs decided under the *manifest* limit: feeding
/// adaptively-capped times back into the quantile would ratchet allowances
/// downward with every resume / late-joining worker (slow-but-decided runs
/// turn into excluded Overruns under a cap, so a capped sample set is
/// biased fast).
fn adaptive_cell_budgets(
    n_cells: usize,
    store: &dyn RecordStore,
    spec: &AdaptiveSpec,
) -> Result<Vec<Option<Duration>>, CampaignError> {
    let mut per_cell: Vec<Vec<u64>> = vec![Vec::new(); n_cells];
    for r in store.load_records()? {
        if r.cell < per_cell.len()
            && r.budget_src() == BudgetSource::Manifest
            && matches!(
                r.outcome,
                InstanceOutcome::Solved | InstanceOutcome::ProvedInfeasible
            )
        {
            per_cell[r.cell].push(r.time_us);
        }
    }
    Ok(per_cell
        .into_iter()
        .map(|samples| budget_from_samples(samples, spec))
        .collect())
}

/// Nearest-rank quantile over an ascending-sorted sample set: the smallest
/// sample `x` such that at least `q·n` samples are `≤ x`. `None` on an
/// empty set.
#[must_use]
pub fn quantile_us(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1).min(sorted.len()) - 1])
}

/// The adaptive allowance of one cell: the configured quantile of its
/// decided solve times, or `None` (manifest fallback) below the sample
/// floor.
#[must_use]
pub fn budget_from_samples(mut samples: Vec<u64>, spec: &AdaptiveSpec) -> Option<Duration> {
    if (samples.len() as u64) < spec.min_samples.max(1) {
        return None;
    }
    samples.sort_unstable();
    quantile_us(&samples, spec.quantile).map(Duration::from_micros)
}

// ---------------------------------------------------------------------------
// The ExecutionPolicy trait
// ---------------------------------------------------------------------------

/// What executing one campaign unit produced (the policy-specific slice of
/// a [`crate::sink::CampaignRecord`]).
#[derive(Debug, Clone)]
pub struct UnitExecution {
    /// Classified outcome.
    pub outcome: InstanceOutcome,
    /// Wall-clock of the unit, microseconds (the whole race for
    /// `PortfolioRace`).
    pub time_us: u64,
    /// Winning backend name (`PortfolioRace` only).
    pub winner: Option<String>,
    /// Wall-clock between the winner's verdict and the last loser
    /// stopping (`PortfolioRace` with a winner only).
    pub cancel_latency_us: Option<u64>,
    /// Per-backend race stats, in roster order (`PortfolioRace` only).
    pub backends: Option<Vec<BackendStat>>,
    /// Search telemetry of the unit's solve (the winner's, for races),
    /// when the backend collects it.
    pub search: Option<mgrts_obs::SearchStats>,
}

/// A pluggable cell executor: decides, per campaign unit, *what runs and
/// with what budget*. One policy object serves a whole executor / worker
/// process; implementations are immutable and shared across threads.
pub trait ExecutionPolicy: Send + Sync {
    /// The kind recorded on every unit.
    fn kind(&self) -> PolicyKind;

    /// The wall-clock budget (and its provenance) for a unit of `cell`.
    /// The executor further caps it by the shard's remaining allowance.
    fn unit_budget(&self, cell: usize) -> (Budget, BudgetSource);

    /// Execute one unit. `unit_solver` indexes the manifest roster (always
    /// 0 for racing policies, whose plan collapses the solver axis).
    /// Produced schedules are verified against the independent C1–C4
    /// checker; a verification failure is a solver bug and panics loudly.
    fn execute(
        &self,
        p: &Problem,
        platform: Option<&Platform>,
        unit_solver: usize,
        budget: &Budget,
        cancel: &CancelToken,
    ) -> UnitExecution;

    /// Re-derive any store-dependent state (called by executors between
    /// shards, so long-running workers see records committed after they
    /// started). The default is a no-op: only [`AdaptiveBudget`]
    /// re-snapshots its quantile allowances.
    fn refresh(&self, store: &dyn RecordStore) -> Result<(), CampaignError> {
        let _ = store;
        Ok(())
    }
}

/// The historical inline path, extracted: one roster solver per unit.
///
/// Engines are served from a shared [`EnginePool`], so a long-lived
/// policy object (one per executor/worker process, or a resident server)
/// builds each `(spec, seed)` engine once instead of once per unit.
#[derive(Debug, Clone)]
pub struct SingleSolver {
    /// Manifest roster (indexed by the unit's solver position).
    pub roster: Vec<SolverSpec>,
    /// Manifest per-run wall-clock limit.
    pub time_limit: Duration,
    /// Engine cache shared across units (and across policy clones).
    pub pool: EnginePool,
}

impl ExecutionPolicy for SingleSolver {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Single
    }

    fn unit_budget(&self, _cell: usize) -> (Budget, BudgetSource) {
        (Budget::time_limit(self.time_limit), BudgetSource::Manifest)
    }

    fn execute(
        &self,
        p: &Problem,
        platform: Option<&Platform>,
        unit_solver: usize,
        budget: &Budget,
        cancel: &CancelToken,
    ) -> UnitExecution {
        let engine = self.pool.get(self.roster[unit_solver], p.seed);
        let (outcome, time_us, search) = match platform {
            Some(platform) => run_one_hetero_engine_full(p, platform, &*engine, budget, cancel),
            None => run_one_engine_full(p, &*engine, budget, cancel),
        };
        UnitExecution {
            outcome,
            time_us,
            winner: None,
            cancel_latency_us: None,
            backends: None,
            search,
        }
    }
}

/// Race the whole roster per `(cell, instance)` unit — the paper's Table I
/// as a single racing campaign.
#[derive(Debug, Clone)]
pub struct PortfolioRace {
    /// Manifest roster; every entry races on each unit.
    pub roster: Vec<SolverSpec>,
    /// Manifest per-run wall-clock limit (bounds the whole race).
    pub time_limit: Duration,
    /// Engine cache shared across units (and across policy clones).
    pub pool: EnginePool,
}

impl ExecutionPolicy for PortfolioRace {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PortfolioRace
    }

    fn unit_budget(&self, _cell: usize) -> (Budget, BudgetSource) {
        (Budget::time_limit(self.time_limit), BudgetSource::Manifest)
    }

    fn execute(
        &self,
        p: &Problem,
        platform: Option<&Platform>,
        _unit_solver: usize,
        budget: &Budget,
        cancel: &CancelToken,
    ) -> UnitExecution {
        // Engines come from the shared pool — constructed once per
        // (spec, seed), reused by every subsequent unit and request.
        let roster = self.pool.roster(&self.roster, p.seed);
        let spec = match platform {
            Some(platform) => PlatformSpec::Heterogeneous(platform.clone()),
            None => PlatformSpec::identical(p.m),
        };
        let run = race_roster(&roster, &p.taskset, &spec, budget, cancel)
            .expect("valid constrained instance");
        UnitExecution {
            outcome: classify(&run.verdict),
            time_us: run.elapsed_us,
            winner: run.winner,
            cancel_latency_us: run.cancel_latency_us,
            backends: Some(run.backends),
            search: run.search,
        }
    }
}

/// Wrapper policy: delegate execution to `inner`, but cap each unit's
/// allowance at the cell's recorded-solve-time quantile. The snapshot is
/// taken at build time and *re-taken on every [`ExecutionPolicy::refresh`]*
/// (executors call it per claimed shard), so a long-running worker's
/// allowances track records committed after it started rather than
/// freezing at its start-up snapshot. The quantile only ever *tightens*
/// the manifest limit, and a budget is a measurement-domain quantity (like
/// the wall clock itself), so workers holding different snapshots still
/// commit records that dedupe identically — refresh is an accuracy
/// improvement, never a correctness requirement.
pub struct AdaptiveBudget {
    inner: Box<dyn ExecutionPolicy>,
    spec: AdaptiveSpec,
    n_cells: usize,
    per_cell: std::sync::Mutex<Vec<Option<Duration>>>,
}

impl AdaptiveBudget {
    /// The adaptive allowance of `cell`, when enough samples existed.
    #[must_use]
    pub fn cell_allowance(&self, cell: usize) -> Option<Duration> {
        self.per_cell
            .lock()
            .expect("allowance lock")
            .get(cell)
            .copied()
            .flatten()
    }
}

impl ExecutionPolicy for AdaptiveBudget {
    fn kind(&self) -> PolicyKind {
        self.inner.kind()
    }

    fn unit_budget(&self, cell: usize) -> (Budget, BudgetSource) {
        let (base, _) = self.inner.unit_budget(cell);
        match self.cell_allowance(cell) {
            Some(allowance) => (base.capped(Some(allowance)), BudgetSource::Adaptive),
            None => (base, BudgetSource::Manifest),
        }
    }

    fn execute(
        &self,
        p: &Problem,
        platform: Option<&Platform>,
        unit_solver: usize,
        budget: &Budget,
        cancel: &CancelToken,
    ) -> UnitExecution {
        self.inner.execute(p, platform, unit_solver, budget, cancel)
    }

    fn refresh(&self, store: &dyn RecordStore) -> Result<(), CampaignError> {
        let budgets = adaptive_cell_budgets(self.n_cells, store, &self.spec)?;
        *self.per_cell.lock().expect("allowance lock") = budgets;
        self.inner.refresh(store)
    }
}

// ---------------------------------------------------------------------------
// The shared race entry point (campaign policy + CLI `portfolio`)
// ---------------------------------------------------------------------------

/// One roster race, reduced to the serializable parts every consumer
/// needs. The CLI `portfolio` subcommand and the [`PortfolioRace`] policy
/// both reduce to [`race_roster`] — there is exactly one race loop in the
/// repository ([`mgrts_core::portfolio::race_cancellable`]).
#[derive(Debug, Clone)]
pub struct RaceRun {
    /// The race's overall verdict (winner's, or the first non-definitive).
    pub verdict: Verdict,
    /// Winning backend name, if any backend reached a definitive verdict.
    pub winner: Option<String>,
    /// Wall-clock of the whole race, microseconds.
    pub elapsed_us: u64,
    /// Wall-clock between the winner's verdict and the last loser
    /// stopping, when there was a winner.
    pub cancel_latency_us: Option<u64>,
    /// Per-backend stats, in roster order.
    pub backends: Vec<BackendStat>,
    /// The winner's search telemetry, when its backend collects it.
    pub search: Option<mgrts_obs::SearchStats>,
}

/// Race a prebuilt roster on one instance under an external cancellation
/// token. Accepts any owning roster pointer (`Box` for one-shot callers,
/// pooled `Arc`s for resident ones), like the underlying racer.
pub fn race_roster<S>(
    roster: &[S],
    ts: &TaskSet,
    spec: &PlatformSpec,
    budget: &Budget,
    cancel: &CancelToken,
) -> Result<RaceRun, rt_task::TaskError>
where
    S: std::ops::Deref<Target = dyn FeasibilitySolver> + Sync,
{
    let mut sp = flight::span("race", "");
    let race = portfolio::race_cancellable(roster, ts, spec, budget, cancel)?;
    let run = RaceRun {
        verdict: race.result.verdict.clone(),
        winner: race.winner_name().map(ToString::to_string),
        elapsed_us: race.elapsed_us,
        cancel_latency_us: race.cancel_latency_us(),
        backends: race.backend_stats(),
        search: race.result.search.clone(),
    };
    // One lifecycle event per backend: how each contender ended (the
    // winner's verdict, cancelled losers, budget overruns).
    for b in &run.backends {
        flight::event(
            "race.backend",
            "",
            &format!(
                "{}{} outcome={} elapsed_us={}",
                b.name,
                if b.winner { " (winner)" } else { "" },
                b.outcome,
                b.time_us
            ),
        );
    }
    sp.set_detail(&match (&run.winner, run.cancel_latency_us) {
        (Some(w), Some(lat)) => format!("winner={w} cancel_latency_us={lat}"),
        (Some(w), None) => format!("winner={w}"),
        (None, _) => "winner=none".to_string(),
    });
    Ok(run)
}

/// Text rendering of a race: winner line, race wall-clock, per-backend
/// stats table (the CLI `portfolio` output body).
#[must_use]
pub fn render_race(run: &RaceRun) -> String {
    let mut out = String::new();
    match &run.winner {
        Some(name) => out.push_str(&format!("winner: {name}\n")),
        None => out.push_str("winner: none (no definitive verdict)\n"),
    }
    out.push_str(&format!(
        "race wall-clock: {:?}\n",
        Duration::from_micros(run.elapsed_us)
    ));
    if let Some(lat) = run.cancel_latency_us {
        out.push_str(&format!(
            "cancellation latency: {:?}\n",
            Duration::from_micros(lat)
        ));
    }
    out.push_str(&format!(
        "{:<14} {:<22} {:>10} {:>10} {:>12}\n",
        "backend", "outcome", "decisions", "failures", "elapsed"
    ));
    for b in &run.backends {
        out.push_str(&format!(
            "{:<14} {:<22} {:>10} {:>10} {:>12}\n",
            format!("{}{}", b.name, if b.winner { " *" } else { "" }),
            b.outcome,
            b.decisions,
            b.failures,
            format!("{:?}", Duration::from_micros(b.time_us)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_nearest_rank() {
        assert_eq!(quantile_us(&[], 0.9), None, "empty sample set");
        assert_eq!(quantile_us(&[42], 0.9), Some(42), "single sample");
        // Known distribution 10..=100 step 10: p90 over 10 samples is the
        // 9th order statistic.
        let d: Vec<u64> = (1..=10).map(|k| k * 10).collect();
        assert_eq!(quantile_us(&d, 0.9), Some(90));
        assert_eq!(quantile_us(&d, 0.5), Some(50));
        assert_eq!(quantile_us(&d, 1.0), Some(100));
        assert_eq!(quantile_us(&d, 0.0), Some(10), "q=0 clamps to the min");
        assert_eq!(quantile_us(&d, 0.05), Some(10));
    }

    #[test]
    fn adaptive_allowance_needs_the_sample_floor() {
        let spec = AdaptiveSpec {
            quantile: 0.9,
            min_samples: 3,
        };
        assert_eq!(budget_from_samples(vec![], &spec), None, "empty store");
        assert_eq!(budget_from_samples(vec![500], &spec), None, "one sample");
        assert_eq!(
            budget_from_samples(vec![30, 10, 20], &spec),
            Some(Duration::from_micros(30)),
            "p90 of three samples is the max (unsorted input is sorted)"
        );
        // min_samples = 0 behaves like 1 (never divide-by-nothing).
        let loose = AdaptiveSpec {
            quantile: 0.5,
            min_samples: 0,
        };
        assert_eq!(
            budget_from_samples(vec![7], &loose),
            Some(Duration::from_micros(7))
        );
    }

    #[test]
    fn refresh_resnapshots_allowances_from_later_records() {
        use crate::sink::{CampaignRecord, LocalStore};

        let manifest = Manifest::parse(
            r#"
[campaign]
name = "refresh-prop"
seed = 1
time_limit_ms = 5000
instances_per_cell = 4
shard_size = 8

[grid]
n = [3]
m = [2]
t_max = [4]
solvers = ["csp2-dc"]

[policy]
adaptive_quantile = 0.9
adaptive_min_samples = 3
"#,
        )
        .expect("valid manifest");
        let dir = std::env::temp_dir().join(format!(
            "mgrts-policy-refresh-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LocalStore::open(&dir).expect("store");

        // Built against an empty store: every cell falls back to the
        // manifest limit.
        let policy = manifest.build_policy(&store).expect("policy");
        assert_eq!(policy.unit_budget(0).1, BudgetSource::Manifest);

        // A peer worker commits three decided units for cell 0 *after*
        // this policy's build-time snapshot.
        let shards = manifest.plan();
        let shard = &shards[0];
        let records: Vec<CampaignRecord> = (0..3)
            .map(|i| CampaignRecord {
                shard: shard.hash.clone(),
                cell: 0,
                instance: i,
                global_instance: i,
                solver: "csp2-dc".parse().unwrap(),
                outcome: InstanceOutcome::Solved,
                time_us: (i + 1) * 1000,
                ratio: 0.5,
                filtered: false,
                m: 2,
                n: 3,
                t_max: 4,
                hetero: false,
                hyperperiod: 12,
                seed: 1,
                policy: Some(PolicyKind::Single),
                winner: None,
                budget_source: Some(BudgetSource::Manifest),
                cancel_latency_us: None,
                backends: None,
                search: None,
            })
            .collect();
        store
            .open_writer("peer")
            .expect("writer")
            .commit_shard(shard, &records)
            .expect("commit");

        // The stale snapshot still answers Manifest; refresh re-reads the
        // store, so the next claimed shard sees the later records.
        assert_eq!(policy.unit_budget(0).1, BudgetSource::Manifest);
        policy.refresh(&store).expect("refresh");
        let (budget, src) = policy.unit_budget(0);
        assert_eq!(src, BudgetSource::Adaptive);
        // p90 (nearest rank) of {1000, 2000, 3000} µs.
        assert_eq!(budget.time, Some(Duration::from_micros(3000)));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_spec_tags_and_defaults() {
        let d = PolicySpec::default();
        assert!(d.is_default());
        assert_eq!(d.tag(), "single");
        assert_eq!(d.units_per_instance(6), 6);
        let race = PolicySpec {
            mode: PolicyMode::PortfolioRace,
            adaptive: None,
        };
        assert!(!race.is_default());
        assert_eq!(race.tag(), "portfolio-race");
        assert_eq!(race.units_per_instance(6), 1);
        let adaptive = PolicySpec {
            mode: PolicyMode::Single,
            adaptive: Some(AdaptiveSpec {
                quantile: 0.9,
                min_samples: 8,
            }),
        };
        assert!(!adaptive.is_default());
        assert_eq!(adaptive.tag(), "single+adaptive(q=0.9,min=8)");
        assert_eq!(
            "portfolio-race".parse::<PolicyMode>().unwrap(),
            PolicyMode::PortfolioRace
        );
        assert_eq!("single".parse::<PolicyMode>().unwrap(), PolicyMode::Single);
        assert!("nonsense".parse::<PolicyMode>().is_err());
    }

    #[test]
    fn policy_kind_serde_round_trips_and_defaults_missing() {
        for k in [PolicyKind::Single, PolicyKind::PortfolioRace] {
            let json = serde_json::to_string(&k).unwrap();
            let back: PolicyKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, k);
        }
        for b in [BudgetSource::Manifest, BudgetSource::Adaptive] {
            let json = serde_json::to_string(&b).unwrap();
            let back: BudgetSource = serde_json::from_str(&json).unwrap();
            assert_eq!(back, b);
        }
    }
}
