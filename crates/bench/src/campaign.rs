//! The experiment-campaign engine: declarative manifests, sharded
//! resumable execution, and table reports over the record store.
//!
//! The paper's evaluation is a set of *campaigns* — thousands of generated
//! instances swept over utilization × task-count × processor-count grids
//! and reduced to Tables I–IV. This module turns that from bespoke
//! per-binary loops into one engine:
//!
//! 1. a [`Manifest`] (TOML subset) declares the scenario grid and budgets;
//! 2. [`crate::shard::plan_shards`] splits the grid into content-hashed
//!    work units;
//! 3. [`run_fresh`]/[`resume`] execute shards on a self-scheduling worker
//!    pool (workers pull the next pending shard, so load balances without
//!    a coordinator) with per-shard budgets and cooperative cancellation
//!    via [`CancelGroup`];
//! 4. completed shards stream to the JSONL record store
//!    ([`crate::sink`]); a killed campaign resumes exactly where it
//!    stopped, deduping replayed shards by hash;
//! 5. [`report`] reduces the record store to the paper's tables, and every
//!    invocation emits a machine-readable `BENCH_<name>.json` [`Summary`]
//!    that seeds the perf trajectory ([`gate`] compares two of them in
//!    CI).

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mgrts_core::engine::{CancelGroup, SolverSpec};
use mgrts_obs::flight;
use rt_gen::{derive_stream_seed, ProblemGenerator, RateMatrixGen};

use crate::policy::{AdaptiveSpec, ExecutionPolicy, PolicyMode, PolicySpec};
use crate::runner::InstanceOutcome;
use crate::shard::{plan_shards, Cell, CellM, PlanShape, Shard};
use crate::sink::{
    canonical_export, load_records, CampaignRecord, LocalStore, RecordStore, CANONICAL_FILE,
    CHECKPOINT_FILE, RECORDS_FILE,
};
use crate::tables;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Campaign-level failures.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Manifest syntax or semantics.
    Manifest(String),
    /// Record-store inconsistency (wrong manifest, impossible band, …).
    Store(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign I/O: {e}"),
            CampaignError::Manifest(e) => write!(f, "manifest: {e}"),
            CampaignError::Store(e) => write!(f, "record store: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// A declarative campaign: scenario grid × budgets × solver roster.
///
/// The on-disk format is a TOML subset (two tables, scalar and single-line
/// array values, `#` comments):
///
/// ```toml
/// [campaign]
/// name = "smoke"
/// seed = 2009
/// time_limit_ms = 250        # per-run wall-clock budget
/// instances_per_cell = 40
/// shard_size = 12            # runs per shard (checkpoint granularity)
/// # max_shard_ms = 60000     # optional per-shard wall allowance
///
/// [grid]
/// n = [10]
/// m = [5]                    # integers or "auto" (m = ⌈U⌉)
/// t_max = [7]
/// utilization = ["*"]        # "*" or "lo..hi" bands
/// hetero = [false]
/// solvers = ["csp1", "csp2", "csp2-rm", "csp2-dm", "csp2-tc", "csp2-dc"]
///
/// [policy]                   # optional; defaults to mode = "single"
/// mode = "portfolio-race"    # race the roster per instance
/// adaptive_quantile = 0.9    # cap budgets at the p90 of recorded times
/// adaptive_min_samples = 8   # decided samples per cell before it engages
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (`BENCH_<name>.json`).
    pub name: String,
    /// Master seed; every cell samples its instance stream from it.
    pub seed: u64,
    /// Per-run wall-clock budget.
    pub time_limit: Duration,
    /// Instances per grid cell.
    pub instances_per_cell: u64,
    /// Runs per shard — the checkpoint granularity.
    pub shard_size: usize,
    /// Optional per-shard wall allowance; runs beyond it are classified as
    /// overruns (trades canonical-export determinism for bounded shards).
    pub max_shard: Option<Duration>,
    /// Rejection-sampling scan cap for utilization bands.
    pub band_scan_limit: u64,
    /// The expanded scenario grid, in canonical (n, m, t_max, band,
    /// hetero) nesting order.
    pub cells: Vec<Cell>,
    /// Solver roster; every instance runs once per entry (`single`
    /// policy) or races the whole roster once (`portfolio-race`).
    pub roster: Vec<SolverSpec>,
    /// Execution policy (the optional `[policy]` manifest section): what
    /// runs per unit, and with what budget. The default — single solver,
    /// manifest budgets — keeps pre-policy fingerprints byte-identical.
    pub policy: PolicySpec,
}

/// Parsed value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum TomlVal {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    Array(Vec<TomlVal>),
}

fn parse_scalar(s: &str) -> Result<TomlVal, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(format!("unterminated string: {s}"));
        };
        if inner.contains('"') {
            return Err(format!("embedded quote in string: {s}"));
        }
        return Ok(TomlVal::Str(inner.to_string()));
    }
    match s {
        "true" => return Ok(TomlVal::Bool(true)),
        "false" => return Ok(TomlVal::Bool(false)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(TomlVal::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(TomlVal::Float(f));
    }
    Err(format!("unparseable value: {s}"))
}

fn parse_value(s: &str) -> Result<TomlVal, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(format!("unterminated array: {s}"));
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(TomlVal::Array(Vec::new()));
        }
        let items = inner
            .split(',')
            .map(parse_scalar)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(TomlVal::Array(items));
    }
    parse_scalar(s)
}

/// Strip a trailing comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

impl Manifest {
    /// Parse a manifest from TOML-subset text.
    pub fn parse(text: &str) -> Result<Manifest, CampaignError> {
        let err = |m: String| CampaignError::Manifest(m);
        let mut section = String::new();
        let mut entries: Vec<(String, TomlVal)> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(format!("line {}: malformed section", ln + 1)));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("line {}: expected `key = value`", ln + 1)));
            };
            let key = format!("{section}.{}", key.trim());
            let value = parse_value(value).map_err(|e| err(format!("line {}: {e}", ln + 1)))?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(err(format!("line {}: duplicate key {key}", ln + 1)));
            }
            entries.push((key, value));
        }
        let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let req = |key: &str| get(key).ok_or_else(|| err(format!("missing key {key}")));
        let as_u64 = |key: &str, v: &TomlVal| match v {
            TomlVal::Int(i) if *i >= 0 => Ok(*i as u64),
            _ => Err(err(format!("{key}: expected a non-negative integer"))),
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, CampaignError> {
            get(key).map(|v| as_u64(key, v)).transpose()
        };
        let arr = |key: &str| -> Result<&[TomlVal], CampaignError> {
            match req(key)? {
                TomlVal::Array(items) if !items.is_empty() => Ok(items),
                TomlVal::Array(_) => Err(err(format!("{key}: must not be empty"))),
                _ => Err(err(format!("{key}: expected an array"))),
            }
        };

        let name = match req("campaign.name")? {
            TomlVal::Str(s)
                if !s.is_empty()
                    && s.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') =>
            {
                s.clone()
            }
            _ => return Err(err("campaign.name: expected a [A-Za-z0-9_-]+ string".into())),
        };
        let seed = opt_u64("campaign.seed")?.unwrap_or(2009);
        let time_limit = Duration::from_millis(opt_u64("campaign.time_limit_ms")?.unwrap_or(1000));
        let instances_per_cell = opt_u64("campaign.instances_per_cell")?
            .filter(|&c| c > 0)
            .ok_or_else(|| err("campaign.instances_per_cell: required, > 0".into()))?;
        let shard_size = opt_u64("campaign.shard_size")?.unwrap_or(32).max(1) as usize;
        let max_shard = opt_u64("campaign.max_shard_ms")?.map(Duration::from_millis);
        let band_scan_limit = opt_u64("campaign.band_scan_limit")?.unwrap_or(200_000);

        let ns = arr("grid.n")?
            .iter()
            .map(|v| as_u64("grid.n", v).map(|n| n as usize))
            .collect::<Result<Vec<_>, _>>()?;
        let ms = arr("grid.m")?
            .iter()
            .map(|v| match v {
                TomlVal::Int(i) if *i > 0 => Ok(CellM::Fixed(*i as usize)),
                TomlVal::Str(s) if s == "auto" => Ok(CellM::Auto),
                _ => Err(err(
                    "grid.m: entries are positive integers or \"auto\"".into()
                )),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let t_maxes = arr("grid.t_max")?
            .iter()
            .map(|v| as_u64("grid.t_max", v))
            .collect::<Result<Vec<_>, _>>()?;
        let bands = match get("grid.utilization") {
            None => vec![None],
            Some(TomlVal::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|v| match v {
                    TomlVal::Str(s) if s == "*" => Ok(None),
                    TomlVal::Str(s) => {
                        let (lo, hi) = s.split_once("..").ok_or_else(|| {
                            err(format!("grid.utilization: `{s}` is not `lo..hi`"))
                        })?;
                        let lo: f64 = lo.trim().parse().map_err(|_| {
                            err(format!("grid.utilization: bad lower bound in `{s}`"))
                        })?;
                        let hi: f64 = hi.trim().parse().map_err(|_| {
                            err(format!("grid.utilization: bad upper bound in `{s}`"))
                        })?;
                        if lo >= hi || lo.is_nan() || hi.is_nan() {
                            return Err(err(format!("grid.utilization: empty band `{s}`")));
                        }
                        Ok(Some((lo, hi)))
                    }
                    _ => Err(err("grid.utilization: entries are strings".into())),
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(err("grid.utilization: expected an array".into())),
        };
        let heteros = match get("grid.hetero") {
            None => vec![false],
            Some(TomlVal::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|v| match v {
                    TomlVal::Bool(b) => Ok(*b),
                    _ => Err(err("grid.hetero: entries are booleans".into())),
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(err("grid.hetero: expected an array".into())),
        };
        let roster = arr("grid.solvers")?
            .iter()
            .map(|v| match v {
                TomlVal::Str(s) => s.parse::<SolverSpec>().map_err(err),
                _ => Err(err("grid.solvers: entries are strings".into())),
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Records are keyed by (cell, instance, solver); a duplicated
        // roster entry would run twice but collapse to one record.
        if let Some(dup) = roster
            .iter()
            .enumerate()
            .find(|(i, s)| roster[..*i].contains(s))
        {
            return Err(err(format!("grid.solvers: duplicate entry `{}`", *dup.1)));
        }

        let mode = match get("policy.mode") {
            None => PolicyMode::Single,
            Some(TomlVal::Str(s)) => s.parse::<PolicyMode>().map_err(err)?,
            Some(_) => return Err(err("policy.mode: expected a string".into())),
        };
        let adaptive = match get("policy.adaptive_quantile") {
            None => {
                if get("policy.adaptive_min_samples").is_some() {
                    return Err(err(
                        "policy.adaptive_min_samples requires policy.adaptive_quantile".into(),
                    ));
                }
                None
            }
            Some(v) => {
                let quantile = match v {
                    TomlVal::Float(f) => *f,
                    TomlVal::Int(i) => *i as f64,
                    _ => return Err(err("policy.adaptive_quantile: expected a number".into())),
                };
                let min_samples = opt_u64("policy.adaptive_min_samples")?
                    .unwrap_or(AdaptiveSpec::DEFAULT_MIN_SAMPLES);
                Some(
                    AdaptiveSpec::new(quantile, min_samples)
                        .map_err(|e| err(format!("policy.adaptive_quantile: {e}")))?,
                )
            }
        };
        let policy = PolicySpec { mode, adaptive };

        let mut cells = Vec::new();
        for &n in &ns {
            for &m in &ms {
                for &t_max in &t_maxes {
                    for &band in &bands {
                        for &hetero in &heteros {
                            if let CellM::Fixed(m) = m {
                                if m == 0 {
                                    return Err(err("grid.m: m must be ≥ 1".into()));
                                }
                            }
                            if n == 0 || t_max == 0 {
                                return Err(err("grid.n/t_max: must be ≥ 1".into()));
                            }
                            cells.push(Cell {
                                n,
                                m,
                                t_max,
                                band,
                                hetero,
                            });
                        }
                    }
                }
            }
        }

        Ok(Manifest {
            name,
            seed,
            time_limit,
            instances_per_cell,
            shard_size,
            max_shard,
            band_scan_limit,
            cells,
            roster,
            policy,
        })
    }

    /// Load from a file.
    pub fn load(path: &Path) -> Result<Manifest, CampaignError> {
        Manifest::parse(&std::fs::read_to_string(path)?)
    }

    /// Canonical TOML re-serialization — what `run` stores in the record
    /// store so `resume`/`report` are self-contained. Note the grid is
    /// stored in expanded per-cell form: parsing it back yields the same
    /// cells (expansion is idempotent for single-value axes, so the
    /// canonical form lists one axis entry per original combination only
    /// when axes were singletons; to stay exact we store each axis's
    /// de-duplicated values, which regenerate the identical product).
    #[must_use]
    pub fn to_toml(&self) -> String {
        fn uniq<T: PartialEq + Clone>(items: impl Iterator<Item = T>) -> Vec<T> {
            let mut out = Vec::new();
            for x in items {
                if !out.contains(&x) {
                    out.push(x);
                }
            }
            out
        }
        let ns = uniq(self.cells.iter().map(|c| c.n));
        let ms = uniq(self.cells.iter().map(|c| c.m));
        let t_maxes = uniq(self.cells.iter().map(|c| c.t_max));
        let bands = uniq(self.cells.iter().map(|c| c.band));
        let heteros = uniq(self.cells.iter().map(|c| c.hetero));
        let join = |items: Vec<String>| items.join(", ");
        let mut out = String::from("[campaign]\n");
        out.push_str(&format!("name = \"{}\"\n", self.name));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!(
            "time_limit_ms = {}\n",
            self.time_limit.as_millis()
        ));
        out.push_str(&format!(
            "instances_per_cell = {}\n",
            self.instances_per_cell
        ));
        out.push_str(&format!("shard_size = {}\n", self.shard_size));
        if let Some(d) = self.max_shard {
            out.push_str(&format!("max_shard_ms = {}\n", d.as_millis()));
        }
        out.push_str(&format!("band_scan_limit = {}\n", self.band_scan_limit));
        out.push_str("\n[grid]\n");
        out.push_str(&format!(
            "n = [{}]\n",
            join(ns.iter().map(ToString::to_string).collect())
        ));
        out.push_str(&format!(
            "m = [{}]\n",
            join(
                ms.iter()
                    .map(|m| match m {
                        CellM::Fixed(m) => m.to_string(),
                        CellM::Auto => "\"auto\"".to_string(),
                    })
                    .collect()
            )
        ));
        out.push_str(&format!(
            "t_max = [{}]\n",
            join(t_maxes.iter().map(ToString::to_string).collect())
        ));
        out.push_str(&format!(
            "utilization = [{}]\n",
            join(
                bands
                    .iter()
                    .map(|b| match b {
                        None => "\"*\"".to_string(),
                        Some((lo, hi)) => format!("\"{lo}..{hi}\""),
                    })
                    .collect()
            )
        ));
        out.push_str(&format!(
            "hetero = [{}]\n",
            join(heteros.iter().map(ToString::to_string).collect())
        ));
        out.push_str(&format!(
            "solvers = [{}]\n",
            join(self.roster.iter().map(|s| format!("\"{s}\"")).collect())
        ));
        if !self.policy.is_default() {
            out.push_str("\n[policy]\n");
            out.push_str(&format!("mode = \"{}\"\n", self.policy.mode));
            if let Some(a) = &self.policy.adaptive {
                out.push_str(&format!("adaptive_quantile = {}\n", a.quantile));
                out.push_str(&format!("adaptive_min_samples = {}\n", a.min_samples));
            }
        }
        out
    }

    /// Canonical fingerprint over everything that determines the work —
    /// the prefix of every shard's content hash. The campaign *name* is
    /// deliberately excluded: two differently-named campaigns over the
    /// same grid do the same work, share shard hashes, and gate against
    /// each other. A non-default `[policy]` appends its tag, so changing
    /// the policy re-shards; the default appends nothing, keeping
    /// pre-policy stores and committed baselines valid.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut fp = self.workload_fingerprint();
        if !self.policy.is_default() {
            fp.push_str(&format!(";policy={}", self.policy.tag()));
        }
        fp
    }

    /// The policy-independent part of the fingerprint: the generated
    /// workload itself. Two campaigns with equal workload fingerprints
    /// solve the same instances under the same roster and global limit —
    /// the precondition of the cross-policy [`parity`] comparison.
    #[must_use]
    pub fn workload_fingerprint(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(|c| c.tag()).collect();
        let roster: Vec<&str> = self.roster.iter().map(|s| s.name()).collect();
        format!(
            "seed={};limit_ms={};per_cell={};shard={};max_shard_ms={};scan={};cells=[{}];roster=[{}]",
            self.seed,
            self.time_limit.as_millis(),
            self.instances_per_cell,
            self.shard_size,
            self.max_shard.map_or("none".to_string(), |d| d.as_millis().to_string()),
            self.band_scan_limit,
            cells.join(","),
            roster.join(","),
        )
    }

    /// The Tables I–III workload as a campaign: one cell with the paper's
    /// m = 5, n = 10, Tmax = 7 and the six-solver roster. Both the
    /// `table1`/`table3` binaries and the committed smoke manifest reduce
    /// to this constructor, which is what makes `mgrts bench campaign run`
    /// + `report table1` reproduce the binary byte-for-byte.
    #[must_use]
    pub fn table1(name: &str, instances: u64, seed: u64, time_limit: Duration) -> Manifest {
        Manifest {
            name: name.to_string(),
            seed,
            time_limit,
            instances_per_cell: instances,
            shard_size: 24,
            max_shard: None,
            band_scan_limit: 200_000,
            cells: vec![Cell {
                n: 10,
                m: CellM::Fixed(5),
                t_max: 7,
                band: None,
                hetero: false,
            }],
            roster: SolverSpec::TABLE1_ROSTER.to_vec(),
            policy: PolicySpec::default(),
        }
    }

    /// The Table IV workload as a campaign: one cell per n with Tmax = 15,
    /// m = ⌈U⌉, solved by CSP1 and CSP2+(D-C).
    #[must_use]
    pub fn table4(ns: &[usize], instances: u64, seed: u64, time_limit: Duration) -> Manifest {
        Manifest {
            name: "table4".to_string(),
            seed,
            time_limit,
            instances_per_cell: instances,
            shard_size: 4,
            max_shard: None,
            band_scan_limit: 200_000,
            cells: ns
                .iter()
                .map(|&n| Cell {
                    n,
                    m: CellM::Auto,
                    t_max: 15,
                    band: None,
                    hetero: false,
                })
                .collect(),
            roster: vec![
                SolverSpec::Csp1,
                SolverSpec::Csp2(mgrts_core::heuristics::TaskOrder::DeadlineMinusWcet),
            ],
            policy: PolicySpec::default(),
        }
    }

    /// The unit-stream shape of this campaign's policy.
    #[must_use]
    pub fn plan_shape(&self) -> PlanShape {
        match self.policy.mode {
            PolicyMode::Single => PlanShape::PerSolver,
            PolicyMode::PortfolioRace => PlanShape::PerInstance,
        }
    }

    /// The campaign's deterministic shard plan.
    #[must_use]
    pub fn plan(&self) -> Vec<Shard> {
        plan_shards(
            &self.cells,
            self.instances_per_cell,
            &self.roster,
            self.shard_size,
            &self.fingerprint(),
            self.plan_shape(),
        )
    }

    /// Total run units in the campaign (racing policies collapse the
    /// solver axis into one unit per instance).
    #[must_use]
    pub fn total_runs(&self) -> u64 {
        self.cells.len() as u64
            * self.instances_per_cell
            * self.policy.units_per_instance(self.roster.len()) as u64
    }

    /// Build this campaign's execution policy over a snapshot of `store`.
    pub fn build_policy(
        &self,
        store: &dyn RecordStore,
    ) -> Result<Box<dyn ExecutionPolicy>, CampaignError> {
        self.policy.build(self, store)
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Execution knobs orthogonal to the manifest (they do not change the
/// work, only how fast / how much of it runs this invocation).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads.
    pub threads: usize,
    /// Progress lines on stderr.
    pub progress: bool,
    /// Stop (resumably) after committing this many shards this invocation.
    pub max_shards: Option<u64>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            progress: false,
            max_shards: None,
        }
    }
}

/// What one `run`/`resume` invocation accomplished.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The emitted summary (also written to `BENCH_<name>.json`).
    pub summary: Summary,
    /// Shards committed by this invocation.
    pub shards_committed: u64,
}

/// Start a campaign from scratch in `out_dir`: clears any previous record
/// store, writes the canonical manifest, executes every shard.
pub fn run_fresh(
    manifest: &Manifest,
    out_dir: &Path,
    opts: &CampaignOptions,
    cancel: &CancelGroup,
) -> Result<CampaignOutcome, CampaignError> {
    // The store must be self-contained: the canonical manifest it carries
    // has to regenerate *this* campaign, or `resume`/`report` would
    // operate on different work. A programmatic Manifest whose cells are
    // not a full axis product cannot round-trip — reject it up front
    // rather than strand the store.
    let round_trip = Manifest::parse(&manifest.to_toml())?;
    if round_trip != *manifest {
        return Err(CampaignError::Manifest(
            "manifest does not survive canonical re-serialization (the cell list \
             must be the full cartesian product of its axis values)"
                .into(),
        ));
    }
    // Clearing unlinks segment files attached workers hold open.
    crate::queue::ensure_quiesced(out_dir, "run fresh")?;
    let store = LocalStore::open(out_dir)?;
    store.clear()?;
    store.write_manifest(&manifest.to_toml())?;
    execute(manifest, &store, opts, cancel, HashSet::new())
}

/// Resume the campaign recorded in `out_dir`: reload its manifest, skip
/// every checkpointed shard, run the rest.
pub fn resume(
    out_dir: &Path,
    opts: &CampaignOptions,
    cancel: &CancelGroup,
) -> Result<CampaignOutcome, CampaignError> {
    let store = LocalStore::open(out_dir)?;
    let manifest = Manifest::parse(&store.read_manifest()?)?;
    let done = store.done_shards()?;
    let planned: HashSet<String> = manifest.plan().into_iter().map(|s| s.hash).collect();
    if let Some(stranger) = done.iter().find(|h| !planned.contains(*h)) {
        return Err(CampaignError::Store(format!(
            "checkpointed shard {stranger} is not part of this manifest's plan \
             (the store was produced by a different manifest); use `run` to start fresh"
        )));
    }
    execute(&manifest, &store, opts, cancel, done)
}

/// The in-process executor, written against the [`RecordStore`] seam: the
/// distributed queue ([`crate::queue`]) drives the very same
/// [`run_shard`] + commit path, it only replaces the self-scheduling pool
/// with lease claims.
fn execute(
    manifest: &Manifest,
    store: &dyn RecordStore,
    opts: &CampaignOptions,
    cancel: &CancelGroup,
    done: HashSet<String>,
) -> Result<CampaignOutcome, CampaignError> {
    let started = Instant::now();
    // The policy snapshot: single/race need only the manifest; the
    // adaptive wrapper additionally reads recorded solve times (empty
    // after run_fresh's clear ⇒ manifest fallback; populated on resume ⇒
    // quantile allowances engage).
    let policy = manifest.build_policy(store)?;
    let shards = manifest.plan();
    let pending: Vec<&Shard> = shards.iter().filter(|s| !done.contains(&s.hash)).collect();
    let todo: &[&Shard] = match opts.max_shards {
        Some(k) => &pending[..(k as usize).min(pending.len())],
        None => &pending,
    };

    let sink = Mutex::new(store.open_writer("")?);
    let next = Mutex::new(0usize);
    let committed = Mutex::new(0u64);
    let failure: Mutex<Option<CampaignError>> = Mutex::new(None);
    let recorder = mgrts_obs::FlightRecorder::new(256);

    crossbeam::scope(|scope| {
        for w in 0..opts.threads.max(1) {
            let recorder = &recorder;
            let (next, sink, committed, failure) = (&next, &sink, &committed, &failure);
            let (policy, shards, done) = (&policy, &shards, &done);
            scope.spawn(move |_| {
                let _ring = flight::install(recorder, &format!("campaign-worker-{w}"));
                loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let idx = {
                        let mut n = next.lock();
                        if *n >= todo.len() {
                            break;
                        }
                        let i = *n;
                        *n += 1;
                        i
                    };
                    let shard = todo[idx];
                    flight::event(
                        "shard.claim",
                        &shard.hash,
                        &format!("shard {} of {}", shard.index, todo.len()),
                    );
                    // Re-snapshot store-dependent policy state (adaptive
                    // allowances) so this shard's budgets see every record
                    // committed so far, not just the start-up snapshot.
                    if let Err(e) = policy.refresh(store) {
                        *failure.lock() = Some(e);
                        cancel.cancel_all();
                        break;
                    }
                    // Supervise the shard: a panicking solver is retried a
                    // few times (transient chaos heals), then fails the
                    // campaign with the shard named — never silently skips
                    // units or takes the pool down mid-commit.
                    let mut strikes = 0u32;
                    let supervised = loop {
                        match catch_unwind(AssertUnwindSafe(|| {
                            run_shard(manifest, &**policy, shard, cancel)
                        })) {
                            Ok(r) => break Ok(r),
                            Err(payload) => {
                                strikes += 1;
                                let reason = panic_reason(payload.as_ref());
                                mgrts_obs::global()
                                    .counter(
                                        "mgrts_worker_panics_total",
                                        "Shard executions that panicked and were caught by \
                                         the worker supervisor",
                                    )
                                    .inc();
                                flight::event("shard.panic", &shard.hash, &reason);
                                if strikes >= crate::queue::PARK_AFTER {
                                    break Err(reason);
                                }
                            }
                        }
                    };
                    let supervised = match supervised {
                        Ok(r) => r,
                        Err(reason) => {
                            *failure.lock() = Some(CampaignError::Store(format!(
                                "shard {} (index {}) panicked {strikes} times, giving up: \
                                 {reason}",
                                shard.hash, shard.index
                            )));
                            cancel.cancel_all();
                            break;
                        }
                    };
                    match supervised {
                        Ok(Some(records)) => {
                            if let Err(e) = sink.lock().commit_shard(shard, &records) {
                                *failure.lock() = Some(CampaignError::Io(e));
                                cancel.cancel_all();
                                break;
                            }
                            let mut c = committed.lock();
                            *c += 1;
                            if opts.progress {
                                eprintln!(
                                    "  shard {}/{} committed ({} this run, {} units)",
                                    done.len() as u64 + *c,
                                    shards.len(),
                                    *c,
                                    records.len(),
                                );
                            }
                        }
                        Ok(None) => break, // cancelled mid-shard: leave it for resume
                        Err(e) => {
                            *failure.lock() = Some(e);
                            cancel.cancel_all();
                            break;
                        }
                    }
                }
            });
        }
    })
    .expect("campaign worker panicked");

    // A cancelled campaign leaves its merged timeline behind: which
    // worker held which shard when the stop landed.
    if cancel.is_cancelled() {
        let dump = recorder.dump();
        if !dump.is_empty() {
            let _ = store.put_artifact("flight-campaign.jsonl", &dump);
        }
    }

    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    let shards_committed = committed.into_inner();
    let done_after = store.done_shards()?;
    let records = store.load_records()?;
    let summary = summarize(
        manifest,
        &records,
        shards.len() as u64,
        done_after.len() as u64,
        started.elapsed().as_millis() as u64,
    );
    store.put_artifact(
        &format!("BENCH_{}.json", manifest.name),
        &serde_json::to_string_pretty(&summary).map_err(std::io::Error::other)?,
    )?;
    Ok(CampaignOutcome {
        summary,
        shards_committed,
    })
}

/// Human-readable reason from a caught panic payload (`&str` / `String`
/// payloads verbatim, anything else a placeholder).
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run every unit of one shard through the campaign's execution policy.
/// Returns `Ok(None)` when cancellation preempted the shard (nothing is
/// committed; resume re-runs it whole). Shared verbatim by the in-process
/// executor and the distributed queue workers — a shard's records depend
/// only on the manifest + policy, never on who runs it.
pub(crate) fn run_shard(
    manifest: &Manifest,
    policy: &dyn ExecutionPolicy,
    shard: &Shard,
    cancel: &CancelGroup,
) -> Result<Option<Vec<CampaignRecord>>, CampaignError> {
    let token = cancel.register();
    let mut sp = flight::span("shard.run", &shard.hash);
    let deadline = manifest.max_shard.map(|d| Instant::now() + d);
    let mut records = Vec::with_capacity(shard.units.len());
    // Units are ordered (cell, instance, solver), so the whole roster of
    // one instance is consecutive — generate the instance once and reuse
    // it (for banded cells generation is a rejection *scan*, not a lookup).
    let mut cached: Option<((usize, u64), rt_gen::Problem)> = None;
    for unit in &shard.units {
        if token.is_cancelled() {
            sp.set_detail("cancelled");
            return Ok(None);
        }
        let cell = &manifest.cells[unit.cell];
        // For racing policies the plan pins unit.solver to 0, so this is
        // the deterministic roster-head placeholder race records carry.
        let solver = manifest.roster[unit.solver];
        let p = match &cached {
            Some((key, p)) if *key == (unit.cell, unit.instance) => p.clone(),
            _ => {
                let gen = ProblemGenerator::new(cell.generator_config(), manifest.seed);
                let p = match cell.band {
                    None => gen.nth(unit.instance),
                    Some((lo, hi)) => gen
                        .nth_in_band(unit.instance, lo, hi, manifest.band_scan_limit)
                        .ok_or_else(|| {
                            CampaignError::Store(format!(
                                "cell {}: fewer than {} instances in utilization band \
                                 [{lo}, {hi}) within the first {} samples",
                                cell.tag(),
                                unit.instance + 1,
                                manifest.band_scan_limit
                            ))
                        })?,
                };
                cached = Some(((unit.cell, unit.instance), p.clone()));
                p
            }
        };
        let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        let (budget, budget_source) = policy.unit_budget(unit.cell);
        let budget = budget.capped(remaining);
        let platform = cell.hetero.then(|| {
            RateMatrixGen::default().generate(
                p.taskset.len(),
                p.m,
                derive_stream_seed(p.seed, "platform"),
            )
        });
        let exec = policy.execute(&p, platform.as_ref(), unit.solver, &budget, &token);
        if exec.outcome == InstanceOutcome::Cancelled {
            // Don't commit half-truths: a cancelled unit means the shard
            // must re-run on resume.
            sp.set_detail("cancelled");
            return Ok(None);
        }
        records.push(CampaignRecord {
            shard: shard.hash.clone(),
            cell: unit.cell,
            instance: unit.instance,
            global_instance: unit.cell as u64 * manifest.instances_per_cell + unit.instance,
            solver,
            outcome: exec.outcome,
            time_us: exec.time_us,
            ratio: p.utilization_ratio(),
            filtered: p.filtered_out(),
            m: p.m,
            n: cell.n,
            t_max: cell.t_max,
            hetero: cell.hetero,
            hyperperiod: p.taskset.hyperperiod().unwrap_or(0),
            seed: p.seed,
            policy: Some(policy.kind()),
            winner: exec.winner,
            budget_source: Some(budget_source),
            cancel_latency_us: exec.cancel_latency_us,
            backends: exec.backends,
            search: exec.search,
        });
    }
    sp.set_detail(&format!("{} units", records.len()));
    Ok(Some(records))
}

// ---------------------------------------------------------------------------
// Summary + perf gate
// ---------------------------------------------------------------------------

/// Per-solver aggregate of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverSummary {
    /// Total runs.
    pub runs: u64,
    /// Feasible schedules found (verified).
    pub solved: u64,
    /// Infeasibility proofs.
    pub infeasible: u64,
    /// Wall-clock overruns.
    pub overrun: u64,
    /// Encoding-size-guard hits.
    pub too_large: u64,
    /// Runs without a decision procedure for the cell's platform.
    pub unsupported: u64,
    /// Overruns / runs.
    pub timeout_rate: f64,
    /// Mean wall-clock per run, microseconds.
    pub mean_time_us: u64,
}

/// The machine-readable `BENCH_<name>.json` artifact: the perf-trajectory
/// sample a campaign invocation leaves behind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Campaign name.
    pub campaign: String,
    /// Manifest fingerprint (ties the summary to the exact work).
    pub fingerprint: String,
    /// Did every shard commit?
    pub completed: bool,
    /// Shards in the plan.
    pub shards_total: u64,
    /// Shards committed so far (across invocations).
    pub shards_done: u64,
    /// Believable records in the store.
    pub records: u64,
    /// Wall-clock of this invocation, milliseconds.
    pub wall_ms: u64,
    /// Per-solver aggregates, in roster order.
    pub solvers: Vec<(String, SolverSummary)>,
}

/// Reduce a record set to its [`Summary`]. Under the `single` policy the
/// rows are the roster solvers; a racing campaign collapses to one
/// `portfolio` row (each unit ran the whole roster — per-backend splits
/// live in `report winners`, not the summary).
#[must_use]
pub fn summarize(
    manifest: &Manifest,
    records: &[CampaignRecord],
    shards_total: u64,
    shards_done: u64,
    wall_ms: u64,
) -> Summary {
    let aggregate = |runs: &[&CampaignRecord]| {
        let count = |o: InstanceOutcome| runs.iter().filter(|r| r.outcome == o).count() as u64;
        let total = runs.len() as u64;
        let overrun = count(InstanceOutcome::Overrun);
        let mean_time_us = if runs.is_empty() {
            0
        } else {
            runs.iter().map(|r| r.time_us).sum::<u64>() / total
        };
        SolverSummary {
            runs: total,
            solved: count(InstanceOutcome::Solved),
            infeasible: count(InstanceOutcome::ProvedInfeasible),
            overrun,
            too_large: count(InstanceOutcome::TooLarge),
            unsupported: count(InstanceOutcome::Unsupported),
            timeout_rate: if total == 0 {
                0.0
            } else {
                overrun as f64 / total as f64
            },
            mean_time_us,
        }
    };
    let solvers = match manifest.policy.mode {
        PolicyMode::Single => manifest
            .roster
            .iter()
            .map(|&spec| {
                let runs: Vec<&CampaignRecord> =
                    records.iter().filter(|r| r.solver == spec).collect();
                (spec.name().to_string(), aggregate(&runs))
            })
            .collect(),
        PolicyMode::PortfolioRace => {
            let all: Vec<&CampaignRecord> = records.iter().collect();
            vec![("portfolio".to_string(), aggregate(&all))]
        }
    };
    Summary {
        campaign: manifest.name.clone(),
        fingerprint: manifest.fingerprint(),
        completed: shards_done == shards_total,
        shards_total,
        shards_done,
        records: records.len() as u64,
        wall_ms,
        solvers,
    }
}

/// Outcome of a perf-gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Did the summary pass the gate?
    pub ok: bool,
    /// Human-readable findings, failures first.
    pub lines: Vec<String>,
}

/// Compare a fresh summary against a committed baseline: fail on a
/// wall-time regression beyond `tolerance` (0.25 = +25%) or on any solver
/// *verdict drift* — decided-count movement not explainable by budget
/// straddles, plus any too-large / unsupported / run-count change. Runs
/// trading places between a decided verdict and Overrun are timing noise
/// and only warn.
#[must_use]
pub fn gate(current: &Summary, baseline: &Summary, tolerance: f64) -> GateReport {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    if current.fingerprint != baseline.fingerprint {
        failures.push(format!(
            "fingerprint mismatch: current `{}` vs baseline `{}` — the gate \
             compares different campaigns",
            current.fingerprint, baseline.fingerprint
        ));
    }
    if !current.completed {
        failures.push("current campaign is incomplete".to_string());
    }
    let allowed = baseline.wall_ms as f64 * (1.0 + tolerance);
    if (current.wall_ms as f64) > allowed {
        failures.push(format!(
            "wall-time regression: {} ms vs baseline {} ms (> +{:.0}%)",
            current.wall_ms,
            baseline.wall_ms,
            tolerance * 100.0
        ));
    } else {
        notes.push(format!(
            "wall time {} ms within budget ({} ms baseline, +{:.0}% allowed)",
            current.wall_ms,
            baseline.wall_ms,
            tolerance * 100.0
        ));
    }
    for (name, base) in &baseline.solvers {
        match current.solvers.iter().find(|(n, _)| n == name) {
            None => failures.push(format!("solver {name} missing from current summary")),
            Some((_, cur)) => {
                // A run whose solve time straddles the budget flips between
                // a decided verdict and Overrun across machines, so raw
                // solved/infeasible counts are timing-dependent. What no
                // amount of timing noise can produce is decided-count
                // movement *beyond* the overrun exchange: every budget
                // straddle moves one decided count and the overrun count by
                // one each, so |Δsolved| + |Δinfeasible| ≤ |Δoverrun|
                // always holds under timing noise, while a genuine verdict
                // flip (Solved↔Infeasible — a soundness bug) violates it.
                let d = |b: u64, c: u64| b.abs_diff(c);
                if d(base.solved, cur.solved) + d(base.infeasible, cur.infeasible)
                    > d(base.overrun, cur.overrun)
                {
                    failures.push(format!(
                        "verdict drift: {name} solved {} → {}, infeasible {} → {} is not \
                         explainable by overrun movement ({} → {})",
                        base.solved,
                        cur.solved,
                        base.infeasible,
                        cur.infeasible,
                        base.overrun,
                        cur.overrun
                    ));
                }
                for (what, b, c) in [
                    ("too_large", base.too_large, cur.too_large),
                    ("unsupported", base.unsupported, cur.unsupported),
                    ("runs", base.runs, cur.runs),
                ] {
                    if b != c {
                        failures.push(format!("verdict drift: {name}.{what} {b} → {c}"));
                    }
                }
                if base.overrun != cur.overrun {
                    notes.push(format!(
                        "note: {name}.overrun {} → {} (timing-dependent, not gated)",
                        base.overrun, cur.overrun
                    ));
                }
            }
        }
    }
    for (name, _) in &current.solvers {
        if !baseline.solvers.iter().any(|(n, _)| n == name) {
            failures.push(format!("solver {name} absent from baseline"));
        }
    }
    let ok = failures.is_empty();
    let mut lines = failures;
    lines.extend(notes);
    GateReport { ok, lines }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Which report to render from a record store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// Tables I & II (overruns by solved partition and by filter).
    Table1,
    /// Table III (instance distribution / mean time by utilization bucket).
    Table3,
    /// Table IV (scaling rows, one per grid cell).
    Table4,
    /// The heterogeneity dimension: per-backend support/verdict counts on
    /// the grid's heterogeneous cells.
    Hetero,
    /// Per-cell winner counts of a portfolio-race campaign (the paper's
    /// Table I as a single racing campaign).
    Winners,
    /// Per-cell aggregated search telemetry (decisions, backtracks,
    /// propagator activity) from the records' `search` blocks.
    Profile,
    /// The `BENCH_<name>.json` summary, as text.
    Summary,
}

impl std::str::FromStr for ReportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "table1" | "table2" => ReportKind::Table1,
            "table3" => ReportKind::Table3,
            "table4" => ReportKind::Table4,
            "hetero" => ReportKind::Hetero,
            "winners" => ReportKind::Winners,
            "profile" => ReportKind::Profile,
            "summary" => ReportKind::Summary,
            other => {
                return Err(format!(
                "unknown report `{other}` (expected table1|table3|table4|hetero|winners|profile|summary)"
            ))
            }
        })
    }
}

/// Render a report over a record store directory.
pub fn report(out_dir: &Path, kind: ReportKind) -> Result<String, CampaignError> {
    report_store(&LocalStore::open(out_dir)?, kind)
}

/// Render a report over any [`RecordStore`].
///
/// The per-solver paper tables (`table1`/`table3`/`table4`) are refused
/// over a portfolio-race store: race units carry a deterministic
/// placeholder in their `solver` field, so grouping by it would silently
/// attribute every unit to the roster head. `report winners` is the
/// race-aware view.
pub fn report_store(store: &dyn RecordStore, kind: ReportKind) -> Result<String, CampaignError> {
    let manifest = Manifest::parse(&store.read_manifest()?)?;
    if manifest.policy.mode == PolicyMode::PortfolioRace
        && matches!(
            kind,
            ReportKind::Table1 | ReportKind::Table3 | ReportKind::Table4
        )
    {
        return Err(CampaignError::Store(format!(
            "store {} was produced by a portfolio-race policy; race units carry a \
             placeholder solver, so the per-solver paper tables would misattribute \
             every unit to the roster head — use `report winners` instead",
            manifest.name
        )));
    }
    let records = store.load_records()?;
    Ok(match kind {
        ReportKind::Table1 => report_table1(&manifest, &records),
        ReportKind::Table3 => report_table3(&manifest, &records),
        ReportKind::Table4 => report_table4(&manifest, &records),
        ReportKind::Hetero => report_hetero(&manifest, &records),
        ReportKind::Winners => report_winners(&manifest, &records),
        ReportKind::Profile => report_profile(&manifest, &records),
        ReportKind::Summary => {
            let done = store.done_shards()?;
            let shards = manifest.plan().len() as u64;
            let summary = summarize(&manifest, &records, shards, done.len() as u64, 0);
            render_summary(&summary)
        }
    })
}

/// Per-cell aggregated search telemetry: merge every record's `search`
/// block within each grid cell. Works over any store — single, race
/// (the winner's telemetry) and pre-telemetry segments (counted but
/// excluded) alike.
#[must_use]
pub fn report_profile(manifest: &Manifest, records: &[CampaignRecord]) -> String {
    let mut rows = Vec::new();
    for (ci, cell) in manifest.cells.iter().enumerate() {
        let mut row = tables::ProfileRow {
            cell: cell.tag(),
            with_stats: 0,
            without_stats: 0,
            stats: mgrts_obs::SearchStats::default(),
        };
        for r in records.iter().filter(|r| r.cell == ci) {
            match &r.search {
                Some(st) => {
                    row.with_stats += 1;
                    row.stats.merge(st);
                }
                None => row.without_stats += 1,
            }
        }
        if row.with_stats + row.without_stats > 0 {
            rows.push(row);
        }
    }
    format!(
        "\nPROFILE — aggregated search statistics per grid cell\n\n{}",
        tables::profile(&rows)
    )
}

/// Tables I & II over campaign records — byte-identical to the `table1`
/// binary's stdout for an equivalent manifest. Callers going through
/// [`report_store`] never reach this with a portfolio-race store (the
/// per-solver grouping is meaningless there — see `report winners`).
#[must_use]
pub fn report_table1(manifest: &Manifest, records: &[CampaignRecord]) -> String {
    let runs: Vec<_> = records.iter().map(CampaignRecord::to_run_record).collect();
    let total = manifest.cells.len() as u64 * manifest.instances_per_cell;
    format!(
        "\nTABLE I — number of runs reaching the time limit\n\n{}\n\nTABLE II — unsolved runs reaching the limit, by r > 1 filter\n\n{}",
        tables::table1(&runs, &manifest.roster, total),
        tables::table2(&runs, &manifest.roster)
    )
}

/// Table III over campaign records. (`_manifest` kept for signature
/// symmetry with the other table renderers; Table III has no per-solver
/// columns.)
#[must_use]
pub fn report_table3(_manifest: &Manifest, records: &[CampaignRecord]) -> String {
    let runs: Vec<_> = records.iter().map(CampaignRecord::to_run_record).collect();
    format!(
        "\nTABLE III — instance distribution and mean resolution time by r\n\n{}",
        tables::table3(&runs)
    )
}

/// Table IV over campaign records: one row per grid cell, in manifest
/// order.
#[must_use]
pub fn report_table4(manifest: &Manifest, records: &[CampaignRecord]) -> String {
    let mut rows = Vec::new();
    for (ci, cell) in manifest.cells.iter().enumerate() {
        let cell_records: Vec<&CampaignRecord> = records.iter().filter(|r| r.cell == ci).collect();
        // Per-instance means: each instance appears once per solver; dedup
        // on the instance index.
        let mut seen = HashSet::new();
        let instances: Vec<&&CampaignRecord> = cell_records
            .iter()
            .filter(|r| seen.insert(r.instance))
            .collect();
        if instances.is_empty() {
            continue;
        }
        let mean = |f: &dyn Fn(&CampaignRecord) -> f64| -> f64 {
            instances.iter().map(|r| f(r)).sum::<f64>() / instances.len() as f64
        };
        let per_solver = manifest
            .roster
            .iter()
            .map(|&s| {
                let runs: Vec<&&CampaignRecord> =
                    cell_records.iter().filter(|r| r.solver == s).collect();
                if runs.is_empty() {
                    return (0.0, 0.0, false);
                }
                let solved = runs
                    .iter()
                    .filter(|r| r.outcome == InstanceOutcome::Solved)
                    .count() as f64
                    / runs.len() as f64;
                let t_ms =
                    runs.iter().map(|r| r.time_us as f64).sum::<f64>() / runs.len() as f64 / 1000.0;
                let all_too_large = runs.iter().all(|r| r.outcome == InstanceOutcome::TooLarge);
                (solved, t_ms, all_too_large)
            })
            .collect();
        rows.push(tables::Table4Row {
            n: cell.n,
            mean_r: mean(&|r| r.ratio),
            mean_m: mean(&|r| r.m as f64),
            mean_h: mean(&|r| r.hyperperiod as f64),
            per_solver,
        });
    }
    format!(
        "\nTABLE IV — experiments with a growing number of tasks\n\n{}",
        tables::table4(&rows, &manifest.roster)
    )
}

/// The heterogeneity dimension: per-backend verdict counts — including
/// the `unsupported` column the summary records but no paper table
/// shows — for every heterogeneous grid cell.
#[must_use]
pub fn report_hetero(manifest: &Manifest, records: &[CampaignRecord]) -> String {
    let mut rows = Vec::new();
    for (ci, cell) in manifest.cells.iter().enumerate() {
        if !cell.hetero {
            continue;
        }
        let per_solver = manifest
            .roster
            .iter()
            .map(|&s| {
                let runs: Vec<&CampaignRecord> = records
                    .iter()
                    .filter(|r| r.cell == ci && r.solver == s)
                    .collect();
                let count =
                    |o: InstanceOutcome| runs.iter().filter(|r| r.outcome == o).count() as u64;
                tables::HeteroCounts {
                    runs: runs.len() as u64,
                    solved: count(InstanceOutcome::Solved),
                    infeasible: count(InstanceOutcome::ProvedInfeasible),
                    overrun: count(InstanceOutcome::Overrun),
                    unsupported: count(InstanceOutcome::Unsupported),
                }
            })
            .collect();
        rows.push(tables::HeteroRow {
            cell: cell.tag(),
            per_solver,
        });
    }
    format!(
        "\nHETERO — per-backend support on heterogeneous cells\n\n{}",
        tables::hetero(&rows, &manifest.roster)
    )
}

/// Per-cell winner counts of a racing campaign — which backend won how
/// many units, per grid cell, plus the units nobody decided. This is the
/// paper's Table I comparison restated for a portfolio execution: instead
/// of six sequential columns of overrun counts, one race per instance and
/// a tally of whose verdict arrived first.
#[must_use]
pub fn report_winners(manifest: &Manifest, records: &[CampaignRecord]) -> String {
    let mut rows = Vec::new();
    for (ci, cell) in manifest.cells.iter().enumerate() {
        let cell_records: Vec<&CampaignRecord> = records.iter().filter(|r| r.cell == ci).collect();
        if cell_records.is_empty() {
            continue;
        }
        let wins = manifest
            .roster
            .iter()
            .map(|s| {
                cell_records
                    .iter()
                    .filter(|r| r.winner.as_deref() == Some(s.name()))
                    .count() as u64
            })
            .collect();
        let none = cell_records.iter().filter(|r| r.winner.is_none()).count() as u64;
        rows.push(tables::WinnerRow {
            cell: cell.tag(),
            wins,
            none,
            units: cell_records.len() as u64,
        });
    }
    let mut out = format!(
        "\nWINNERS — per-cell race winners ({} campaign)\n\n{}",
        manifest.policy.tag(),
        tables::winners(&rows, &manifest.roster)
    );
    if manifest.policy.mode != PolicyMode::PortfolioRace {
        out.push_str(
            "\nnote: this store was produced by a non-racing policy; every unit \
             reports no winner\n",
        );
    }
    out
}

/// Cross-policy parity: compare a portfolio-race campaign's per-unit
/// verdicts against a single-solver campaign over the *same workload*
/// (equal [`Manifest::workload_fingerprint`]). The race must agree with
/// the best single-solver verdict of each `(cell, instance)`; exchanges
/// where either side ran out of wall clock are budget straddles and only
/// warn, exactly like [`gate`]. A `Solved`-vs-`ProvedInfeasible` split is
/// a soundness failure.
pub fn parity(race_dir: &Path, single_dir: &Path) -> Result<GateReport, CampaignError> {
    let race_store = LocalStore::open(race_dir)?;
    let single_store = LocalStore::open(single_dir)?;
    let race_manifest = Manifest::parse(&race_store.read_manifest()?)?;
    let single_manifest = Manifest::parse(&single_store.read_manifest()?)?;
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    if race_manifest.workload_fingerprint() != single_manifest.workload_fingerprint() {
        return Err(CampaignError::Store(format!(
            "parity compares one workload under two policies, but the stores hold \
             different workloads:\n  race:   {}\n  single: {}",
            race_manifest.workload_fingerprint(),
            single_manifest.workload_fingerprint()
        )));
    }
    if race_manifest.policy.mode != PolicyMode::PortfolioRace {
        return Err(CampaignError::Store(format!(
            "parity: store {} was not produced by a portfolio-race policy",
            race_dir.display()
        )));
    }
    let race_records = race_store.load_records()?;
    let single_records = single_store.load_records()?;
    // One pass over the (large) single-solver set: per (cell, instance),
    // did any run solve / prove infeasible? A unit with no entry at all
    // is a coverage failure — comparing against a partially-drained
    // single-solver store must not silently pass.
    #[derive(Default, Clone, Copy)]
    struct SingleBest {
        solved: bool,
        infeasible: bool,
    }
    let mut single_best: std::collections::HashMap<(usize, u64), SingleBest> =
        std::collections::HashMap::new();
    for r in &single_records {
        let entry = single_best.entry((r.cell, r.instance)).or_default();
        match r.outcome {
            InstanceOutcome::Solved => entry.solved = true,
            InstanceOutcome::ProvedInfeasible => entry.infeasible = true,
            _ => {}
        }
    }
    let mut straddles = 0u64;
    for r in &race_records {
        let key = format!("cell {} instance {}", r.cell, r.instance);
        let Some(best) = single_best.get(&(r.cell, r.instance)).copied() else {
            failures.push(format!("{key}: no single-solver record found"));
            continue;
        };
        match r.outcome {
            InstanceOutcome::Solved => {
                if best.infeasible {
                    failures.push(format!(
                        "{key}: race Solved but a single-solver run proved infeasible"
                    ));
                } else if !best.solved {
                    // The race decided something every sequential run
                    // timed out on — a portfolio advantage, not drift.
                    straddles += 1;
                }
            }
            InstanceOutcome::ProvedInfeasible => {
                if best.solved {
                    failures.push(format!(
                        "{key}: race ProvedInfeasible but a single-solver run solved it"
                    ));
                } else if !best.infeasible {
                    straddles += 1;
                }
            }
            _ => {
                if best.solved || best.infeasible {
                    // The race ran out of budget where a sequential run
                    // decided: a budget straddle (races split cores
                    // between backends).
                    straddles += 1;
                }
            }
        }
    }
    // Coverage must hold in *both* directions: per-unit lookups above
    // catch single-solver gaps, and this catches a partially drained race
    // store — a gate that only compared the few units a crashed worker
    // managed to commit must not certify the whole workload.
    let expected_units = race_manifest.total_runs();
    if (race_records.len() as u64) < expected_units {
        failures.push(format!(
            "race store holds {} of {} expected units (campaign incomplete)",
            race_records.len(),
            expected_units
        ));
    }
    if straddles > 0 {
        notes.push(format!(
            "note: {straddles} budget-straddle exchange(s) between the race and the \
             sequential runs (timing-dependent, not gated)"
        ));
    }
    notes.push(format!(
        "{} race unit(s) compared against {} single-solver record(s)",
        race_records.len(),
        single_records.len()
    ));
    let ok = failures.is_empty();
    let mut lines = failures;
    lines.extend(notes);
    Ok(GateReport { ok, lines })
}

/// Text rendering of a [`Summary`].
#[must_use]
pub fn render_summary(s: &Summary) -> String {
    let mut out = format!(
        "campaign {} — {} records, shards {}/{}{}, wall {} ms\n",
        s.campaign,
        s.records,
        s.shards_done,
        s.shards_total,
        if s.completed { " (complete)" } else { "" },
        s.wall_ms,
    );
    out.push_str(&format!(
        "{:<14} {:>7} {:>7} {:>10} {:>8} {:>9} {:>11} {:>13}\n",
        "solver",
        "runs",
        "solved",
        "infeasible",
        "overrun",
        "too-large",
        "unsupported",
        "mean t (µs)"
    ));
    for (name, sv) in &s.solvers {
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>10} {:>8} {:>9} {:>11} {:>13}\n",
            name,
            sv.runs,
            sv.solved,
            sv.infeasible,
            sv.overrun,
            sv.too_large,
            sv.unsupported,
            sv.mean_time_us
        ));
    }
    out
}

/// Canonical, replay-stable export of a store's record set (see
/// [`crate::sink::canonical_export`]): the artifact the resume-determinism
/// property is stated over.
pub fn canonical_store_export(out_dir: &Path) -> Result<String, CampaignError> {
    Ok(canonical_export(&load_records(out_dir)?))
}

/// What [`compact`] accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Record lines across all segments before compaction (including
    /// superseded and uncheckpointed copies).
    pub lines_before: u64,
    /// Believable records after compaction.
    pub records: u64,
    /// Committed shards carried over.
    pub shards: u64,
    /// Worker segments merged into the canonical pair.
    pub segments_merged: u64,
}

/// Rewrite a record store without superseded / stale shard copies: merge
/// every worker segment into the canonical `records.jsonl` +
/// `checkpoint.jsonl` pair (believable records only, deduped by unit key,
/// deterministic unit order), drop everything the loader would ignore,
/// and snapshot the canonical export to `canonical.jsonl`. Refuses while
/// workers are active (live leases); expired leases are swept.
///
/// Idempotent: compacting a compacted store changes nothing, and
/// [`crate::sink::load_records`] returns the same record set before and
/// after.
pub fn compact(out_dir: &Path) -> Result<CompactReport, CampaignError> {
    let store = LocalStore::open(out_dir)?;
    // The manifest must parse — compaction must not silently bless a
    // foreign directory.
    let _ = Manifest::parse(&store.read_manifest()?)?;
    // Merging unlinks segment files other processes may hold open, so the
    // store must be quiesced: no in-flight shard leases and no attached
    // workers (presence leases). Expired debris is swept first. (A
    // concurrent single-process `run`/`resume` takes no leases — don't
    // compact a store one of those is writing, same as you wouldn't run
    // two `campaign run`s into one directory.)
    crate::queue::reclaim_expired(out_dir)?;
    crate::queue::ensure_quiesced(out_dir, "compact")?;

    let mut lines_before = 0u64;
    let mut segments = 0u64;
    for entry in std::fs::read_dir(out_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_default = name == RECORDS_FILE;
        let is_segment = name.starts_with("records-") && name.ends_with(".jsonl");
        if is_default || is_segment {
            lines_before += std::fs::read_to_string(entry.path())?.lines().count() as u64;
            if is_segment {
                segments += 1;
            }
        }
    }

    let records = store.load_records()?;
    let done = store.done_shards()?;
    let mut done: Vec<String> = done.into_iter().collect();
    done.sort();
    let mut per_shard: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for r in &records {
        *per_shard.entry(r.shard.as_str()).or_default() += 1;
    }

    // Stage the canonical pair, then swap both in and drop the merged
    // segments. A crash between the renames and the removals leaves
    // duplicate copies — which the loader dedupes, so a re-run of
    // `compact` heals the store.
    let mut records_text = String::new();
    for r in &records {
        records_text.push_str(&serde_json::to_string(r).map_err(std::io::Error::other)?);
        records_text.push('\n');
    }
    let mut checkpoint_text = String::new();
    for hash in &done {
        checkpoint_text.push_str(
            &serde_json::to_string(&crate::sink::CheckpointLine {
                shard: hash.clone(),
                records: per_shard.get(hash.as_str()).copied().unwrap_or(0),
                // Compaction is not a commit: carrying a fresh timestamp
                // would fabricate throughput, so the merged lines carry
                // none.
                unix_ms: None,
            })
            .map_err(std::io::Error::other)?,
        );
        checkpoint_text.push('\n');
    }
    store.put_artifact(RECORDS_FILE, &records_text)?;
    store.put_artifact(CHECKPOINT_FILE, &checkpoint_text)?;
    for stem in ["records", "checkpoint"] {
        let prefix = format!("{stem}-");
        for entry in std::fs::read_dir(out_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(&prefix) && name.ends_with(".jsonl") {
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    store.put_artifact(CANONICAL_FILE, &canonical_export(&records))?;

    Ok(CompactReport {
        lines_before,
        records: records.len() as u64,
        shards: done.len() as u64,
        segments_merged: segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MANIFEST_FILE;

    const SMOKE: &str = r#"
# tiny but real
[campaign]
name = "unit"
seed = 42
time_limit_ms = 2000
instances_per_cell = 3
shard_size = 4

[grid]
n = [3, 4]
m = [2]
t_max = [4]
utilization = ["*"]
hetero = [false]
solvers = ["csp2-dc", "sat"]
"#;

    #[test]
    fn manifest_parses_and_round_trips_canonically() {
        let m = Manifest::parse(SMOKE).unwrap();
        assert_eq!(m.name, "unit");
        assert_eq!(m.seed, 42);
        assert_eq!(m.cells.len(), 2);
        assert_eq!(m.roster.len(), 2);
        assert_eq!(m.total_runs(), 12);
        let back = Manifest::parse(&m.to_toml()).unwrap();
        assert_eq!(m, back, "canonical form re-parses to the same manifest");
        assert_eq!(m.fingerprint(), back.fingerprint());
    }

    #[test]
    fn smoke_manifest_is_the_table1_campaign() {
        // The acceptance pin: the committed CI smoke manifest does exactly
        // the work of `table1 --instances 24` (same fingerprint ⇒ same
        // shard plan ⇒ same records ⇒ identical `report table1`).
        let smoke = Manifest::load(Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../bench/manifests/smoke.toml"
        )))
        .unwrap();
        let t1 = Manifest::table1(
            "table1",
            smoke.instances_per_cell,
            smoke.seed,
            smoke.time_limit,
        );
        assert_eq!(smoke.fingerprint(), t1.fingerprint());
        assert_eq!(
            smoke
                .plan()
                .iter()
                .map(|s| s.hash.clone())
                .collect::<Vec<_>>(),
            t1.plan().iter().map(|s| s.hash.clone()).collect::<Vec<_>>(),
        );
        assert_eq!(smoke.roster.len(), 6, "all six roster solvers");
    }

    #[test]
    fn manifest_rejects_malformed_input() {
        for (bad, why) in [
            ("", "missing everything"),
            ("[campaign]\nname = \"x\"\n", "missing grid"),
            (
                "[campaign]\nname = \"x\"\ninstances_per_cell = 1\n[grid]\nn = [2]\nm = [0]\nt_max = [3]\nsolvers = [\"csp1\"]",
                "m = 0",
            ),
            (
                "[campaign]\nname = \"x\"\ninstances_per_cell = 1\n[grid]\nn = [2]\nm = [2]\nt_max = [3]\nsolvers = [\"nonsense\"]",
                "unknown solver",
            ),
            (
                "[campaign]\nname = \"x\"\ninstances_per_cell = 1\n[grid]\nn = [2]\nm = [2]\nt_max = [3]\nutilization = [\"2.0..1.0\"]\nsolvers = [\"csp1\"]",
                "empty band",
            ),
            (
                "[campaign]\nname = \"x\"\nname = \"y\"\ninstances_per_cell = 1\n[grid]\nn = [2]\nm = [2]\nt_max = [3]\nsolvers = [\"csp1\"]",
                "duplicate key",
            ),
            (
                "[campaign]\nname = \"x\"\ninstances_per_cell = 1\n[grid]\nn = [2]\nm = [2]\nt_max = [3]\nsolvers = [\"csp1\", \"csp1\"]",
                "duplicate roster entry",
            ),
        ] {
            assert!(Manifest::parse(bad).is_err(), "{why}");
        }
    }

    #[test]
    fn comments_and_inline_comments_are_stripped() {
        let m = Manifest::parse(
            "[campaign]\nname = \"c\" # trailing\ninstances_per_cell = 2\n# full line\n[grid]\nn = [2]\nm = [2]\nt_max = [3]\nsolvers = [\"csp1\"]\n",
        )
        .unwrap();
        assert_eq!(m.name, "c");
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mgrts-campaign-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_run_completes_and_reports() {
        let manifest = Manifest::parse(SMOKE).unwrap();
        let dir = tmp("fresh");
        let outcome = run_fresh(
            &manifest,
            &dir,
            &CampaignOptions {
                threads: 2,
                progress: false,
                max_shards: None,
            },
            &CancelGroup::new(),
        )
        .unwrap();
        assert!(outcome.summary.completed);
        assert_eq!(outcome.summary.records, 12);
        assert_eq!(outcome.summary.shards_done, outcome.summary.shards_total);
        assert!(dir.join("BENCH_unit.json").exists());
        // Reports render over the store.
        let t1 = report(&dir, ReportKind::Table1).unwrap();
        assert!(t1.contains("TABLE I"));
        assert!(t1.contains("TABLE II"));
        let t4 = report(&dir, ReportKind::Table4).unwrap();
        assert!(t4.contains("TABLE IV"));
        let s = report(&dir, ReportKind::Summary).unwrap();
        assert!(s.contains("campaign unit"));
        // The summary verdicts balance: every run is accounted for.
        for (_, sv) in &outcome.summary.solvers {
            assert_eq!(
                sv.runs,
                sv.solved + sv.infeasible + sv.overrun + sv.too_large + sv.unsupported
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_solver_tables_refuse_a_portfolio_race_store() {
        let mut manifest = Manifest::parse(SMOKE).unwrap();
        manifest.policy.mode = PolicyMode::PortfolioRace;
        let dir = tmp("race-report");
        run_fresh(
            &manifest,
            &dir,
            &CampaignOptions {
                threads: 2,
                progress: false,
                max_shards: None,
            },
            &CancelGroup::new(),
        )
        .unwrap();
        // The per-solver paper tables would misattribute race units to the
        // roster head; the report layer refuses and points at `winners`.
        for kind in [ReportKind::Table1, ReportKind::Table3, ReportKind::Table4] {
            let err = report(&dir, kind).unwrap_err().to_string();
            assert!(err.contains("`report winners`"), "unexpected error: {err}");
        }
        // The race-aware views still render.
        assert!(report(&dir, ReportKind::Winners)
            .unwrap()
            .contains("WINNERS"));
        report(&dir, ReportKind::Summary).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_run_resumes_to_the_same_canonical_records() {
        let manifest = Manifest::parse(SMOKE).unwrap();
        let a = tmp("uninterrupted");
        let b = tmp("interrupted");
        let opts = CampaignOptions {
            threads: 2,
            progress: false,
            max_shards: None,
        };
        run_fresh(&manifest, &a, &opts, &CancelGroup::new()).unwrap();
        // Stop after one shard, then resume.
        let partial = run_fresh(
            &manifest,
            &b,
            &CampaignOptions {
                max_shards: Some(1),
                ..opts.clone()
            },
            &CancelGroup::new(),
        )
        .unwrap();
        assert!(!partial.summary.completed);
        assert_eq!(partial.shards_committed, 1);
        let resumed = resume(&b, &opts, &CancelGroup::new()).unwrap();
        assert!(resumed.summary.completed);
        assert_eq!(
            canonical_store_export(&a).unwrap(),
            canonical_store_export(&b).unwrap(),
            "resume must reconstruct the exact record set"
        );
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn resume_rejects_a_store_from_another_manifest() {
        let manifest = Manifest::parse(SMOKE).unwrap();
        let dir = tmp("reject");
        run_fresh(
            &manifest,
            &dir,
            &CampaignOptions {
                threads: 1,
                progress: false,
                max_shards: Some(1),
            },
            &CancelGroup::new(),
        )
        .unwrap();
        // Swap the stored manifest for a different campaign.
        let other = SMOKE.replace("seed = 42", "seed = 43");
        std::fs::write(
            dir.join(MANIFEST_FILE),
            Manifest::parse(&other).unwrap().to_toml(),
        )
        .unwrap();
        let err = resume(&dir, &CampaignOptions::default(), &CancelGroup::new());
        assert!(matches!(err, Err(CampaignError::Store(_))), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_a_non_product_cell_list() {
        // A programmatic manifest whose cells are not the full axis
        // product cannot round-trip through the stored canonical TOML, so
        // run_fresh must refuse before writing anything.
        let mut manifest = Manifest::parse(SMOKE).unwrap();
        manifest.cells = vec![
            Cell {
                n: 4,
                m: CellM::Fixed(2),
                t_max: 4,
                band: None,
                hetero: false,
            },
            Cell {
                n: 6,
                m: CellM::Fixed(3),
                t_max: 5,
                band: None,
                hetero: false,
            },
        ];
        let dir = tmp("nonproduct");
        let err = run_fresh(
            &manifest,
            &dir,
            &CampaignOptions::default(),
            &CancelGroup::new(),
        );
        assert!(matches!(err, Err(CampaignError::Manifest(_))), "{err:?}");
        assert!(!dir.join(RECORDS_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_tolerates_budget_straddles_but_catches_verdict_flips() {
        let manifest = Manifest::parse(SMOKE).unwrap();
        let records: Vec<CampaignRecord> = Vec::new();
        let mut base = summarize(&manifest, &records, 3, 3, 1000);
        base.solvers[0].1.runs = 10;
        base.solvers[0].1.solved = 6;
        base.solvers[0].1.infeasible = 2;
        base.solvers[0].1.overrun = 2;
        // A run straddling the budget: Solved → Overrun. Timing noise, not
        // drift — the gate must pass.
        let mut straddle = base.clone();
        straddle.solvers[0].1.solved = 5;
        straddle.solvers[0].1.overrun = 3;
        assert!(gate(&straddle, &base, 0.25).ok, "budget straddle gated");
        // A genuine verdict flip: Solved → Infeasible. Soundness drift —
        // the gate must fail.
        let mut flip = base.clone();
        flip.solvers[0].1.solved = 5;
        flip.solvers[0].1.infeasible = 3;
        let report = gate(&flip, &base, 0.25);
        assert!(!report.ok, "verdict flip passed the gate");
        assert!(report.lines.iter().any(|l| l.contains("verdict drift")));
    }

    #[test]
    fn cancelled_campaign_stops_early_and_is_resumable() {
        let manifest = Manifest::parse(SMOKE).unwrap();
        let dir = tmp("cancelled");
        let cancel = CancelGroup::new();
        cancel.cancel_all();
        let outcome = run_fresh(&manifest, &dir, &CampaignOptions::default(), &cancel).unwrap();
        assert_eq!(outcome.shards_committed, 0);
        assert!(!outcome.summary.completed);
        let resumed = resume(&dir, &CampaignOptions::default(), &CancelGroup::new()).unwrap();
        assert!(resumed.summary.completed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_passes_identical_and_fails_drift_and_regression() {
        let manifest = Manifest::parse(SMOKE).unwrap();
        let records: Vec<CampaignRecord> = Vec::new();
        let base = summarize(&manifest, &records, 3, 3, 1000);
        let same = summarize(&manifest, &records, 3, 3, 1100);
        assert!(gate(&same, &base, 0.25).ok, "10% slower is within +25%");
        let slow = summarize(&manifest, &records, 3, 3, 1500);
        assert!(!gate(&slow, &base, 0.25).ok, "50% slower must fail");
        let mut drift = base.clone();
        drift.wall_ms = 1000;
        drift.solvers[0].1.solved += 1;
        let report = gate(&drift, &base, 0.25);
        assert!(!report.ok, "verdict drift must fail");
        assert!(report.lines.iter().any(|l| l.contains("verdict drift")));
        let incomplete = summarize(&manifest, &records, 3, 2, 1000);
        assert!(!gate(&incomplete, &base, 0.25).ok);
    }

    #[test]
    fn utilization_band_cells_only_contain_banded_instances() {
        let text = SMOKE.replace("utilization = [\"*\"]", "utilization = [\"0.5..2.0\"]");
        let manifest = Manifest::parse(&text).unwrap();
        let dir = tmp("band");
        run_fresh(
            &manifest,
            &dir,
            &CampaignOptions {
                threads: 1,
                progress: false,
                max_shards: None,
            },
            &CancelGroup::new(),
        )
        .unwrap();
        let records = load_records(&dir).unwrap();
        assert!(!records.is_empty());
        for r in &records {
            assert!(
                (0.5..2.0).contains(&r.ratio),
                "ratio {} out of band",
                r.ratio
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hetero_cells_run_and_record() {
        let text = SMOKE.replace("hetero = [false]", "hetero = [true]");
        let manifest = Manifest::parse(&text).unwrap();
        let dir = tmp("hetero");
        let outcome = run_fresh(
            &manifest,
            &dir,
            &CampaignOptions {
                threads: 1,
                progress: false,
                max_shards: None,
            },
            &CancelGroup::new(),
        )
        .unwrap();
        assert!(outcome.summary.completed);
        let records = load_records(&dir).unwrap();
        assert!(records.iter().all(|r| r.hetero));
        std::fs::remove_dir_all(&dir).ok();
    }
}
