//! Aggregation and formatting of the paper's Tables I–IV from raw
//! [`RunRecord`]s.

use std::collections::HashSet;

use mgrts_core::engine::SolverSpec;

use crate::runner::{InstanceOutcome, RunRecord};

/// Instances solved (feasible schedule found) by at least one solver.
#[must_use]
pub fn solved_by_someone(records: &[RunRecord]) -> HashSet<u64> {
    records
        .iter()
        .filter(|r| r.outcome == InstanceOutcome::Solved)
        .map(|r| r.instance)
        .collect()
}

fn overruns(records: &[RunRecord], solver: SolverSpec, pred: impl Fn(&RunRecord) -> bool) -> usize {
    records
        .iter()
        .filter(|r| r.solver == solver && r.outcome == InstanceOutcome::Overrun && pred(r))
        .count()
}

/// Table I: per solver, the number of runs reaching the time limit, split
/// by whether the instance was solved by at least one solver.
#[must_use]
pub fn table1(records: &[RunRecord], roster: &[SolverSpec], total_instances: u64) -> String {
    let solved = solved_by_someone(records);
    let mut out = String::from("# overruns |");
    for s in roster {
        out.push_str(&format!(" {:>7}", s.label()));
    }
    out.push_str(" |  Total\n");
    let width = out.lines().next().unwrap().chars().count();
    out.push_str(&format!("{}\n", "-".repeat(width)));
    for (name, in_solved) in [("solved", true), ("unsolved", false)] {
        out.push_str(&format!("{name:<10} |"));
        for &s in roster {
            let n = overruns(records, s, |r| solved.contains(&r.instance) == in_solved);
            out.push_str(&format!(" {n:>7}"));
        }
        let total = if in_solved {
            solved.len()
        } else {
            total_instances as usize - solved.len()
        };
        out.push_str(&format!(" | {total:>6}\n"));
    }
    out
}

/// Table II: the unsolved-instance overruns of Table I split by the
/// `r > 1` utilization filter.
#[must_use]
pub fn table2(records: &[RunRecord], roster: &[SolverSpec]) -> String {
    let solved = solved_by_someone(records);
    let unsolved_instances: HashSet<u64> = records
        .iter()
        .map(|r| r.instance)
        .filter(|i| !solved.contains(i))
        .collect();
    let mut filtered_total = 0usize;
    let mut unfiltered_total = 0usize;
    for &i in &unsolved_instances {
        let filtered = records
            .iter()
            .find(|r| r.instance == i)
            .is_some_and(|r| r.filtered);
        if filtered {
            filtered_total += 1;
        } else {
            unfiltered_total += 1;
        }
    }
    let mut out = String::from("# overruns |");
    for s in roster {
        out.push_str(&format!(" {:>7}", s.label()));
    }
    out.push_str(" |  Total\n");
    let width = out.lines().next().unwrap().chars().count();
    out.push_str(&format!("{}\n", "-".repeat(width)));
    for (name, want_filtered, total) in [
        ("filtered", true, filtered_total),
        ("unfiltered", false, unfiltered_total),
    ] {
        out.push_str(&format!("{name:<10} |"));
        for &s in roster {
            let n = overruns(records, s, |r| {
                !solved.contains(&r.instance) && r.filtered == want_filtered
            });
            out.push_str(&format!(" {n:>7}"));
        }
        out.push_str(&format!(" | {total:>6}\n"));
    }
    out
}

/// The paper's Table III utilization-ratio buckets.
pub const RATIO_BUCKETS: [(f64, f64); 15] = [
    (0.0, 0.4),
    (0.4, 0.5),
    (0.5, 0.6),
    (0.6, 0.7),
    (0.7, 0.8),
    (0.8, 0.9),
    (0.9, 1.0),
    (1.0, 1.1),
    (1.1, 1.2),
    (1.2, 1.3),
    (1.3, 1.4),
    (1.4, 1.5),
    (1.5, 1.6),
    (1.6, 1.7),
    (1.7, 2.0),
];

/// Table III: instance distribution over `r` buckets and mean resolution
/// time (over all solvers; an overrun contributes its full measured time,
/// ≈ the limit — the paper does the same by construction).
#[must_use]
pub fn table3(records: &[RunRecord]) -> String {
    let mut out = String::from("rmin–rmax  | #instances |  t_res (ms)\n");
    out.push_str("-----------+------------+------------\n");
    for (lo, hi) in RATIO_BUCKETS {
        let in_bucket: Vec<&RunRecord> = records
            .iter()
            .filter(|r| r.ratio >= lo && r.ratio < hi)
            .collect();
        let instances: HashSet<u64> = in_bucket.iter().map(|r| r.instance).collect();
        if instances.is_empty() {
            out.push_str(&format!("{lo:.1}–{hi:.1}    | {:>10} |          –\n", 0));
            continue;
        }
        let mean_ms = in_bucket.iter().map(|r| r.time_us as f64).sum::<f64>()
            / in_bucket.len() as f64
            / 1000.0;
        out.push_str(&format!(
            "{lo:.1}–{hi:.1}    | {:>10} | {mean_ms:>10.1}\n",
            instances.len()
        ));
    }
    out
}

/// One aggregated row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Number of tasks.
    pub n: usize,
    /// Mean utilization ratio.
    pub mean_r: f64,
    /// Mean processor count.
    pub mean_m: f64,
    /// Mean hyperperiod (raw ticks; the paper prints thousands).
    pub mean_h: f64,
    /// (solved fraction, mean time ms, all-too-large) per roster solver.
    pub per_solver: Vec<(f64, f64, bool)>,
}

/// Format Table IV rows with the paper's column layout.
#[must_use]
pub fn table4(rows: &[Table4Row], roster: &[SolverSpec]) -> String {
    let mut out = String::from("   n |    r  |     m  |  H(1000) |");
    for s in roster {
        out.push_str(&format!(" {:>8} solved  t(ms) |", s.label()));
    }
    out.push('\n');
    let width = out.lines().next().unwrap().chars().count();
    out.push_str(&format!("{}\n", "-".repeat(width)));
    for row in rows {
        out.push_str(&format!(
            "{:>4} | {:>5.2} | {:>6.2} | {:>8.2} |",
            row.n,
            row.mean_r,
            row.mean_m,
            row.mean_h / 1000.0
        ));
        for &(solved, t_ms, too_large) in &row.per_solver {
            if too_large {
                out.push_str(&format!(" {:>8}      –      – |", ""));
            } else {
                out.push_str(&format!(
                    " {:>8} {:>5.0}% {:>6.1} |",
                    "",
                    solved * 100.0,
                    t_ms
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// One grid cell's race-winner tally (the `report winners` row shape).
#[derive(Debug, Clone)]
pub struct WinnerRow {
    /// Canonical cell tag.
    pub cell: String,
    /// Units won per roster backend, in roster order.
    pub wins: Vec<u64>,
    /// Units nobody won (no definitive verdict within budget).
    pub none: u64,
    /// Total race units of the cell.
    pub units: u64,
}

/// Format per-cell winner counts of a racing campaign: one line per cell,
/// one column per roster backend, plus the undecided tally.
#[must_use]
pub fn winners(rows: &[WinnerRow], roster: &[SolverSpec]) -> String {
    if rows.is_empty() {
        return "no records in this campaign\n".to_string();
    }
    let cell_width = rows.iter().map(|r| r.cell.len()).max().unwrap_or(4).max(4);
    let mut out = format!("{:<cell_width$} |", "cell");
    for s in roster {
        out.push_str(&format!(" {:>7}", s.label()));
    }
    out.push_str(" |    none   units\n");
    let width = out.lines().next().unwrap().chars().count();
    out.push_str(&format!("{}\n", "-".repeat(width)));
    let mut totals = vec![0u64; roster.len()];
    let (mut total_none, mut total_units) = (0u64, 0u64);
    for row in rows {
        out.push_str(&format!("{:<cell_width$} |", row.cell));
        for (i, n) in row.wins.iter().enumerate() {
            out.push_str(&format!(" {n:>7}"));
            totals[i] += n;
        }
        out.push_str(&format!(" | {:>7} {:>7}\n", row.none, row.units));
        total_none += row.none;
        total_units += row.units;
    }
    if rows.len() > 1 {
        out.push_str(&format!("{:<cell_width$} |", "total"));
        for n in &totals {
            out.push_str(&format!(" {n:>7}"));
        }
        out.push_str(&format!(" | {total_none:>7} {total_units:>7}\n"));
    }
    out
}

/// One grid cell's aggregated search telemetry (the `report profile`
/// row shape): every recorded [`mgrts_obs::SearchStats`] of the cell,
/// merged.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Canonical cell tag.
    pub cell: String,
    /// Units of the cell that carried a `search` block.
    pub with_stats: u64,
    /// Units of the cell without one (pre-telemetry segments, backends
    /// without counters).
    pub without_stats: u64,
    /// The cell's merged search telemetry.
    pub stats: mgrts_obs::SearchStats,
}

/// Format per-cell aggregated search statistics: one line per cell with
/// the merged throughput counters, then a per-propagator-kind breakdown
/// summed over every cell.
#[must_use]
pub fn profile(rows: &[ProfileRow]) -> String {
    if rows.iter().all(|r| r.with_stats == 0) {
        return "no recorded search statistics in this campaign \
                (records predate telemetry, or the backends carry no counters)\n"
            .to_string();
    }
    let cell_width = rows.iter().map(|r| r.cell.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:<cell_width$} | {:>6} {:>12} {:>12} {:>13} {:>9} {:>9} {:>8} {:>7} {:>7} {:>6} {:>10} {:>10}\n",
        "cell",
        "solves",
        "decisions",
        "backtracks",
        "propagations",
        "restarts",
        "gac_reb",
        "conflict",
        "nogoods",
        "mean_bj",
        "db_red",
        "peak_trail",
        "peak_depth",
    );
    let width = out.lines().next().unwrap().chars().count();
    out.push_str(&format!("{}\n", "-".repeat(width)));
    let mut kinds = mgrts_obs::SearchStats::default();
    for row in rows {
        if row.with_stats == 0 {
            continue;
        }
        let st = &row.stats;
        // Mean levels skipped per analyzed conflict (0.0 = chronological).
        let mean_bj = if st.conflicts == 0 {
            0.0
        } else {
            st.backjump_sum as f64 / st.conflicts as f64
        };
        out.push_str(&format!(
            "{:<cell_width$} | {:>6} {:>12} {:>12} {:>13} {:>9} {:>9} {:>8} {:>7} {:>7.1} {:>6} {:>10} {:>10}\n",
            row.cell,
            st.solves,
            st.decisions,
            st.backtracks,
            st.propagations,
            st.restarts,
            st.gac_rebuilds,
            st.conflicts,
            st.learnt_clauses,
            mean_bj,
            st.db_reductions,
            st.peak_trail,
            st.peak_depth,
        ));
        kinds.merge(st);
    }
    let uncounted: u64 = rows.iter().map(|r| r.without_stats).sum();
    if uncounted > 0 {
        out.push_str(&format!(
            "({uncounted} units carry no search telemetry and are excluded)\n"
        ));
    }
    if !kinds.kinds.is_empty() {
        out.push_str("\npropagator kinds (all cells)\n");
        let kw = kinds
            .kinds
            .iter()
            .map(|k| k.kind.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<kw$} | {:>12} {:>12} {:>12}\n",
            "kind", "wakes", "prunes", "entailments"
        ));
        for k in &kinds.kinds {
            out.push_str(&format!(
                "{:<kw$} | {:>12} {:>12} {:>12}\n",
                k.kind, k.wakes, k.prunes, k.entailments
            ));
        }
    }
    out
}

/// Per-solver verdict counts of one heterogeneous cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeteroCounts {
    /// Total runs.
    pub runs: u64,
    /// Verified feasible schedules.
    pub solved: u64,
    /// Infeasibility proofs.
    pub infeasible: u64,
    /// Budget overruns.
    pub overrun: u64,
    /// Runs where the backend has no decision procedure for the cell's
    /// heterogeneous platform.
    pub unsupported: u64,
}

/// One heterogeneous grid cell with its per-roster-solver counts.
#[derive(Debug, Clone)]
pub struct HeteroRow {
    /// Canonical cell tag.
    pub cell: String,
    /// Counts per roster solver, in roster order.
    pub per_solver: Vec<HeteroCounts>,
}

/// Format the heterogeneity report: one block per hetero cell, one line
/// per solver, making the per-backend `unsupported` counts visible.
#[must_use]
pub fn hetero(rows: &[HeteroRow], roster: &[SolverSpec]) -> String {
    if rows.is_empty() {
        return "no heterogeneous cells in this campaign\n".to_string();
    }
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!("cell {}\n", row.cell));
        out.push_str(&format!(
            "  {:<14} {:>6} {:>7} {:>10} {:>8} {:>11}\n",
            "solver", "runs", "solved", "infeasible", "overrun", "unsupported"
        ));
        for (s, c) in roster.iter().zip(&row.per_solver) {
            out.push_str(&format!(
                "  {:<14} {:>6} {:>7} {:>10} {:>8} {:>11}\n",
                s.name(),
                c.runs,
                c.solved,
                c.infeasible,
                c.overrun,
                c.unsupported
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrts_core::heuristics::TaskOrder;

    fn rec(
        instance: u64,
        solver: SolverSpec,
        outcome: InstanceOutcome,
        ratio: f64,
        filtered: bool,
    ) -> RunRecord {
        RunRecord {
            instance,
            solver,
            outcome,
            time_us: 1000,
            ratio,
            filtered,
        }
    }

    const CSP1: SolverSpec = SolverSpec::Csp1;
    const DC: SolverSpec = SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet);

    #[test]
    fn table1_counts_overruns_by_solved_partition() {
        // Instance 0: solved by DC, overrun by CSP1 → "solved" overrun.
        // Instance 1: overrun by both → "unsolved" overruns.
        let records = vec![
            rec(0, CSP1, InstanceOutcome::Overrun, 0.9, false),
            rec(0, DC, InstanceOutcome::Solved, 0.9, false),
            rec(1, CSP1, InstanceOutcome::Overrun, 1.2, true),
            rec(1, DC, InstanceOutcome::Overrun, 1.2, true),
        ];
        let out = table1(&records, &[CSP1, DC], 2);
        let lines: Vec<&str> = out.lines().collect();
        // solved row: CSP1 = 1, DC = 0, total solved instances = 1.
        assert!(lines[2].contains('1'));
        assert!(lines[2].trim_end().ends_with('1'));
        // unsolved row: CSP1 = 1, DC = 1, total = 1.
        assert!(lines[3].starts_with("unsolved"));
    }

    #[test]
    fn table2_partitions_by_filter() {
        let records = vec![
            rec(0, CSP1, InstanceOutcome::Overrun, 1.3, true),
            rec(0, DC, InstanceOutcome::ProvedInfeasible, 1.3, true),
            rec(1, CSP1, InstanceOutcome::Overrun, 0.98, false),
            rec(1, DC, InstanceOutcome::Overrun, 0.98, false),
        ];
        let out = table2(&records, &[CSP1, DC]);
        assert!(out.contains("filtered"));
        assert!(out.contains("unfiltered"));
        let filtered_line = out.lines().nth(2).unwrap();
        // CSP1 overran the filtered instance, DC did not.
        assert!(filtered_line.contains("1") && filtered_line.contains("0"));
    }

    #[test]
    fn table3_buckets_cover_the_paper_range() {
        assert_eq!(RATIO_BUCKETS.len(), 15);
        assert_eq!(RATIO_BUCKETS[0], (0.0, 0.4));
        assert_eq!(RATIO_BUCKETS[14], (1.7, 2.0));
        let records = vec![
            rec(0, DC, InstanceOutcome::Solved, 0.95, false),
            rec(1, DC, InstanceOutcome::Solved, 0.97, false),
            rec(2, DC, InstanceOutcome::Overrun, 1.45, true),
        ];
        let out = table3(&records);
        let bucket_09 = out.lines().find(|l| l.starts_with("0.9–1.0")).unwrap();
        assert!(bucket_09.contains('2'), "{bucket_09}");
    }

    #[test]
    fn table4_renders_dashes_for_too_large() {
        let rows = vec![Table4Row {
            n: 64,
            mean_r: 0.98,
            mean_m: 25.8,
            mean_h: 345_950.0,
            per_solver: vec![(0.0, 0.0, true), (0.25, 3.2, false)],
        }];
        let out = table4(&rows, &[CSP1, DC]);
        assert!(out.contains('–'));
        assert!(out.contains("25%"));
        assert!(out.contains("345.95"));
    }

    #[test]
    fn profile_golden_output_with_learning_counters() {
        let rows = vec![
            ProfileRow {
                cell: "learn-cell".to_string(),
                with_stats: 1,
                without_stats: 0,
                stats: mgrts_obs::SearchStats {
                    solves: 2,
                    decisions: 100,
                    backtracks: 40,
                    propagations: 900,
                    conflicts: 8,
                    restarts: 3,
                    learnt_clauses: 6,
                    backjump_sum: 20,
                    db_reductions: 1,
                    peak_trail: 50,
                    peak_depth: 12,
                    ..Default::default()
                },
            },
            ProfileRow {
                cell: "chrono".to_string(),
                with_stats: 1,
                without_stats: 1,
                stats: mgrts_obs::SearchStats {
                    solves: 1,
                    decisions: 30,
                    backtracks: 10,
                    propagations: 200,
                    peak_trail: 20,
                    peak_depth: 5,
                    ..Default::default()
                },
            },
        ];
        let out = profile(&rows);
        let expected = "\
cell       | solves    decisions   backtracks  propagations  restarts   gac_reb conflict nogoods mean_bj db_red peak_trail peak_depth\n\
-------------------------------------------------------------------------------------------------------------------------------------\n\
learn-cell |      2          100           40           900         3         0        8       6     2.5      1         50         12\n\
chrono     |      1           30           10           200         0         0        0       0     0.0      0         20          5\n\
(1 units carry no search telemetry and are excluded)\n";
        assert_eq!(out, expected, "golden mismatch:\n{out}");
    }

    #[test]
    fn hetero_renders_unsupported_counts_per_cell() {
        let rows = vec![HeteroRow {
            cell: "n=6/m=auto/tmax=5/u=*/hetero=true".to_string(),
            per_solver: vec![
                HeteroCounts {
                    runs: 4,
                    solved: 1,
                    infeasible: 0,
                    overrun: 0,
                    unsupported: 3,
                },
                HeteroCounts {
                    runs: 4,
                    solved: 2,
                    infeasible: 2,
                    overrun: 0,
                    unsupported: 0,
                },
            ],
        }];
        let out = hetero(&rows, &[CSP1, DC]);
        assert!(out.contains("unsupported"));
        assert!(out.contains("hetero=true"));
        let csp1_line = out.lines().find(|l| l.trim().starts_with("csp1")).unwrap();
        assert!(csp1_line.trim().ends_with('3'), "{csp1_line}");
        assert!(hetero(&[], &[CSP1]).contains("no heterogeneous cells"));
    }

    #[test]
    fn winners_tallies_per_cell_and_totals() {
        let rows = vec![
            WinnerRow {
                cell: "n=10/m=5/tmax=7/u=*/hetero=false".to_string(),
                wins: vec![3, 15],
                none: 6,
                units: 24,
            },
            WinnerRow {
                cell: "n=12/m=5/tmax=7/u=*/hetero=false".to_string(),
                wins: vec![1, 2],
                none: 0,
                units: 3,
            },
        ];
        let out = winners(&rows, &[CSP1, DC]);
        assert!(out.contains("CSP1"), "{out}");
        assert!(out.contains("+(D-C)"), "{out}");
        assert!(out.contains("none"), "{out}");
        let total = out.lines().find(|l| l.starts_with("total")).unwrap();
        assert!(total.contains("4"), "{total}");
        assert!(total.contains("17"), "{total}");
        assert!(total.contains("27"), "{total}");
        assert!(winners(&[], &[CSP1]).contains("no records"));
    }

    #[test]
    fn solved_by_someone_dedups() {
        let records = vec![
            rec(0, CSP1, InstanceOutcome::Solved, 0.5, false),
            rec(0, DC, InstanceOutcome::Solved, 0.5, false),
        ];
        assert_eq!(solved_by_someone(&records).len(), 1);
    }
}
