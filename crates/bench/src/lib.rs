#![warn(missing_docs)]
//! # mgrts-bench — experiment harness regenerating the paper's evaluation
//!
//! The heart of the crate is the **campaign engine** ([`campaign`]): a
//! declarative manifest (scenario grid × budgets × solver roster) expands
//! into content-hashed [`shard`]s, executed by a self-scheduling worker
//! pool with per-shard budgets and cooperative cancellation, streaming
//! JSONL records plus checkpoints to a record store ([`sink`]) so a killed
//! campaign resumes exactly where it stopped. The paper's Tables I–IV are
//! *reports* over that store; each run also emits a machine-readable
//! `BENCH_<name>.json` summary that seeds the perf trajectory (and backs
//! the CI perf gate).
//!
//! *What* each campaign unit runs is decided by a pluggable
//! [`policy::ExecutionPolicy`] — the single roster solver per unit
//! (historical default), a portfolio race of the whole roster per
//! instance, or either wrapped in adaptive quantile-sized budgets — so
//! the same manifest grid executes under any cell-execution strategy
//! (`[policy]` manifest section / `--policy` CLI flag).
//!
//! On top of the single-process executor, the [`queue`] module turns one
//! campaign into a *distributed* job: the [`sink::RecordStore`] trait
//! abstracts the store behind append-only per-writer segments (local
//! directory today, the seam for an object store), and a lease-based work
//! queue lets any number of worker processes — or machines sharing a
//! mount — cooperatively drain one manifest with crash-safe reclaim of
//! dead workers' shards (`mgrts bench campaign dispatch|worker|status`).
//!
//! One binary per table/figure of Section VII, each a thin manifest +
//! report pairing over the engine:
//!
//! * `figure1` — the availability-interval pattern of the running example;
//! * `table1` — Tables I and II (overrun counts per solver, 500 random
//!   problems, m = 5, n = 10, Tmax = 7);
//! * `table3` — Table III (instance distribution and mean resolution time
//!   per utilization-ratio bucket);
//! * `table4` — Table IV (scaling with n ∈ {4 … 256}, Tmax = 15,
//!   m = ⌈U⌉).
//!
//! Shared machinery lives here: the solver roster ([`ROSTER`]), the
//! per-instance runner, the campaign executor, and plain-text table
//! formatting. All runs are deterministic given the manifest seed;
//! wall-clock *classifications* (overrun vs solved) depend on the machine,
//! exactly as in the paper.

pub mod campaign;
pub mod cli;
pub mod policy;
pub mod queue;
pub mod runner;
pub mod serve;
pub mod shard;
pub mod sink;
pub mod tables;

pub use cli::Args;
pub use mgrts_core::engine::SolverSpec;
pub use policy::{ExecutionPolicy, PolicyKind, PolicyMode, PolicySpec};
pub use runner::{run_corpus, InstanceOutcome, RunRecord, ROSTER};
