#![warn(missing_docs)]
//! # mgrts-bench — experiment harness regenerating the paper's evaluation
//!
//! One binary per table/figure of Section VII:
//!
//! * `figure1` — the availability-interval pattern of the running example;
//! * `table1` — Tables I and II (overrun counts per solver, 500 random
//!   problems, m = 5, n = 10, Tmax = 7);
//! * `table3` — Table III (instance distribution and mean resolution time
//!   per utilization-ratio bucket);
//! * `table4` — Table IV (scaling with n ∈ {4 … 256}, Tmax = 15,
//!   m = ⌈U⌉).
//!
//! Shared machinery lives here: the solver roster ([`SolverKind`]), the
//! per-instance runner, a crossbeam-based parallel executor with a
//! parking_lot progress counter, and plain-text table formatting. All runs
//! are deterministic given the CLI seed; wall-clock *classifications*
//! (overrun vs solved) depend on the machine, exactly as in the paper.

pub mod cli;
pub mod runner;
pub mod tables;

pub use cli::Args;
pub use runner::{run_corpus, InstanceOutcome, RunRecord, SolverKind};
