//! Streaming JSONL record sink with shard checkpoints.
//!
//! A campaign's record store is a directory:
//!
//! * `records.jsonl` — one [`CampaignRecord`] per line, appended shard by
//!   shard under a lock (a shard's lines are contiguous);
//! * `checkpoint.jsonl` — one line per **committed** shard, appended and
//!   flushed *after* that shard's records hit the record file;
//! * `manifest.toml` — the canonical manifest, so `resume` and `report`
//!   need no external input.
//!
//! Crash safety is append-only ordering: a shard is only believed once its
//! checkpoint line exists, so a SIGKILL can at worst leave (a) a truncated
//! trailing record line and (b) record lines of an uncheckpointed shard.
//! The loader drops both, and the resumed campaign re-runs exactly the
//! shards without checkpoint lines; a shard that ends up recorded twice
//! (killed between record flush and checkpoint write, then re-run) is
//! deduplicated by unit key, keeping the later, checkpointed copy.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mgrts_core::engine::SolverSpec;

use crate::runner::{InstanceOutcome, RunRecord};
use crate::shard::Shard;

/// One campaign run record: a [`RunRecord`] plus full scenario provenance,
/// so reports never need to re-derive which grid cell a line came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRecord {
    /// Content hash of the shard that produced this record.
    pub shard: String,
    /// Index of the grid cell in manifest order.
    pub cell: usize,
    /// Instance index within the cell's stream.
    pub instance: u64,
    /// Campaign-wide instance number (`cell × instances_per_cell +
    /// instance`) — the instance key table reports aggregate on.
    pub global_instance: u64,
    /// Which solver ran.
    pub solver: SolverSpec,
    /// Classified outcome.
    pub outcome: InstanceOutcome,
    /// Wall-clock solve time (µs) — the only field that varies between
    /// replays of the same shard.
    pub time_us: u64,
    /// Utilization ratio r = U/m.
    pub ratio: f64,
    /// Pruned by the r > 1 filter?
    pub filtered: bool,
    /// Resolved processor count.
    pub m: usize,
    /// Task count of the cell.
    pub n: usize,
    /// Maximum period of the cell.
    pub t_max: u64,
    /// Heterogeneous platform?
    pub hetero: bool,
    /// Hyperperiod of the instance (0 when it overflows).
    pub hyperperiod: u64,
    /// The instance's derived seed (replay handle).
    pub seed: u64,
}

impl CampaignRecord {
    /// Project onto the classic bench [`RunRecord`] shape the table
    /// formatters consume.
    #[must_use]
    pub fn to_run_record(&self) -> RunRecord {
        RunRecord {
            instance: self.global_instance,
            solver: self.solver,
            outcome: self.outcome,
            time_us: self.time_us,
            ratio: self.ratio,
            filtered: self.filtered,
        }
    }

    /// The unit key a resumed campaign dedupes on.
    #[must_use]
    pub fn unit_key(&self) -> (usize, u64, SolverSpec) {
        (self.cell, self.instance, self.solver)
    }
}

/// One checkpoint line: shard `hash` committed with `records` record lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointLine {
    /// Shard content hash.
    pub shard: String,
    /// Number of records the shard contributed.
    pub records: u64,
}

/// File names inside a record-store directory.
pub const RECORDS_FILE: &str = "records.jsonl";
/// Checkpoint file name.
pub const CHECKPOINT_FILE: &str = "checkpoint.jsonl";
/// Canonical manifest copy.
pub const MANIFEST_FILE: &str = "manifest.toml";

/// Append-only writer half of a record store. One per campaign run; shared
/// behind a lock by the executor's workers.
#[derive(Debug)]
pub struct RecordSink {
    dir: PathBuf,
    records: BufWriter<File>,
    checkpoint: BufWriter<File>,
}

impl RecordSink {
    /// Open (creating the directory if needed) for appending. A SIGKILL
    /// can leave either file ending in a truncated line; new appends must
    /// not concatenate onto it, so a missing trailing newline is healed
    /// first (the half-line itself stays and is dropped by the loader).
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let append = |name: &str| -> std::io::Result<File> {
            let path = dir.join(name);
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            let len = file.metadata()?.len();
            if len > 0 {
                use std::io::{Read, Seek, SeekFrom};
                let mut last = [0u8; 1];
                let mut reader = File::open(&path)?;
                reader.seek(SeekFrom::End(-1))?;
                reader.read_exact(&mut last)?;
                if last[0] != b'\n' {
                    file.write_all(b"\n")?;
                    file.flush()?;
                }
            }
            Ok(file)
        };
        Ok(RecordSink {
            dir: dir.to_path_buf(),
            records: BufWriter::new(append(RECORDS_FILE)?),
            checkpoint: BufWriter::new(append(CHECKPOINT_FILE)?),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Commit one completed shard: stream its records, flush them to disk,
    /// then append + flush the checkpoint line. The ordering is the crash
    /// guarantee — a checkpoint line never precedes its records.
    pub fn commit_shard(
        &mut self,
        shard: &Shard,
        records: &[CampaignRecord],
    ) -> std::io::Result<()> {
        for r in records {
            let line = serde_json::to_string(r).map_err(std::io::Error::other)?;
            self.records.write_all(line.as_bytes())?;
            self.records.write_all(b"\n")?;
        }
        self.records.flush()?;
        self.records.get_ref().sync_data()?;
        let line = serde_json::to_string(&CheckpointLine {
            shard: shard.hash.clone(),
            records: records.len() as u64,
        })
        .map_err(std::io::Error::other)?;
        self.checkpoint.write_all(line.as_bytes())?;
        self.checkpoint.write_all(b"\n")?;
        self.checkpoint.flush()?;
        self.checkpoint.get_ref().sync_data()?;
        Ok(())
    }
}

/// Shard hashes with a committed checkpoint line. Tolerates a truncated
/// trailing line (the SIGKILL case).
pub fn load_done_shards(dir: &Path) -> std::io::Result<HashSet<String>> {
    let path = dir.join(CHECKPOINT_FILE);
    if !path.exists() {
        return Ok(HashSet::new());
    }
    let mut done = HashSet::new();
    for line in BufReader::new(File::open(path)?).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(cp) = serde_json::from_str::<CheckpointLine>(&line) {
            done.insert(cp.shard);
        }
    }
    Ok(done)
}

/// Load the believable records of a store: lines that parse, belong to a
/// checkpointed shard, deduplicated by unit key (last write wins — the
/// re-run of a half-committed shard supersedes the stale copy).
pub fn load_records(dir: &Path) -> std::io::Result<Vec<CampaignRecord>> {
    let done = load_done_shards(dir)?;
    let path = dir.join(RECORDS_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut records: Vec<CampaignRecord> = Vec::new();
    for line in BufReader::new(File::open(path)?).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(rec) = serde_json::from_str::<CampaignRecord>(&line) else {
            continue; // truncated tail or foreign garbage
        };
        if done.contains(&rec.shard) {
            records.push(rec);
        }
    }
    // Last occurrence per unit wins; then restore deterministic order.
    let mut seen = HashSet::new();
    let mut deduped: Vec<CampaignRecord> = Vec::with_capacity(records.len());
    for rec in records.into_iter().rev() {
        if seen.insert(rec.unit_key()) {
            deduped.push(rec);
        }
    }
    deduped.sort_by(|a, b| {
        a.unit_key()
            .0
            .cmp(&b.unit_key().0)
            .then(a.instance.cmp(&b.instance))
            .then(a.solver.name().cmp(b.solver.name()))
    });
    Ok(deduped)
}

/// Canonical, replay-stable serialization of a record set: sorted unit
/// order (as produced by [`load_records`]) with the wall-clock field — the
/// only nondeterministic one — zeroed. Two campaigns over the same manifest
/// produce byte-identical canonical exports regardless of interruption,
/// resumption or thread schedule.
#[must_use]
pub fn canonical_export(records: &[CampaignRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let mut norm = r.clone();
        norm.time_us = 0;
        out.push_str(&serde_json::to_string(&norm).expect("record serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::RunUnit;

    fn rec(shard: &str, cell: usize, instance: u64, time_us: u64) -> CampaignRecord {
        CampaignRecord {
            shard: shard.to_string(),
            cell,
            instance,
            global_instance: cell as u64 * 10 + instance,
            solver: SolverSpec::Csp1,
            outcome: InstanceOutcome::Solved,
            time_us,
            ratio: 0.9,
            filtered: false,
            m: 2,
            n: 4,
            t_max: 5,
            hetero: false,
            hyperperiod: 60,
            seed: 7,
        }
    }

    fn shard(hash: &str) -> Shard {
        Shard {
            index: 0,
            hash: hash.to_string(),
            units: vec![RunUnit {
                cell: 0,
                instance: 0,
                solver: 0,
            }],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mgrts-sink-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn commit_then_load_round_trips() {
        let dir = tmp("roundtrip");
        let mut sink = RecordSink::open(&dir).unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5), rec("aa", 0, 1, 6)])
            .unwrap();
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].instance, 0);
        assert_eq!(load_done_shards(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncheckpointed_and_truncated_lines_are_dropped() {
        let dir = tmp("partial");
        let mut sink = RecordSink::open(&dir).unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .unwrap();
        // Simulate a SIGKILL mid-shard: records of an uncheckpointed shard
        // plus a truncated trailing line.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(RECORDS_FILE))
            .unwrap();
        let stale = serde_json::to_string(&rec("bb", 1, 0, 9)).unwrap();
        writeln!(raw, "{stale}").unwrap();
        write!(raw, "{}", &stale[..stale.len() / 2]).unwrap();
        drop(raw);
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].shard, "aa");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayed_shard_dedupes_by_unit_key() {
        let dir = tmp("dedupe");
        let mut sink = RecordSink::open(&dir).unwrap();
        // Stale copy: records written but imagine the process died before
        // the checkpoint... then the shard was re-run and committed. Both
        // copies end up in the file; only one survives loading.
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 111)])
            .unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 222)])
            .unwrap();
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].time_us, 222, "later copy wins");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn canonical_export_zeroes_time_and_is_stable() {
        let a = canonical_export(&[rec("aa", 0, 0, 111)]);
        let b = canonical_export(&[rec("aa", 0, 0, 999)]);
        assert_eq!(a, b, "wall-clock noise must not leak into the export");
        assert!(a.contains("\"time_us\":0"));
    }
}
