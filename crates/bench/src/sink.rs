//! The record store: streaming JSONL segments with shard checkpoints,
//! behind the [`RecordStore`] abstraction.
//!
//! A campaign's record store is a directory:
//!
//! * `records.jsonl` / `records-<writer>.jsonl` — one [`CampaignRecord`]
//!   per line, appended shard by shard (a shard's lines are contiguous
//!   within its segment). The unsuffixed segment belongs to the
//!   single-process executor; every distributed worker appends to its own
//!   `-<writer>` segment so concurrent processes never interleave writes;
//! * `checkpoint.jsonl` / `checkpoint-<writer>.jsonl` — one line per
//!   **committed** shard, appended and flushed *after* that shard's
//!   records hit the record segment;
//! * `manifest.toml` — the canonical manifest, so `resume`, `worker` and
//!   `report` need no external input.
//!
//! Crash safety is append-only ordering: a shard is only believed once its
//! checkpoint line exists (in any segment), so a SIGKILL can at worst
//! leave (a) a truncated trailing record line and (b) record lines of an
//! uncheckpointed shard. The loader drops both, and the resumed campaign
//! re-runs exactly the shards without checkpoint lines; a shard that ends
//! up recorded twice (killed between record flush and checkpoint write,
//! then re-run — possibly by a *different* worker) is deduplicated by unit
//! key, keeping one checkpointed copy.
//!
//! [`RecordStore`] is the seam for remote backends: every operation is
//! either a whole-object read, an append to a writer-exclusive segment, or
//! an atomic artifact put — the compare-and-append vocabulary of an
//! object store with conditional writes. [`LocalStore`] is the
//! local-directory backend.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mgrts_core::engine::SolverSpec;
use mgrts_core::portfolio::BackendStat;
use mgrts_fault::FaultFs;

use crate::policy::{BudgetSource, PolicyKind};
use crate::runner::{InstanceOutcome, RunRecord};
use crate::shard::Shard;

/// One campaign run record: a [`RunRecord`] plus full scenario provenance,
/// so reports never need to re-derive which grid cell a line came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRecord {
    /// Content hash of the shard that produced this record.
    pub shard: String,
    /// Index of the grid cell in manifest order.
    pub cell: usize,
    /// Instance index within the cell's stream.
    pub instance: u64,
    /// Campaign-wide instance number (`cell × instances_per_cell +
    /// instance`) — the instance key table reports aggregate on.
    pub global_instance: u64,
    /// Which solver ran.
    pub solver: SolverSpec,
    /// Classified outcome.
    pub outcome: InstanceOutcome,
    /// Wall-clock solve time (µs) — the only field that varies between
    /// replays of the same shard.
    pub time_us: u64,
    /// Utilization ratio r = U/m.
    pub ratio: f64,
    /// Pruned by the r > 1 filter?
    pub filtered: bool,
    /// Resolved processor count.
    pub m: usize,
    /// Task count of the cell.
    pub n: usize,
    /// Maximum period of the cell.
    pub t_max: u64,
    /// Heterogeneous platform?
    pub hetero: bool,
    /// Hyperperiod of the instance (0 when it overflows).
    pub hyperperiod: u64,
    /// The instance's derived seed (replay handle).
    pub seed: u64,
    /// Which execution policy produced this record. `None` on pre-policy
    /// segments (PR ≤ 4), which ran the single-solver path.
    pub policy: Option<PolicyKind>,
    /// Winning backend of a portfolio-race unit (a measurement: arrival
    /// order, normalized away by [`canonical_export`]).
    pub winner: Option<String>,
    /// Where the unit's wall-clock allowance came from. `None` on
    /// pre-policy segments (always the manifest limit back then).
    pub budget_source: Option<BudgetSource>,
    /// Race cancellation latency, microseconds (portfolio units with a
    /// winner only).
    pub cancel_latency_us: Option<u64>,
    /// Per-backend race stats in roster order (portfolio units only —
    /// the loser statistics the race would otherwise discard).
    pub backends: Option<Vec<BackendStat>>,
    /// Search telemetry of the unit's solve (the winner's, for races).
    /// `None` on pre-telemetry segments (PR ≤ 7) and for backends without
    /// counters; absent keys deserialize as `None`, so old JSONL loads
    /// unchanged.
    pub search: Option<mgrts_obs::SearchStats>,
}

impl CampaignRecord {
    /// Project onto the classic bench [`RunRecord`] shape the table
    /// formatters consume.
    #[must_use]
    pub fn to_run_record(&self) -> RunRecord {
        RunRecord {
            instance: self.global_instance,
            solver: self.solver,
            outcome: self.outcome,
            time_us: self.time_us,
            ratio: self.ratio,
            filtered: self.filtered,
        }
    }

    /// The unit key a resumed campaign dedupes on. Race units carry a
    /// deterministic placeholder in `solver` (the roster head), so the key
    /// is replay-stable under every policy.
    #[must_use]
    pub fn unit_key(&self) -> (usize, u64, SolverSpec) {
        (self.cell, self.instance, self.solver)
    }

    /// The record's policy, defaulting pre-policy segments to `Single`.
    #[must_use]
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.unwrap_or(PolicyKind::Single)
    }

    /// The record's budget provenance, defaulting pre-policy segments to
    /// the manifest limit.
    #[must_use]
    pub fn budget_src(&self) -> BudgetSource {
        self.budget_source.unwrap_or(BudgetSource::Manifest)
    }
}

/// One checkpoint line: shard `hash` committed with `records` record lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointLine {
    /// Shard content hash.
    pub shard: String,
    /// Number of records the shard contributed.
    pub records: u64,
    /// Commit wall-clock, milliseconds since the Unix epoch — the sample
    /// `status` derives per-worker throughput (and the campaign ETA) from.
    /// `None` on pre-policy segments.
    pub unix_ms: Option<u64>,
}

/// File names inside a record-store directory.
pub const RECORDS_FILE: &str = "records.jsonl";
/// Checkpoint file name.
pub const CHECKPOINT_FILE: &str = "checkpoint.jsonl";
/// Canonical manifest copy.
pub const MANIFEST_FILE: &str = "manifest.toml";
/// Canonical-export snapshot written by `campaign compact`.
pub const CANONICAL_FILE: &str = "canonical.jsonl";
/// Quarantine ledger: one line per corrupt record/checkpoint line found
/// by the loaders (deduplicated by content hash), instead of silently
/// skipping them.
pub const QUARANTINE_FILE: &str = "quarantine.jsonl";

/// How many fresh segment pairs a [`RecordSink`] tries before giving up
/// on a shard commit (the original pair plus two fail-overs).
const COMMIT_ATTEMPTS: u32 = 3;

/// Display name of the default (unsuffixed) writer segment.
pub const LOCAL_WRITER: &str = "local";

/// One line of the quarantine ledger: a record or checkpoint line that
/// exists in a segment but does not parse — silent corruption, not the
/// expected truncated-tail-after-SIGKILL case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Segment file name the corrupt line was found in.
    pub segment: String,
    /// 1-based line number at quarantine time.
    pub line_no: usize,
    /// FNV-1a hash of (segment, raw line) — the ledger's dedupe key, so
    /// repeated loads do not grow the ledger.
    pub hash: String,
    /// The corrupt line, truncated to 512 bytes.
    pub raw: String,
    /// Wall-clock at quarantine time (ms since the Unix epoch).
    pub unix_ms: u64,
}

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Milliseconds since the Unix epoch (the commit-timestamp clock).
pub(crate) fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// The RecordStore abstraction
// ---------------------------------------------------------------------------

/// Exclusive append handle of one writer's record + checkpoint segments.
///
/// [`commit_shard`](ShardWriter::commit_shard) is the only mutation:
/// records first, checkpoint after, each append flushed before the next
/// step — the crash guarantee every loader relies on.
pub trait ShardWriter {
    /// Commit one completed shard: stream its records, flush them durably,
    /// then append + flush the checkpoint line. A checkpoint line never
    /// precedes its records.
    fn commit_shard(&mut self, shard: &Shard, records: &[CampaignRecord]) -> std::io::Result<()>;
}

/// Abstract record store: append-only record/checkpoint segments (one
/// pair per writer, so concurrent writers never contend on an object),
/// whole-store reads, and atomic artifact puts.
///
/// The local-directory backend is [`LocalStore`]; the trait is the seam
/// for an object-store backend (segment appends become append-or-create
/// conditional writes, artifact puts become PUTs, loads become LISTs +
/// GETs) without touching the executor or the queue.
pub trait RecordStore: Send + Sync {
    /// The stored canonical manifest text.
    fn read_manifest(&self) -> std::io::Result<String>;

    /// Store the canonical manifest text.
    fn write_manifest(&self, toml: &str) -> std::io::Result<()>;

    /// Remove every record / checkpoint segment and derived artifact —
    /// a fresh start. The manifest is left alone.
    fn clear(&self) -> std::io::Result<()>;

    /// Open the exclusive append writer of `writer_id`'s segments. The
    /// empty id names the default single-process segment; worker ids are
    /// `[A-Za-z0-9_-]{1,64}`.
    fn open_writer(&self, writer_id: &str) -> std::io::Result<Box<dyn ShardWriter + Send>>;

    /// Shard hashes with a committed checkpoint line in any segment.
    /// Tolerates truncated trailing lines (the SIGKILL case).
    fn done_shards(&self) -> std::io::Result<HashSet<String>>;

    /// The believable records across all segments: lines that parse,
    /// belong to a checkpointed shard, deduplicated by unit key and
    /// restored to deterministic unit order.
    fn load_records(&self) -> std::io::Result<Vec<CampaignRecord>>;

    /// Committed-shard count per writer, sorted by writer id (status
    /// reporting; the default segment reports as [`LOCAL_WRITER`]).
    fn writer_progress(&self) -> std::io::Result<Vec<(String, u64)>>;

    /// Per-writer commit timestamps (ascending ms since the Unix epoch,
    /// untimestamped pre-policy lines skipped), sorted by writer id — the
    /// raw series behind per-worker throughput and the `status` ETA.
    fn writer_checkpoints(&self) -> std::io::Result<Vec<(String, Vec<u64>)>>;

    /// Atomically publish a derived artifact (e.g. `BENCH_<name>.json`):
    /// concurrent writers may race, but readers never observe a torn
    /// write.
    fn put_artifact(&self, name: &str, contents: &str) -> std::io::Result<()>;
}

/// Reject writer ids that would escape the segment naming scheme.
pub(crate) fn validate_writer_id(id: &str) -> std::io::Result<()> {
    if id.is_empty()
        || id.len() > 64
        || !id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("writer id `{id}`: expected [A-Za-z0-9_-]{{1,64}}"),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Local-directory backend
// ---------------------------------------------------------------------------

/// The local-directory [`RecordStore`]: JSONL segments in one directory
/// (shareable between processes, or between machines over a common
/// mount).
#[derive(Debug, Clone)]
pub struct LocalStore {
    dir: PathBuf,
}

impl LocalStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: &Path) -> std::io::Result<LocalStore> {
        std::fs::create_dir_all(dir)?;
        Ok(LocalStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment files for `stem` ("records" / "checkpoint"), as
    /// (writer id, path) sorted by writer id; the default segment sorts
    /// first with an empty id.
    fn segments(&self, stem: &str) -> std::io::Result<Vec<(String, PathBuf)>> {
        let mut out = Vec::new();
        let plain = self.dir.join(format!("{stem}.jsonl"));
        if plain.exists() {
            out.push((String::new(), plain));
        }
        let prefix = format!("{stem}-");
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".jsonl"))
            {
                out.push((id.to_string(), entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Content hashes already present in the quarantine ledger.
    fn quarantine_ledger(&self) -> HashSet<String> {
        let mut seen = HashSet::new();
        let Ok(text) = std::fs::read_to_string(self.dir.join(QUARANTINE_FILE)) else {
            return seen;
        };
        for line in text.lines() {
            if let Ok(entry) = serde_json::from_str::<QuarantineEntry>(line) {
                seen.insert(entry.hash);
            }
        }
        seen
    }

    /// Record one corrupt line in the quarantine ledger (best-effort,
    /// deduplicated by content hash) and bump the quarantine counter.
    /// `seen` caches the ledger across one load pass.
    fn quarantine_line(
        &self,
        seen: &mut Option<HashSet<String>>,
        segment: &str,
        line_no: usize,
        raw: &str,
    ) {
        let seen = seen.get_or_insert_with(|| self.quarantine_ledger());
        let hash = format!("{:016x}", fnv64(format!("{segment}\n{raw}").as_bytes()));
        if !seen.insert(hash.clone()) {
            return;
        }
        mgrts_obs::global()
            .counter(
                "mgrts_store_quarantined_total",
                "Corrupt JSONL lines quarantined by the record store loaders",
            )
            .inc();
        let entry = QuarantineEntry {
            segment: segment.to_string(),
            line_no,
            hash,
            raw: raw.chars().take(512).collect(),
            unix_ms: unix_ms_now(),
        };
        // The ledger is diagnostic: failing to append must not fail the
        // load that discovered the corruption.
        if let Ok(mut f) = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(QUARANTINE_FILE))
        {
            if let Ok(line) = serde_json::to_string(&entry) {
                let _ = writeln!(f, "{line}");
            }
        }
    }

    /// Iterate the parseable `T` lines of every `stem` segment,
    /// quarantining corrupt lines. A final unterminated line is the
    /// expected SIGKILL truncation and is dropped silently; everything
    /// else that fails to parse goes to the ledger.
    fn scan_segments<T: serde::Deserialize>(
        &self,
        stem: &str,
        mut visit: impl FnMut(&str, T),
    ) -> std::io::Result<()> {
        let mut ledger: Option<HashSet<String>> = None;
        for (_, path) in self.segments(stem)? {
            let text = std::fs::read_to_string(&path)?;
            let terminated = text.ends_with('\n');
            let total = text.lines().count();
            let segment = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or(stem)
                .to_string();
            for (idx, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<T>(line) {
                    Ok(value) => visit(&segment, value),
                    Err(_) => {
                        if idx + 1 == total && !terminated {
                            continue; // truncated tail: expected after SIGKILL
                        }
                        self.quarantine_line(&mut ledger, &segment, idx + 1, line);
                    }
                }
            }
        }
        Ok(())
    }
}

impl RecordStore for LocalStore {
    fn read_manifest(&self) -> std::io::Result<String> {
        std::fs::read_to_string(self.dir.join(MANIFEST_FILE))
    }

    fn write_manifest(&self, toml: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        FaultFs::write(
            "store.manifest",
            &self.dir.join(MANIFEST_FILE),
            toml.as_bytes(),
        )
    }

    fn clear(&self) -> std::io::Result<()> {
        for stem in ["records", "checkpoint"] {
            for (_, path) in self.segments(stem)? {
                std::fs::remove_file(&path)?;
            }
        }
        // Derived artifacts of the previous campaign must not survive a
        // fresh start: a stale BENCH_<oldname>.json would pollute perf
        // trend aggregation over this directory.
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == CANONICAL_FILE
                || name == QUARANTINE_FILE
                || (name.starts_with("BENCH_") && name.ends_with(".json"))
            {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn open_writer(&self, writer_id: &str) -> std::io::Result<Box<dyn ShardWriter + Send>> {
        Ok(Box::new(RecordSink::open_segment(&self.dir, writer_id)?))
    }

    fn done_shards(&self) -> std::io::Result<HashSet<String>> {
        let mut done = HashSet::new();
        self.scan_segments::<CheckpointLine>("checkpoint", |_, cp| {
            done.insert(cp.shard);
        })?;
        Ok(done)
    }

    fn load_records(&self) -> std::io::Result<Vec<CampaignRecord>> {
        let done = self.done_shards()?;
        let mut records: Vec<CampaignRecord> = Vec::new();
        self.scan_segments::<CampaignRecord>("records", |_, rec| {
            if done.contains(&rec.shard) {
                records.push(rec);
            }
        })?;
        // Last occurrence per unit wins (within the deterministic segment
        // iteration order); then restore deterministic unit order. Replays
        // of one shard differ only in wall-clock, so which copy survives
        // never changes a verdict.
        let mut seen = HashSet::new();
        let mut deduped: Vec<CampaignRecord> = Vec::with_capacity(records.len());
        for rec in records.into_iter().rev() {
            if seen.insert(rec.unit_key()) {
                deduped.push(rec);
            }
        }
        deduped.sort_by(|a, b| {
            a.unit_key()
                .0
                .cmp(&b.unit_key().0)
                .then(a.instance.cmp(&b.instance))
                .then(a.solver.name().cmp(b.solver.name()))
        });
        Ok(deduped)
    }

    fn writer_progress(&self) -> std::io::Result<Vec<(String, u64)>> {
        let mut out = Vec::new();
        for (id, path) in self.segments("checkpoint")? {
            let mut shards = 0u64;
            for line in BufReader::new(File::open(path)?).lines() {
                let line = line?;
                if serde_json::from_str::<CheckpointLine>(&line).is_ok() {
                    shards += 1;
                }
            }
            let id = if id.is_empty() {
                LOCAL_WRITER.to_string()
            } else {
                id
            };
            out.push((id, shards));
        }
        Ok(out)
    }

    fn writer_checkpoints(&self) -> std::io::Result<Vec<(String, Vec<u64>)>> {
        let mut out = Vec::new();
        for (id, path) in self.segments("checkpoint")? {
            let mut times = Vec::new();
            for line in BufReader::new(File::open(path)?).lines() {
                let line = line?;
                if let Ok(cp) = serde_json::from_str::<CheckpointLine>(&line) {
                    if let Some(ms) = cp.unix_ms {
                        times.push(ms);
                    }
                }
            }
            times.sort_unstable();
            let id = if id.is_empty() {
                LOCAL_WRITER.to_string()
            } else {
                id
            };
            out.push((id, times));
        }
        Ok(out)
    }

    fn put_artifact(&self, name: &str, contents: &str) -> std::io::Result<()> {
        // The tmp name must be unique per *writer*, not just per process:
        // concurrent worker threads publishing the same artifact would
        // otherwise tear each other's staging file.
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{name}.tmp-{}-{seq}", std::process::id()));
        FaultFs::write("store.artifact", &tmp, contents.as_bytes())?;
        FaultFs::rename("store.artifact", &tmp, &self.dir.join(name))
    }
}

// ---------------------------------------------------------------------------
// Segment writer
// ---------------------------------------------------------------------------

/// Append-only writer half of one segment pair. One per campaign
/// run / worker process; shared behind a lock by the executor's threads.
///
/// Commits retry: when any step of a shard commit fails, the (possibly
/// wedged) segment pair is abandoned and the whole shard is re-committed
/// to a fresh *fail-over* pair (`records-<id>-f1.jsonl`, …). The loaders
/// aggregate all segments and dedupe by unit key, so an abandoned pair's
/// partial lines are harmless — either their shard's checkpoint never
/// landed anywhere (dropped), or the fail-over copy wins the dedupe.
#[derive(Debug)]
pub struct RecordSink {
    dir: PathBuf,
    writer_id: String,
    failover: u32,
    records: BufWriter<File>,
    checkpoint: BufWriter<File>,
}

impl RecordSink {
    /// Open the default (single-process) segment for appending.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        Self::open_segment(dir, "")
    }

    /// Open the segment pair of `writer_id` (empty = default) for
    /// appending. A SIGKILL can leave either file ending in a truncated
    /// line; new appends must not concatenate onto it, so a missing
    /// trailing newline is healed first (the half-line itself stays and is
    /// quarantined by the loader).
    pub fn open_segment(dir: &Path, writer_id: &str) -> std::io::Result<Self> {
        let (records, checkpoint) = Self::open_pair(dir, writer_id)?;
        Ok(RecordSink {
            dir: dir.to_path_buf(),
            writer_id: writer_id.to_string(),
            failover: 0,
            records,
            checkpoint,
        })
    }

    fn open_pair(
        dir: &Path,
        writer_id: &str,
    ) -> std::io::Result<(BufWriter<File>, BufWriter<File>)> {
        if !writer_id.is_empty() {
            validate_writer_id(writer_id)?;
        }
        std::fs::create_dir_all(dir)?;
        let suffix = if writer_id.is_empty() {
            String::new()
        } else {
            format!("-{writer_id}")
        };
        let append = |stem: &str| -> std::io::Result<File> {
            FaultFs::check("sink.open")?;
            let path = dir.join(format!("{stem}{suffix}.jsonl"));
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            let len = file.metadata()?.len();
            if len > 0 {
                use std::io::{Read, Seek, SeekFrom};
                let mut last = [0u8; 1];
                let mut reader = File::open(&path)?;
                reader.seek(SeekFrom::End(-1))?;
                reader.read_exact(&mut last)?;
                if last[0] != b'\n' {
                    file.write_all(b"\n")?;
                    file.flush()?;
                }
            }
            Ok(file)
        };
        Ok((
            BufWriter::new(append("records")?),
            BufWriter::new(append("checkpoint")?),
        ))
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The writer id of the segment pair currently being appended to
    /// (`<base>-f<n>` after `n` fail-overs).
    #[must_use]
    pub fn current_writer_id(&self) -> String {
        if self.failover == 0 {
            self.writer_id.clone()
        } else if self.writer_id.is_empty() {
            format!("f{}", self.failover)
        } else {
            // Keep the fail-over id within the 64-char writer-id limit.
            let base: String = self.writer_id.chars().take(58).collect();
            format!("{base}-f{}", self.failover)
        }
    }

    /// Abandon the current segment pair and open the next fail-over pair.
    fn fail_over(&mut self) -> std::io::Result<()> {
        self.failover += 1;
        let id = self.current_writer_id();
        let (records, checkpoint) = Self::open_pair(&self.dir, &id)?;
        self.records = records;
        self.checkpoint = checkpoint;
        mgrts_obs::global()
            .counter(
                "mgrts_store_segment_failovers_total",
                "Segment pairs abandoned after a failed shard commit",
            )
            .inc();
        Ok(())
    }

    /// One full commit attempt on the current segment pair: records,
    /// flush, sync, checkpoint line, flush, sync — the crash-safety
    /// ordering every loader relies on.
    fn try_commit(&mut self, shard: &Shard, records: &[CampaignRecord]) -> std::io::Result<()> {
        for r in records {
            let line = serde_json::to_string(r).map_err(std::io::Error::other)?;
            FaultFs::write_all("sink.append", &mut self.records, line.as_bytes())?;
            self.records.write_all(b"\n")?;
        }
        FaultFs::flush("sink.flush", &mut self.records)?;
        FaultFs::sync_data("sink.sync", self.records.get_ref())?;
        let line = serde_json::to_string(&CheckpointLine {
            shard: shard.hash.clone(),
            records: records.len() as u64,
            unix_ms: Some(unix_ms_now()),
        })
        .map_err(std::io::Error::other)?;
        FaultFs::write_all("sink.checkpoint", &mut self.checkpoint, line.as_bytes())?;
        self.checkpoint.write_all(b"\n")?;
        FaultFs::flush("sink.flush", &mut self.checkpoint)?;
        FaultFs::sync_data("sink.sync", self.checkpoint.get_ref())?;
        Ok(())
    }
}

impl ShardWriter for RecordSink {
    fn commit_shard(&mut self, shard: &Shard, records: &[CampaignRecord]) -> std::io::Result<()> {
        let mut last_err = None;
        for attempt in 0..COMMIT_ATTEMPTS {
            if attempt > 0 {
                mgrts_obs::global()
                    .counter(
                        "mgrts_store_commit_retries_total",
                        "Shard commits retried on a fail-over segment pair",
                    )
                    .inc();
            }
            match self.try_commit(shard, records) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    last_err = Some(e);
                    // The pair may be wedged (failed sync, half-buffered
                    // line): abandon it and retry on a fresh one. If even
                    // opening the fail-over pair fails, give up now.
                    self.fail_over()?;
                }
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

// ---------------------------------------------------------------------------
// Directory-level convenience wrappers (the historical API)
// ---------------------------------------------------------------------------

/// Shard hashes with a committed checkpoint line in any segment of `dir`.
pub fn load_done_shards(dir: &Path) -> std::io::Result<HashSet<String>> {
    if !dir.exists() {
        return Ok(HashSet::new());
    }
    LocalStore::open(dir)?.done_shards()
}

/// Load the believable records of a store directory: see
/// [`RecordStore::load_records`].
pub fn load_records(dir: &Path) -> std::io::Result<Vec<CampaignRecord>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    LocalStore::open(dir)?.load_records()
}

/// Canonical, replay-stable serialization of a record set: sorted unit
/// order (as produced by [`RecordStore::load_records`]) with every
/// measurement-domain field normalized — wall clock zeroed, and the race /
/// budget measurements (`winner` is arrival order, `backends` carry
/// per-backend timings, `budget_source` depends on which samples a worker
/// had seen) cleared. Two campaigns over the same manifest produce
/// byte-identical canonical exports regardless of interruption,
/// resumption, thread schedule or how many workers drained the queue.
#[must_use]
pub fn canonical_export(records: &[CampaignRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let mut norm = r.clone();
        norm.time_us = 0;
        norm.winner = None;
        norm.budget_source = None;
        norm.cancel_latency_us = None;
        norm.backends = None;
        norm.search = None;
        out.push_str(&serde_json::to_string(&norm).expect("record serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::RunUnit;

    fn rec(shard: &str, cell: usize, instance: u64, time_us: u64) -> CampaignRecord {
        CampaignRecord {
            shard: shard.to_string(),
            cell,
            instance,
            global_instance: cell as u64 * 10 + instance,
            solver: SolverSpec::Csp1,
            outcome: InstanceOutcome::Solved,
            time_us,
            ratio: 0.9,
            filtered: false,
            m: 2,
            n: 4,
            t_max: 5,
            hetero: false,
            hyperperiod: 60,
            seed: 7,
            policy: Some(PolicyKind::Single),
            winner: None,
            budget_source: Some(BudgetSource::Manifest),
            cancel_latency_us: None,
            backends: None,
            search: None,
        }
    }

    fn shard(hash: &str) -> Shard {
        Shard {
            index: 0,
            hash: hash.to_string(),
            units: vec![RunUnit {
                cell: 0,
                instance: 0,
                solver: 0,
            }],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mgrts-sink-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pre_telemetry_jsonl_still_deserializes() {
        // A record line exactly as PR <= 7 builds wrote it: no `search`
        // key anywhere. The telemetry field must load as `None`, not
        // reject the segment.
        let line = concat!(
            r#"{"shard":"ab12","cell":3,"instance":1,"global_instance":31,"#,
            r#""solver":"Csp1","outcome":"Solved","time_us":523,"ratio":0.9,"#,
            r#""filtered":false,"m":2,"n":4,"t_max":5,"hetero":false,"#,
            r#""hyperperiod":60,"seed":7,"policy":"Single","winner":null,"#,
            r#""budget_source":"Manifest","cancel_latency_us":null,"backends":null}"#
        );
        let rec: CampaignRecord = serde_json::from_str(line).unwrap();
        assert_eq!(rec.shard, "ab12");
        assert_eq!(rec.cell, 3);
        assert_eq!(rec.time_us, 523);
        assert!(rec.search.is_none());

        // And the modern writer round-trips a populated block.
        let mut modern = rec.clone();
        modern.search = Some(mgrts_obs::SearchStats {
            solves: 1,
            decisions: 42,
            ..Default::default()
        });
        let json = serde_json::to_string(&modern).unwrap();
        let back: CampaignRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.search.as_ref().map(|s| s.decisions), Some(42));
    }

    #[test]
    fn commit_then_load_round_trips() {
        let dir = tmp("roundtrip");
        let mut sink = RecordSink::open(&dir).unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5), rec("aa", 0, 1, 6)])
            .unwrap();
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].instance, 0);
        assert_eq!(load_done_shards(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncheckpointed_and_truncated_lines_are_dropped() {
        let dir = tmp("partial");
        let mut sink = RecordSink::open(&dir).unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .unwrap();
        // Simulate a SIGKILL mid-shard: records of an uncheckpointed shard
        // plus a truncated trailing line.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(RECORDS_FILE))
            .unwrap();
        let stale = serde_json::to_string(&rec("bb", 1, 0, 9)).unwrap();
        writeln!(raw, "{stale}").unwrap();
        write!(raw, "{}", &stale[..stale.len() / 2]).unwrap();
        drop(raw);
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].shard, "aa");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayed_shard_dedupes_by_unit_key() {
        let dir = tmp("dedupe");
        let mut sink = RecordSink::open(&dir).unwrap();
        // Stale copy: records written but imagine the process died before
        // the checkpoint... then the shard was re-run and committed. Both
        // copies end up in the file; only one survives loading.
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 111)])
            .unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 222)])
            .unwrap();
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].time_us, 222, "later copy wins");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_segments_aggregate_and_dedupe_across_writers() {
        let dir = tmp("segments");
        let store = LocalStore::open(&dir).unwrap();
        let mut w1 = store.open_writer("w1").unwrap();
        let mut w2 = store.open_writer("w2").unwrap();
        w1.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .unwrap();
        w2.commit_shard(&shard("bb"), &[rec("bb", 0, 1, 6)])
            .unwrap();
        // The same shard replayed by another worker: one copy survives.
        w2.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 9)])
            .unwrap();
        let loaded = store.load_records().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(store.done_shards().unwrap().len(), 2);
        let progress = store.writer_progress().unwrap();
        assert_eq!(progress, vec![("w1".to_string(), 1), ("w2".to_string(), 2)]);
        // Directory-level wrappers see the segments too.
        assert_eq!(load_records(&dir).unwrap().len(), 2);
        // Canonical export is identical no matter which copy of `aa` won.
        assert!(canonical_export(&loaded).contains("\"time_us\":0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_ids_are_validated() {
        let dir = tmp("writer-ids");
        let store = LocalStore::open(&dir).unwrap();
        assert!(store.open_writer("ok-id_9").is_ok());
        assert!(store.open_writer("").is_ok(), "empty = default segment");
        for bad in ["a/b", "a b", "..", &*"x".repeat(65)] {
            assert!(store.open_writer(bad).is_err(), "{bad:?} accepted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_removes_segments_but_keeps_manifest() {
        let dir = tmp("clear");
        let store = LocalStore::open(&dir).unwrap();
        store.write_manifest("[campaign]\n").unwrap();
        let mut w = store.open_writer("w1").unwrap();
        w.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)]).unwrap();
        drop(w);
        store.clear().unwrap();
        assert!(store.done_shards().unwrap().is_empty());
        assert!(store.load_records().unwrap().is_empty());
        assert_eq!(store.read_manifest().unwrap(), "[campaign]\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_artifact_is_atomic_rename() {
        let dir = tmp("artifact");
        let store = LocalStore::open(&dir).unwrap();
        store.put_artifact("BENCH_x.json", "{}").unwrap();
        store.put_artifact("BENCH_x.json", "{\"a\":1}").unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("BENCH_x.json")).unwrap(),
            "{\"a\":1}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_fails_over_to_fresh_segment_on_io_fault() {
        let dir = tmp("failover");
        let mut sink = RecordSink::open(&dir).unwrap();
        // First sync attempt fails; the commit must retry on a fail-over
        // pair and succeed overall.
        let _guard = mgrts_fault::install_guarded(
            mgrts_fault::FaultPlan::parse("sink.sync:full:n1").unwrap(),
        );
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .unwrap();
        assert_eq!(sink.current_writer_id(), "f1");
        assert!(dir.join("records-f1.jsonl").exists(), "fail-over segment");
        let loaded = load_records(&dir).unwrap();
        assert_eq!(loaded.len(), 1, "shard committed despite the fault");
        // Subsequent commits stay on the fail-over pair without drama.
        sink.commit_shard(&shard("bb"), &[rec("bb", 0, 1, 6)])
            .unwrap();
        assert_eq!(load_records(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_gives_up_after_exhausting_failovers() {
        let dir = tmp("failover-exhaust");
        let mut sink = RecordSink::open(&dir).unwrap();
        let _guard = mgrts_fault::install_guarded(
            mgrts_fault::FaultPlan::parse("sink.sync:full:always").unwrap(),
        );
        let err = sink
            .commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .expect_err("every pair faults");
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_segment_lines_are_quarantined_once() {
        let dir = tmp("quarantine");
        let mut sink = RecordSink::open(&dir).unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .unwrap();
        // Scribble a complete (newline-terminated) garbage line into the
        // middle of the record segment, then a valid committed shard
        // after it — the garbage is not a truncated tail.
        let mut raw = OpenOptions::new()
            .append(true)
            .open(dir.join(RECORDS_FILE))
            .unwrap();
        writeln!(raw, "###corrupt###").unwrap();
        drop(raw);
        sink.commit_shard(&shard("bb"), &[rec("bb", 0, 1, 6)])
            .unwrap();

        let store = LocalStore::open(&dir).unwrap();
        let loaded = store.load_records().unwrap();
        assert_eq!(loaded.len(), 2, "valid records still load");
        let ledger = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert_eq!(ledger.lines().count(), 1, "one corrupt line ledgered");
        let entry: QuarantineEntry = serde_json::from_str(ledger.lines().next().unwrap()).unwrap();
        assert_eq!(entry.raw, "###corrupt###");
        assert_eq!(entry.segment, RECORDS_FILE);

        // Re-loading does not grow the ledger (hash dedupe).
        store.load_records().unwrap();
        store.load_records().unwrap();
        let ledger = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert_eq!(ledger.lines().count(), 1, "ledger did not grow");

        // A truncated (unterminated) tail is NOT quarantined: that is the
        // expected SIGKILL shape.
        let mut raw = OpenOptions::new()
            .append(true)
            .open(dir.join(RECORDS_FILE))
            .unwrap();
        write!(raw, "{{\"half\":").unwrap();
        drop(raw);
        store.load_records().unwrap();
        let ledger = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert_eq!(ledger.lines().count(), 1, "tail not quarantined");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_line_unbelieves_shard_and_is_quarantined() {
        let dir = tmp("quarantine-cp");
        let mut sink = RecordSink::open(&dir).unwrap();
        sink.commit_shard(&shard("aa"), &[rec("aa", 0, 0, 5)])
            .unwrap();
        // Corrupt the (only) checkpoint line, then land a valid one after
        // it so it is mid-file.
        let text = std::fs::read_to_string(dir.join(CHECKPOINT_FILE)).unwrap();
        std::fs::write(
            dir.join(CHECKPOINT_FILE),
            text.replace("aa", "\u{0}\u{0}").replace('{', "#"),
        )
        .unwrap();
        sink.commit_shard(&shard("bb"), &[rec("bb", 0, 1, 6)])
            .unwrap();
        let store = LocalStore::open(&dir).unwrap();
        let loaded = store.load_records().unwrap();
        assert_eq!(loaded.len(), 1, "shard aa is no longer believed");
        assert_eq!(loaded[0].shard, "bb");
        let ledger = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert_eq!(ledger.lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn canonical_export_zeroes_time_and_is_stable() {
        let a = canonical_export(&[rec("aa", 0, 0, 111)]);
        let b = canonical_export(&[rec("aa", 0, 0, 999)]);
        assert_eq!(a, b, "wall-clock noise must not leak into the export");
        assert!(a.contains("\"time_us\":0"));
    }
}
