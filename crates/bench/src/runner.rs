//! The instance runner: solver roster, parallel execution, raw records.

use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mgrts_core::engine::{Budget, CancelToken, FeasibilitySolver, SolverSpec};
use mgrts_core::heuristics::TaskOrder;
use mgrts_core::solve::{StopReason, Verdict};
use mgrts_core::verify::check_identical;
use rt_gen::Problem;

/// One column of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// CSP1 on the generic randomized solver (Choco stand-in).
    Csp1,
    /// The specialized CSP2 search with a value-ordering heuristic.
    Csp2(TaskOrder),
    /// CSP1 lowered to CNF and solved by the CDCL SAT solver — not a paper
    /// column; used by the extension experiments.
    Csp1Sat,
}

impl SolverKind {
    /// The paper's six solver columns, in Table I order.
    pub const ROSTER: [SolverKind; 6] = [
        SolverKind::Csp1,
        SolverKind::Csp2(TaskOrder::Lexicographic),
        SolverKind::Csp2(TaskOrder::RateMonotonic),
        SolverKind::Csp2(TaskOrder::DeadlineMonotonic),
        SolverKind::Csp2(TaskOrder::PeriodMinusWcet),
        SolverKind::Csp2(TaskOrder::DeadlineMinusWcet),
    ];

    /// Column header matching the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Csp1 => "CSP1",
            SolverKind::Csp2(order) => order.label(),
            SolverKind::Csp1Sat => "SAT",
        }
    }

    /// The engine spec this column reduces to — `SolverKind` is now a thin
    /// factory over [`mgrts_core::engine`].
    #[must_use]
    pub fn spec(self) -> SolverSpec {
        match self {
            SolverKind::Csp1 => SolverSpec::Csp1,
            SolverKind::Csp2(order) => SolverSpec::Csp2(order),
            SolverKind::Csp1Sat => SolverSpec::Csp1Sat,
        }
    }

    /// Build the boxed engine for this column; `seed` feeds the randomized
    /// backends (CSP1's generic strategy), matching the paper's
    /// per-instance reseeding.
    #[must_use]
    pub fn build(self, seed: u64) -> Box<dyn FeasibilitySolver> {
        self.spec().build_seeded(seed)
    }
}

/// Classified outcome of one (instance, solver) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceOutcome {
    /// A feasible schedule was produced (and verified against C1–C4).
    Solved,
    /// Infeasibility was proven within the budget.
    ProvedInfeasible,
    /// The time budget elapsed — the paper's "overrun".
    Overrun,
    /// The encoding exceeded the size guard (CSP1 on large instances).
    TooLarge,
}

/// One row of raw experimental data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Instance index in the generator stream.
    pub instance: u64,
    /// Which solver ran.
    pub solver: SolverKind,
    /// Classified outcome.
    pub outcome: InstanceOutcome,
    /// Wall-clock solve time (µs). For overruns this is ≈ the time limit.
    pub time_us: u64,
    /// Utilization ratio r = U/m of the instance.
    pub ratio: f64,
    /// Whether the instance is pruned by the r > 1 filter (Table II).
    pub filtered: bool,
}

/// Run one solver on one instance with a wall-clock budget. Every produced
/// schedule is verified against the independent C1–C4 checker; a
/// verification failure is a bug and panics loudly.
#[must_use]
pub fn run_one(p: &Problem, solver: SolverKind, time_limit: Duration) -> (InstanceOutcome, u64) {
    let engine = solver.build(p.seed);
    let res = engine
        .solve(
            &p.taskset,
            p.m,
            &Budget::time_limit(time_limit),
            &CancelToken::new(),
        )
        .expect("valid constrained instance");
    let (verdict, elapsed) = (res.verdict, res.stats.elapsed_us);
    let outcome = match &verdict {
        Verdict::Feasible(s) => {
            check_identical(&p.taskset, p.m, s)
                .unwrap_or_else(|e| panic!("solver {solver:?} returned invalid schedule: {e}"));
            InstanceOutcome::Solved
        }
        Verdict::Infeasible => InstanceOutcome::ProvedInfeasible,
        Verdict::Unknown(StopReason::EncodingTooLarge) => InstanceOutcome::TooLarge,
        Verdict::Unknown(_) => InstanceOutcome::Overrun,
    };
    (outcome, elapsed)
}

/// Write raw records as JSON to `path` (the `--json` flag of the
/// experiment binaries).
pub fn save_records(records: &[RunRecord], path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), records)
        .map_err(std::io::Error::other)?;
    Ok(())
}

/// Run a roster of solvers over a problem stream in parallel. Results come
/// back sorted by (instance, roster position) regardless of scheduling.
#[must_use]
pub fn run_corpus(
    problems: &[Problem],
    roster: &[SolverKind],
    time_limit: Duration,
    threads: usize,
    progress: bool,
) -> Vec<RunRecord> {
    let jobs: Vec<(u64, SolverKind)> = (0..problems.len() as u64)
        .flat_map(|i| roster.iter().map(move |&s| (i, s)))
        .collect();
    let next = Mutex::new(0usize);
    let records = Mutex::new(Vec::with_capacity(jobs.len()));
    let done = Mutex::new(0usize);

    crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let idx = {
                    let mut n = next.lock();
                    if *n >= jobs.len() {
                        break;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let (inst, solver) = jobs[idx];
                let p = &problems[inst as usize];
                let (outcome, time_us) = run_one(p, solver, time_limit);
                records.lock().push(RunRecord {
                    instance: inst,
                    solver,
                    outcome,
                    time_us,
                    ratio: p.utilization_ratio(),
                    filtered: p.filtered_out(),
                });
                if progress {
                    let mut d = done.lock();
                    *d += 1;
                    if (*d).is_multiple_of(100) {
                        eprintln!("  … {}/{} runs", *d, jobs.len());
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    let mut out = records.into_inner();
    let pos = |s: SolverKind| roster.iter().position(|&r| r == s).unwrap_or(usize::MAX);
    out.sort_by_key(|r| (r.instance, pos(r.solver)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_gen::{GeneratorConfig, ProblemGenerator};

    #[test]
    fn roster_matches_paper_columns() {
        let labels: Vec<_> = SolverKind::ROSTER.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["CSP1", "CSP2", "+RM", "+DM", "+(T-C)", "+(D-C)"]
        );
    }

    #[test]
    fn run_one_solves_the_running_example() {
        let p = Problem {
            taskset: rt_task::TaskSet::running_example(),
            m: 2,
            seed: 0,
        };
        for solver in SolverKind::ROSTER {
            let (outcome, _) = run_one(&p, solver, Duration::from_secs(5));
            assert_eq!(outcome, InstanceOutcome::Solved, "{solver:?}");
        }
    }

    #[test]
    fn corpus_runs_deterministic_order() {
        let gen = ProblemGenerator::new(
            GeneratorConfig {
                n: 3,
                t_max: 3,
                ..GeneratorConfig::table1()
            },
            1,
        );
        let problems = gen.batch(6);
        let roster = [
            SolverKind::Csp2(TaskOrder::Lexicographic),
            SolverKind::Csp2(TaskOrder::DeadlineMinusWcet),
        ];
        let a = run_corpus(&problems, &roster, Duration::from_secs(1), 4, false);
        let b = run_corpus(&problems, &roster, Duration::from_secs(1), 2, false);
        assert_eq!(a.len(), 12);
        let key = |r: &RunRecord| (r.instance, r.solver, r.outcome);
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>(),
            "outcomes must not depend on thread count"
        );
    }
}
