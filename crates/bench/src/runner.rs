//! The instance runner: solver roster, parallel execution, raw records.

use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mgrts_core::engine::{Budget, CancelToken, FeasibilitySolver, SolverSpec};
use mgrts_core::solve::{StopReason, Verdict};
use mgrts_core::verify::{check_heterogeneous, check_identical};
use rt_gen::Problem;
use rt_platform::Platform;

/// The paper's six solver columns, in Table I order. (Alias of
/// [`SolverSpec::TABLE1_ROSTER`]; kept here because every experiment
/// binary names it.)
pub const ROSTER: [SolverSpec; 6] = SolverSpec::TABLE1_ROSTER;

/// Classified outcome of one (instance, solver) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceOutcome {
    /// A feasible schedule was produced (and verified against C1–C4).
    Solved,
    /// Infeasibility was proven within the budget.
    ProvedInfeasible,
    /// The time budget elapsed — the paper's "overrun".
    Overrun,
    /// The encoding exceeded the size guard (CSP1 on large instances).
    TooLarge,
    /// A campaign-level cancellation preempted the run before a verdict.
    Cancelled,
    /// The backend has no decision procedure for the cell's platform
    /// (e.g. CSP2-on-generic-engine on a heterogeneous machine).
    Unsupported,
    /// The run failed outside the task model — the engine panicked or
    /// errored past its retry limit. Recorded by the serve layer so
    /// tickets settle instead of wedging; campaign shards park
    /// themselves rather than record this.
    Failed,
}

/// One row of raw experimental data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Instance index in the generator stream.
    pub instance: u64,
    /// Which solver ran.
    pub solver: SolverSpec,
    /// Classified outcome.
    pub outcome: InstanceOutcome,
    /// Wall-clock solve time (µs). For overruns this is ≈ the time limit.
    pub time_us: u64,
    /// Utilization ratio r = U/m of the instance.
    pub ratio: f64,
    /// Whether the instance is pruned by the r > 1 filter (Table II).
    pub filtered: bool,
}

/// Map a solver verdict onto the recorded outcome taxonomy (shared by the
/// single-solver runner and the portfolio-race policy).
pub(crate) fn classify(verdict: &Verdict) -> InstanceOutcome {
    match verdict {
        Verdict::Feasible(_) => InstanceOutcome::Solved,
        Verdict::Infeasible => InstanceOutcome::ProvedInfeasible,
        Verdict::Unknown(StopReason::EncodingTooLarge) => InstanceOutcome::TooLarge,
        Verdict::Unknown(StopReason::Cancelled) => InstanceOutcome::Cancelled,
        Verdict::Unknown(StopReason::Unsupported) => InstanceOutcome::Unsupported,
        Verdict::Unknown(_) => InstanceOutcome::Overrun,
    }
}

/// Run one solver on one instance under an explicit budget and cancellation
/// token (the campaign executor's entry point). Every produced schedule is
/// verified against the independent C1–C4 checker; a verification failure
/// is a bug and panics loudly.
#[must_use]
pub fn run_one_budgeted(
    p: &Problem,
    solver: SolverSpec,
    budget: &Budget,
    cancel: &CancelToken,
) -> (InstanceOutcome, u64) {
    run_one_engine(p, &*solver.build_seeded(p.seed), budget, cancel)
}

/// Run a *prebuilt* engine on one instance — the hoisted-construction path
/// resident callers ([`mgrts_core::engine::EnginePool`] users, the serve
/// worker pool) take so solver construction stays out of the per-call
/// path. Semantics are identical to [`run_one_budgeted`], including the
/// independent C1–C4 verification of every produced schedule.
#[must_use]
pub fn run_one_engine(
    p: &Problem,
    engine: &dyn FeasibilitySolver,
    budget: &Budget,
    cancel: &CancelToken,
) -> (InstanceOutcome, u64) {
    let (outcome, time_us, _) = run_one_engine_full(p, engine, budget, cancel);
    (outcome, time_us)
}

/// [`run_one_engine`] that also returns the backend's per-solve search
/// telemetry (`None` for backends without counters) — the shape campaign
/// recording consumes.
#[must_use]
pub fn run_one_engine_full(
    p: &Problem,
    engine: &dyn FeasibilitySolver,
    budget: &Budget,
    cancel: &CancelToken,
) -> (InstanceOutcome, u64, Option<mgrts_obs::SearchStats>) {
    let res = engine
        .solve(&p.taskset, p.m, budget, cancel)
        .unwrap_or_else(|e| panic!("solver {} failed: {e}", engine.name()));
    if let Verdict::Feasible(s) = &res.verdict {
        check_identical(&p.taskset, p.m, s)
            .unwrap_or_else(|e| panic!("solver {} returned invalid schedule: {e}", engine.name()));
    }
    (classify(&res.verdict), res.stats.elapsed_us, res.search)
}

/// Run one solver on one instance over a heterogeneous platform (the
/// campaign grid's heterogeneity dimension). Schedules are verified with
/// the heterogeneous C1–C4 checker.
#[must_use]
pub fn run_one_hetero(
    p: &Problem,
    platform: &Platform,
    solver: SolverSpec,
    budget: &Budget,
    cancel: &CancelToken,
) -> (InstanceOutcome, u64) {
    run_one_hetero_engine(p, platform, &*solver.build_seeded(p.seed), budget, cancel)
}

/// Heterogeneous analogue of [`run_one_engine`]: a prebuilt engine, the
/// heterogeneous C1–C4 checker.
#[must_use]
pub fn run_one_hetero_engine(
    p: &Problem,
    platform: &Platform,
    engine: &dyn FeasibilitySolver,
    budget: &Budget,
    cancel: &CancelToken,
) -> (InstanceOutcome, u64) {
    let (outcome, time_us, _) = run_one_hetero_engine_full(p, platform, engine, budget, cancel);
    (outcome, time_us)
}

/// [`run_one_hetero_engine`] that also returns the backend's per-solve
/// search telemetry.
#[must_use]
pub fn run_one_hetero_engine_full(
    p: &Problem,
    platform: &Platform,
    engine: &dyn FeasibilitySolver,
    budget: &Budget,
    cancel: &CancelToken,
) -> (InstanceOutcome, u64, Option<mgrts_obs::SearchStats>) {
    let res = engine
        .solve_hetero(&p.taskset, platform, budget, cancel)
        .expect("valid constrained instance");
    if let Verdict::Feasible(s) = &res.verdict {
        check_heterogeneous(&p.taskset, platform, s).unwrap_or_else(|e| {
            panic!(
                "solver {} returned invalid hetero schedule: {e}",
                engine.name()
            )
        });
    }
    (classify(&res.verdict), res.stats.elapsed_us, res.search)
}

/// Run one solver on one instance with a wall-clock budget (the historical
/// single-run entry point).
#[must_use]
pub fn run_one(p: &Problem, solver: SolverSpec, time_limit: Duration) -> (InstanceOutcome, u64) {
    run_one_budgeted(
        p,
        solver,
        &Budget::time_limit(time_limit),
        &CancelToken::new(),
    )
}

/// Write raw records as JSON to `path` (the `--json` flag of the
/// experiment binaries).
pub fn save_records(records: &[RunRecord], path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), records)
        .map_err(std::io::Error::other)?;
    Ok(())
}

/// Run a roster of solvers over a problem stream in parallel. Results come
/// back sorted by (instance, roster position) regardless of scheduling.
#[must_use]
pub fn run_corpus(
    problems: &[Problem],
    roster: &[SolverSpec],
    time_limit: Duration,
    threads: usize,
    progress: bool,
) -> Vec<RunRecord> {
    let jobs: Vec<(u64, SolverSpec)> = (0..problems.len() as u64)
        .flat_map(|i| roster.iter().map(move |&s| (i, s)))
        .collect();
    let next = Mutex::new(0usize);
    let records = Mutex::new(Vec::with_capacity(jobs.len()));
    let done = Mutex::new(0usize);

    crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let idx = {
                    let mut n = next.lock();
                    if *n >= jobs.len() {
                        break;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let (inst, solver) = jobs[idx];
                let p = &problems[inst as usize];
                let (outcome, time_us) = run_one(p, solver, time_limit);
                records.lock().push(RunRecord {
                    instance: inst,
                    solver,
                    outcome,
                    time_us,
                    ratio: p.utilization_ratio(),
                    filtered: p.filtered_out(),
                });
                if progress {
                    let mut d = done.lock();
                    *d += 1;
                    if (*d).is_multiple_of(100) {
                        eprintln!("  … {}/{} runs", *d, jobs.len());
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    let mut out = records.into_inner();
    let pos = |s: SolverSpec| roster.iter().position(|&r| r == s).unwrap_or(usize::MAX);
    out.sort_by_key(|r| (r.instance, pos(r.solver)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrts_core::heuristics::TaskOrder;
    use rt_gen::{GeneratorConfig, ProblemGenerator};

    #[test]
    fn roster_matches_paper_columns() {
        let labels: Vec<_> = ROSTER.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["CSP1", "CSP2", "+RM", "+DM", "+(T-C)", "+(D-C)"]
        );
    }

    #[test]
    fn run_one_solves_the_running_example() {
        let p = Problem {
            taskset: rt_task::TaskSet::running_example(),
            m: 2,
            seed: 0,
        };
        for solver in ROSTER {
            let (outcome, _) = run_one(&p, solver, Duration::from_secs(5));
            assert_eq!(outcome, InstanceOutcome::Solved, "{solver:?}");
        }
    }

    #[test]
    fn pre_cancelled_run_reports_cancelled() {
        // A dense instance that needs real search: a raised token classifies
        // as Cancelled, never as a (wrong) verdict.
        let p = Problem {
            taskset: rt_task::TaskSet::from_ocdt(&[
                (0, 2, 3, 4),
                (0, 3, 4, 4),
                (1, 2, 3, 4),
                (0, 1, 2, 2),
                (0, 2, 4, 4),
                (0, 1, 3, 3),
            ]),
            m: 2,
            seed: 0,
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let (outcome, _) = run_one_budgeted(
            &p,
            SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet),
            &Budget::unlimited(),
            &cancel,
        );
        assert!(
            matches!(
                outcome,
                InstanceOutcome::Cancelled
                    | InstanceOutcome::Solved
                    | InstanceOutcome::ProvedInfeasible
            ),
            "{outcome:?}"
        );
    }

    #[test]
    fn corpus_runs_deterministic_order() {
        let gen = ProblemGenerator::new(
            GeneratorConfig {
                n: 3,
                t_max: 3,
                ..GeneratorConfig::table1()
            },
            1,
        );
        let problems = gen.batch(6);
        let roster = [
            SolverSpec::Csp2(TaskOrder::Lexicographic),
            SolverSpec::Csp2(TaskOrder::DeadlineMinusWcet),
        ];
        let a = run_corpus(&problems, &roster, Duration::from_secs(1), 4, false);
        let b = run_corpus(&problems, &roster, Duration::from_secs(1), 2, false);
        assert_eq!(a.len(), 12);
        let key = |r: &RunRecord| (r.instance, r.solver, r.outcome);
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>(),
            "outcomes must not depend on thread count"
        );
    }
}
