//! Minimal flag parsing shared by the experiment binaries (kept
//! dependency-free: the offline crate set has no CLI parser).

use std::path::PathBuf;
use std::time::Duration;

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of random instances (paper: 500 for Tables I–III, 100 per n
    /// for Table IV).
    pub instances: u64,
    /// Per-solve wall-clock limit. The paper used 30 s on a 2.4 GHz
    /// Core2Quad; the default here is scaled down so the full corpus runs
    /// in minutes — pass `--time-limit-ms 30000` to replicate verbatim.
    pub time_limit: Duration,
    /// Master seed for the problem stream.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Optional path for the raw per-run records as JSON (re-aggregation
    /// without re-solving).
    pub json: Option<PathBuf>,
    /// Record-store directory for the campaign engine (default
    /// `target/campaigns/<name>`).
    pub out: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            instances: 500,
            time_limit: Duration::from_millis(1000),
            seed: 2009,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            json: None,
            out: None,
        }
    }
}

impl Args {
    /// Parse `--instances N --time-limit-ms MS --seed S --threads T` from
    /// the process arguments; unknown flags abort with a usage message.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--instances" => args.instances = value("--instances").parse().expect("u64"),
                "--time-limit-ms" => {
                    args.time_limit =
                        Duration::from_millis(value("--time-limit-ms").parse().expect("u64"));
                }
                "--seed" => args.seed = value("--seed").parse().expect("u64"),
                "--threads" => args.threads = value("--threads").parse().expect("usize"),
                "--json" => args.json = Some(PathBuf::from(value("--json"))),
                "--out" => args.out = Some(PathBuf::from(value("--out"))),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --instances N  --time-limit-ms MS  --seed S  --threads T  --json FILE  --out DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; see --help"),
            }
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = Args::parse_from(Vec::<String>::new());
        assert_eq!(a.instances, 500);
        assert_eq!(a.seed, 2009);
        assert_eq!(a.time_limit, Duration::from_millis(1000));
        assert!(a.threads >= 1);
    }

    #[test]
    fn overrides() {
        let a = Args::parse_from(
            [
                "--instances",
                "10",
                "--time-limit-ms",
                "50",
                "--seed",
                "7",
                "--threads",
                "2",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(a.instances, 10);
        assert_eq!(a.time_limit, Duration::from_millis(50));
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 2);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        let _ = Args::parse_from(["--bogus".to_string()]);
    }
}
