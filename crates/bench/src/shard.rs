//! Deterministic shard planning for experiment campaigns.
//!
//! A campaign manifest expands to a *grid* of [`Cell`]s (scenario points);
//! each cell contributes `instances_per_cell × roster` run units. The
//! planner chunks the unit stream into [`Shard`]s — the campaign's unit of
//! scheduling, checkpointing and resumption — and names each shard by a
//! **content hash** over everything that determines its work: the campaign
//! fingerprint (seed, time limit, grid, roster) plus the shard's own unit
//! list. Replaying a shard therefore reproduces the same hash, which is
//! what lets a resumed campaign dedupe work it already committed.

use mgrts_core::engine::SolverSpec;
use rt_gen::{GeneratorConfig, MSpec, ParamOrder};

/// Processor-count rule of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellM {
    /// Fixed `m` (Table I style).
    Fixed(usize),
    /// `m = ⌈Σ Ci/Ti⌉`, the minimum passing the utilization filter
    /// (Table IV style; `m = "auto"` in the manifest).
    Auto,
}

/// One point of the scenario grid: task count × processor rule × maximum
/// period × utilization band × platform heterogeneity.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Number of tasks `n`.
    pub n: usize,
    /// Processor-count rule.
    pub m: CellM,
    /// Maximum period `Tmax`.
    pub t_max: u64,
    /// Optional utilization-ratio band `[lo, hi)`; instances are drawn from
    /// the cell stream by deterministic rejection sampling.
    pub band: Option<(f64, f64)>,
    /// Run on a random heterogeneous rate matrix instead of identical
    /// processors.
    pub hetero: bool,
}

impl Cell {
    /// Canonical cell tag: part of shard hashes, progress lines and record
    /// provenance.
    #[must_use]
    pub fn tag(&self) -> String {
        let m = match self.m {
            CellM::Fixed(m) => m.to_string(),
            CellM::Auto => "auto".to_string(),
        };
        let band = match self.band {
            Some((lo, hi)) => format!("{lo}..{hi}"),
            None => "*".to_string(),
        };
        format!(
            "n={}/m={}/tmax={}/u={}/hetero={}",
            self.n, m, self.t_max, band, self.hetero
        )
    }

    /// The generator configuration this cell samples from.
    #[must_use]
    pub fn generator_config(&self) -> GeneratorConfig {
        GeneratorConfig {
            n: self.n,
            m: match self.m {
                CellM::Fixed(m) => MSpec::Fixed(m),
                CellM::Auto => MSpec::MinUtilization,
            },
            t_max: self.t_max,
            order: ParamOrder::DeadlineFirst,
            synchronous: false,
        }
    }
}

/// How the unit stream enumerates the solver axis — decided by the
/// campaign's execution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// One unit per `(cell, instance, solver)` (the `single` policy).
    PerSolver,
    /// One unit per `(cell, instance)`, solver index pinned to 0 (racing
    /// policies: the whole roster runs inside the unit).
    PerInstance,
}

/// One (cell, instance, solver) run — the atom of campaign work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunUnit {
    /// Index into the manifest's cell list.
    pub cell: usize,
    /// Instance index within the cell's stream.
    pub instance: u64,
    /// Index into the manifest's solver roster.
    pub solver: usize,
}

/// A content-hashed chunk of run units: the unit of scheduling and
/// checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Position in the campaign's deterministic shard order.
    pub index: u64,
    /// Content hash (16 hex digits) over the campaign fingerprint and the
    /// shard's unit list.
    pub hash: String,
    /// The units, in deterministic (cell, instance, solver) order.
    pub units: Vec<RunUnit>,
}

/// FNV-1a over a byte string; the stable, dependency-free content hash
/// behind shard identities.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Split a campaign into shards: enumerate run units in (cell, instance,
/// solver) order — or (cell, instance) order with the solver axis
/// collapsed for racing policies — chunk into `shard_size` units, and hash
/// each chunk together with the campaign `fingerprint`.
#[must_use]
pub fn plan_shards(
    cells: &[Cell],
    instances_per_cell: u64,
    roster: &[SolverSpec],
    shard_size: usize,
    fingerprint: &str,
    shape: PlanShape,
) -> Vec<Shard> {
    let solver_slots = match shape {
        PlanShape::PerSolver => roster.len(),
        PlanShape::PerInstance => 1,
    };
    let mut units = Vec::new();
    for (ci, _) in cells.iter().enumerate() {
        for i in 0..instances_per_cell {
            for si in 0..solver_slots {
                units.push(RunUnit {
                    cell: ci,
                    instance: i,
                    solver: si,
                });
            }
        }
    }
    units
        .chunks(shard_size.max(1))
        .enumerate()
        .map(|(index, chunk)| {
            let mut desc = format!("{fingerprint}\nshard {index}\n");
            for u in chunk {
                let label = match shape {
                    PlanShape::PerSolver => roster[u.solver].name(),
                    PlanShape::PerInstance => "race",
                };
                desc.push_str(&format!(
                    "{}|{}|{}\n",
                    cells[u.cell].tag(),
                    u.instance,
                    label
                ));
            }
            Shard {
                index: index as u64,
                hash: format!("{:016x}", fnv1a(desc.as_bytes())),
                units: chunk.to_vec(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<Cell> {
        vec![
            Cell {
                n: 4,
                m: CellM::Fixed(2),
                t_max: 5,
                band: None,
                hetero: false,
            },
            Cell {
                n: 6,
                m: CellM::Auto,
                t_max: 5,
                band: Some((0.5, 1.5)),
                hetero: true,
            },
        ]
    }

    #[test]
    fn planning_is_deterministic_and_covers_every_unit() {
        let roster = [SolverSpec::Csp1, SolverSpec::Csp1Sat];
        let a = plan_shards(&cells(), 3, &roster, 4, "fp", PlanShape::PerSolver);
        let b = plan_shards(&cells(), 3, &roster, 4, "fp", PlanShape::PerSolver);
        assert_eq!(a, b);
        let total: usize = a.iter().map(|s| s.units.len()).sum();
        assert_eq!(total, 2 * 3 * 2);
        // Ceil division: 12 units over shards of 4.
        assert_eq!(a.len(), 3);
        // Hashes are pairwise distinct and stable in length.
        for s in &a {
            assert_eq!(s.hash.len(), 16);
        }
        assert_ne!(a[0].hash, a[1].hash);
    }

    #[test]
    fn hash_depends_on_fingerprint_and_content() {
        let roster = [SolverSpec::Csp1];
        let a = plan_shards(&cells(), 2, &roster, 2, "fp-a", PlanShape::PerSolver);
        let b = plan_shards(&cells(), 2, &roster, 2, "fp-b", PlanShape::PerSolver);
        assert_ne!(a[0].hash, b[0].hash);
        let c = plan_shards(
            &cells(),
            2,
            &[SolverSpec::Csp1Sat],
            2,
            "fp-a",
            PlanShape::PerSolver,
        );
        assert_ne!(a[0].hash, c[0].hash);
    }

    #[test]
    fn per_instance_shape_collapses_the_solver_axis() {
        let roster = [SolverSpec::Csp1, SolverSpec::Csp1Sat];
        let per_solver = plan_shards(&cells(), 3, &roster, 4, "fp", PlanShape::PerSolver);
        let per_instance = plan_shards(&cells(), 3, &roster, 4, "fp", PlanShape::PerInstance);
        let total = |plan: &[Shard]| plan.iter().map(|s| s.units.len()).sum::<usize>();
        assert_eq!(total(&per_solver), 2 * 3 * 2);
        assert_eq!(total(&per_instance), 2 * 3);
        assert!(per_instance
            .iter()
            .flat_map(|s| &s.units)
            .all(|u| u.solver == 0));
        // Same fingerprint, different shape ⇒ different hashes (a policy
        // switch re-shards even before the fingerprint suffix kicks in).
        assert_ne!(per_solver[0].hash, per_instance[0].hash);
    }

    #[test]
    fn cell_tags_are_canonical() {
        let cs = cells();
        assert_eq!(cs[0].tag(), "n=4/m=2/tmax=5/u=*/hetero=false");
        assert_eq!(cs[1].tag(), "n=6/m=auto/tmax=5/u=0.5..1.5/hetero=true");
    }

    #[test]
    fn generator_config_mirrors_the_cell() {
        let cfg = cells()[1].generator_config();
        assert_eq!(cfg.n, 6);
        assert_eq!(cfg.m, MSpec::MinUtilization);
        assert_eq!(cfg.t_max, 5);
    }
}
