//! `mgrts serve` — the resident feasibility service.
//!
//! Turns the batch engine into a long-running server speaking
//! line-delimited JSON over TCP: each request line is one JSON object,
//! each response line is one JSON object, connections stay open for any
//! number of exchanges. The server composes the pieces the batch stack
//! already proved out:
//!
//! * **Engine reuse** — solvers come from a shared
//!   [`EnginePool`], so construction happens once per `(spec, seed)`
//!   instead of once per request (the hoist ROADMAP item 1 calls out).
//! * **Response cache** — every settled solve is committed to the
//!   [`RecordStore`] as a single-unit shard keyed by the request's
//!   content hash; repeats are answered from the store (surviving
//!   restarts) with `"cache":"hit"`.
//! * **In-flight dedupe** — concurrent requests for the same instance
//!   coalesce onto one solve; joiners report `"cache":"inflight"`.
//! * **Admission control** — small requests run on a bounded worker
//!   pool behind a bounded queue; a full queue is an explicit
//!   `overloaded` rejection, never unbounded memory.
//! * **Queue spill** — requests above a size/budget threshold are
//!   published as store artifacts, claimed under PR-3 [`LeaseBoard`]
//!   leases by background heavy workers, and resolved by `poll`
//!   requests against the returned ticket.
//!
//! ## Protocol
//!
//! Requests (`type` selects the verb):
//!
//! ```json
//! {"type":"solve","taskset":{"tasks":[...]},"m":2,
//!  "solver":"csp2-dc","budget_ms":1000,"seed":1}
//! {"type":"solve","taskset":{"tasks":[...]},"m":2,"policy":"portfolio-race"}
//! {"type":"poll","ticket":"00f3ab..."}
//! {"type":"stats"}
//! {"type":"metrics"}
//! {"type":"shutdown"}
//! ```
//!
//! Omitting both `solver` and `policy` races the default portfolio.
//! Responses are `{"type":"result",...}` (with a `cache` field of
//! `hit` / `miss` / `inflight`), `{"type":"ticket",...}` for spilled
//! requests, `{"type":"poll",...}` (status `done`, `pending`, or the
//! terminal `failed` once a job exhausted its panic retries),
//! `{"type":"stats",...}`,
//! `{"type":"overloaded",...}` on admission rejection and
//! `{"type":"error",...}` for malformed input — a malformed line gets a
//! structured error, not a disconnect. A `metrics` request answers with
//! the server's counters, queue gauges, solve-latency histograms and
//! per-backend search telemetry in Prometheus text exposition format
//! (in the `body` field).

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use mgrts_core::engine::{Budget, CancelToken, EnginePool, PlatformSpec, SolverSpec};
use mgrts_obs::{flight, Counter, FlightRecorder, Gauge, Histogram, Registry};
use rt_gen::Problem;
use rt_task::TaskSet;

use crate::campaign::panic_reason;
use crate::policy::{race_roster, BudgetSource, PolicyKind};
use crate::queue::{list_leases, now_unix_ms, LeaseBoard, LEASE_DIR};
use crate::runner::{classify, run_one_engine_full, InstanceOutcome};
use crate::shard::{fnv1a, RunUnit, Shard};
use crate::sink::{CampaignRecord, LocalStore, RecordStore, ShardWriter};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables of one server instance (the CLI flags of `mgrts serve`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077`. Port `0` binds an
    /// ephemeral port (tests); [`Server::addr`] reports the real one.
    pub addr: String,
    /// Record-store directory used as the response cache and the spill
    /// queue (created if missing).
    pub data_dir: PathBuf,
    /// Light worker pool size (small-request solvers).
    pub workers: usize,
    /// Admission control: pending small requests beyond this are
    /// rejected with an `overloaded` response.
    pub queue_cap: usize,
    /// Per-request wall-clock budget (ms) when the request names none.
    pub default_budget_ms: u64,
    /// Requests with more tasks than this spill to the heavy queue.
    pub spill_tasks: usize,
    /// Requests with a budget above this (ms) spill to the heavy queue.
    pub spill_budget_ms: u64,
    /// Testing knob: artificial delay (ms) inserted before every actual
    /// solve, so cache/inflight behaviour is deterministically
    /// observable. `0` in production.
    pub solve_delay_ms: u64,
    /// Slow-request threshold (ms): a solve at or above this logs one
    /// diagnosable line to stdout and dumps the flight-recorder timeline
    /// as a store artifact. `0` disables both.
    pub slow_ms: u64,
    /// Panicking or erroring solves retried this many times before the
    /// ticket settles as `failed` (tickets never wedge on a poison job).
    pub job_retries: u32,
    /// Per-request deadline slack (ms): how long past its effective
    /// budget a waiting connection holds on before giving up server-side.
    pub deadline_slack_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".to_string(),
            data_dir: PathBuf::from("target/serve"),
            workers: 4,
            queue_cap: 64,
            default_budget_ms: 1_000,
            spill_tasks: 12,
            spill_budget_ms: 10_000,
            solve_delay_ms: 0,
            slow_ms: 0,
            job_retries: 2,
            deadline_slack_ms: 30_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// How a solve request wants to be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestMode {
    /// One named backend.
    Single(SolverSpec),
    /// Race [`SolverSpec::DEFAULT_PORTFOLIO`].
    Race,
}

impl RequestMode {
    /// Stable tag used in the content hash and in responses.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RequestMode::Single(spec) => spec.name(),
            RequestMode::Race => "portfolio-race",
        }
    }
}

/// One parsed `solve` request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The instance to decide.
    pub taskset: TaskSet,
    /// Processor count.
    pub m: usize,
    /// Seed for the randomized backends.
    pub seed: u64,
    /// Single backend or portfolio race.
    pub mode: RequestMode,
    /// Per-request budget override (ms).
    pub budget_ms: Option<u64>,
}

impl SolveRequest {
    /// The request's effective wall-clock budget under `default_ms`.
    #[must_use]
    pub fn effective_budget_ms(&self, default_ms: u64) -> u64 {
        self.budget_ms.unwrap_or(default_ms)
    }

    /// Serialize back to the wire shape (the spill artifact format).
    #[must_use]
    pub fn to_value(&self) -> Value {
        use serde::Serialize;
        let mut fields = vec![
            ("type".to_string(), Value::String("solve".to_string())),
            ("taskset".to_string(), self.taskset.to_value()),
            ("m".to_string(), Value::UInt(self.m as u64)),
            ("seed".to_string(), Value::UInt(self.seed)),
        ];
        match &self.mode {
            RequestMode::Single(spec) => {
                fields.push(("solver".to_string(), Value::String(spec.name().to_string())))
            }
            RequestMode::Race => fields.push((
                "policy".to_string(),
                Value::String("portfolio-race".to_string()),
            )),
        }
        if let Some(ms) = self.budget_ms {
            fields.push(("budget_ms".to_string(), Value::UInt(ms)));
        }
        Value::Object(fields)
    }
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Decide an instance.
    Solve(SolveRequest),
    /// Resolve a spill ticket.
    Poll {
        /// The ticket string from an earlier `ticket` response.
        ticket: String,
    },
    /// Server counters snapshot.
    Stats,
    /// Prometheus text exposition of the server's metrics.
    Metrics,
    /// Graceful shutdown.
    Shutdown,
}

/// Parse one request line. Errors are protocol errors to send back as
/// structured `error` responses — never a reason to drop the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    use serde::Deserialize;
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let Some(kind) = v["type"].as_str() else {
        return Err("missing request field `type`".to_string());
    };
    match kind {
        "solve" => {
            let taskset = match v.get("taskset") {
                Some(ts) => TaskSet::from_value(ts).map_err(|e| format!("bad `taskset`: {e}"))?,
                None => return Err("solve request needs a `taskset`".to_string()),
            };
            let Some(m) = v["m"].as_u64() else {
                return Err("solve request needs a processor count `m`".to_string());
            };
            if m == 0 {
                return Err("`m` must be positive".to_string());
            }
            let seed = v["seed"].as_u64().unwrap_or(1);
            let budget_ms = v["budget_ms"].as_u64();
            let solver = match v["solver"].as_str() {
                Some(name) => Some(name.parse::<SolverSpec>()?),
                None => None,
            };
            let mode = match v["policy"].as_str() {
                Some("single") => {
                    RequestMode::Single(solver.unwrap_or(SolverSpec::DEFAULT_PORTFOLIO[0]))
                }
                Some("portfolio-race" | "portfolio" | "race") => RequestMode::Race,
                Some(other) => {
                    return Err(format!(
                        "unknown policy `{other}` (expected single|portfolio-race)"
                    ))
                }
                None => match solver {
                    Some(spec) => RequestMode::Single(spec),
                    None => RequestMode::Race,
                },
            };
            Ok(Request::Solve(SolveRequest {
                taskset,
                m: m as usize,
                seed,
                mode,
                budget_ms,
            }))
        }
        "poll" => match v["ticket"].as_str() {
            Some(t) => Ok(Request::Poll {
                ticket: t.to_string(),
            }),
            None => Err("poll request needs a `ticket`".to_string()),
        },
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown request type `{other}` (expected solve|poll|stats|metrics|shutdown)"
        )),
    }
}

/// Content hash of a solve request: the canonical task-set rendering plus
/// every field that changes the answer (platform size, execution mode,
/// effective budget, seed). Doubles as the cache key, the spill ticket
/// and the stored record's instance id.
#[must_use]
pub fn request_key(req: &SolveRequest, default_budget_ms: u64) -> u64 {
    use serde::Serialize;
    let canon = serde_json::to_string(&req.taskset.to_value()).unwrap_or_default();
    let tail = format!(
        "|m={}|mode={}|budget_ms={}|seed={}",
        req.m,
        req.mode.tag(),
        req.effective_budget_ms(default_budget_ms),
        req.seed
    );
    fnv1a(format!("{canon}{tail}").as_bytes())
}

/// Render a request key as the wire ticket (16 hex digits — the same
/// shape as a shard content hash).
#[must_use]
pub fn ticket_of(key: u64) -> String {
    format!("{key:016x}")
}

/// Parse a wire ticket back to the request key.
pub fn parse_ticket(ticket: &str) -> Result<u64, String> {
    if ticket.len() != 16 {
        return Err(format!("bad ticket `{ticket}`: expected 16 hex digits"));
    }
    u64::from_str_radix(ticket, 16).map_err(|_| format!("bad ticket `{ticket}`: not hex"))
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

/// Structured protocol error (the response to malformed lines).
#[must_use]
pub fn error_response(msg: &str) -> Value {
    obj(vec![("type", s("error")), ("error", s(msg))])
}

/// Render a response [`Value`] as one wire line (no trailing newline).
#[must_use]
pub fn render_response(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "{\"type\":\"error\"}".to_string())
}

// ---------------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------------

/// One settled solve, as cached in memory and in the record store.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Classified outcome.
    pub outcome: InstanceOutcome,
    /// Solve wall-clock, microseconds.
    pub time_us: u64,
    /// Backend that produced the verdict (race winner, or the single
    /// solver; the mode tag when nobody concluded).
    pub solver: String,
}

impl CachedResult {
    fn response(&self, key: u64, cache: &str) -> Value {
        use serde::Serialize;
        obj(vec![
            ("type", s("result")),
            ("ticket", s(ticket_of(key))),
            ("outcome", self.outcome.to_value()),
            ("time_us", Value::UInt(self.time_us)),
            ("solver", s(self.solver.clone())),
            ("cache", s(cache)),
        ])
    }
}

/// One consistent snapshot of the serving counters and queue gauges (the
/// `stats` response, and the machine-readable surface the serve-smoke CI
/// job asserts against).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Request lines accepted (any verb).
    pub requests: u64,
    /// Actual engine executions (the dedupe instrumentation: coalesced
    /// and cached requests do not increment this).
    pub solves: u64,
    /// Answers served from the record-store cache.
    pub cache_hits: u64,
    /// Solves actually performed for a requester (cache misses).
    pub cache_misses: u64,
    /// Requests coalesced onto an in-flight solve.
    pub inflight_hits: u64,
    /// Admission-control rejections.
    pub rejected: u64,
    /// Requests spilled to the heavy queue.
    pub spilled: u64,
    /// Poll requests answered.
    pub polls: u64,
    /// Malformed or invalid request lines.
    pub errors: u64,
    /// Jobs settled as `failed` after exhausting their panic retries.
    pub failed: u64,
    /// Current small-request queue length (gauge, tracked at push/pop).
    pub queue_depth: u64,
    /// Current heavy-queue length (gauge, tracked at push/pop).
    pub heavy_depth: u64,
}

/// The server's counters behind one mutex, so a `stats` response reports
/// counters and queue-depth gauges from a single consistent snapshot
/// (they used to be separate atomics sampled at different instants: a
/// rejection could be counted while the queue it rejected from still
/// read as full-length, or vice versa). The lock is a leaf — it is taken
/// for a handful of integer writes and never while waiting on another
/// lock.
#[derive(Debug, Default)]
pub struct ServeStats {
    inner: Mutex<ServeCounters>,
}

impl ServeStats {
    fn with(&self, f: impl FnOnce(&mut ServeCounters)) {
        f(&mut self.inner.lock().unwrap_or_else(|e| e.into_inner()));
    }

    /// One consistent snapshot of every counter and gauge.
    #[must_use]
    pub fn snapshot(&self) -> ServeCounters {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn response(&self, engines: usize) -> Value {
        let c = self.snapshot();
        obj(vec![
            ("type", s("stats")),
            ("requests", Value::UInt(c.requests)),
            ("solves", Value::UInt(c.solves)),
            ("cache_hits", Value::UInt(c.cache_hits)),
            ("cache_misses", Value::UInt(c.cache_misses)),
            ("inflight_hits", Value::UInt(c.inflight_hits)),
            ("rejected", Value::UInt(c.rejected)),
            ("spilled", Value::UInt(c.spilled)),
            ("polls", Value::UInt(c.polls)),
            ("errors", Value::UInt(c.errors)),
            ("failed", Value::UInt(c.failed)),
            ("queue_depth", Value::UInt(c.queue_depth)),
            ("heavy_depth", Value::UInt(c.heavy_depth)),
            ("engines_cached", Value::UInt(engines as u64)),
        ])
    }
}

/// The server's metrics-exposition surface: an [`mgrts_obs::Registry`]
/// plus pre-registered handles for the hot instruments. Counters and
/// gauges mirror a [`ServeCounters`] snapshot at scrape time (so the
/// exposition inherits the snapshot's consistency); the latency
/// histograms are observed live on the solve path.
struct ServeMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    solves: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    inflight_hits: Arc<Counter>,
    rejected: Arc<Counter>,
    spilled: Arc<Counter>,
    polls: Arc<Counter>,
    errors: Arc<Counter>,
    failed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    heavy_depth: Arc<Gauge>,
    engines_cached: Arc<Gauge>,
    solve_duration_us: Arc<Histogram>,
    request_duration_us: Arc<Histogram>,
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        ServeMetrics {
            requests: c("mgrts_serve_requests_total", "Request lines accepted"),
            solves: c("mgrts_serve_solves_total", "Actual engine executions"),
            cache_hits: c(
                "mgrts_serve_cache_hits_total",
                "Answers served from the record-store cache",
            ),
            cache_misses: c(
                "mgrts_serve_cache_misses_total",
                "Solves performed for a requester",
            ),
            inflight_hits: c(
                "mgrts_serve_inflight_hits_total",
                "Requests coalesced onto an in-flight solve",
            ),
            rejected: c("mgrts_serve_rejected_total", "Admission-control rejections"),
            spilled: c(
                "mgrts_serve_spilled_total",
                "Requests spilled to the heavy queue",
            ),
            polls: c("mgrts_serve_polls_total", "Poll requests answered"),
            errors: c(
                "mgrts_serve_errors_total",
                "Malformed or invalid request lines",
            ),
            failed: c(
                "mgrts_serve_failed_total",
                "Jobs settled as failed after exhausting panic retries",
            ),
            queue_depth: registry.gauge(
                "mgrts_serve_queue_depth",
                "Current small-request queue length",
            ),
            heavy_depth: registry.gauge(
                "mgrts_serve_heavy_queue_depth",
                "Current heavy-queue length",
            ),
            engines_cached: registry.gauge(
                "mgrts_serve_engines_cached",
                "Distinct engines in the shared pool",
            ),
            solve_duration_us: registry.histogram(
                "mgrts_serve_solve_duration_us",
                "Wall-clock of actual engine executions, microseconds",
            ),
            request_duration_us: registry.histogram(
                "mgrts_serve_request_duration_us",
                "Wall-clock of request handling, microseconds",
            ),
            registry,
        }
    }

    /// Mirror a counter snapshot and the pool's per-backend search
    /// telemetry into the registry, then render the exposition text.
    fn render(&self, counters: ServeCounters, pool: &EnginePool) -> String {
        self.requests.set(counters.requests);
        self.solves.set(counters.solves);
        self.cache_hits.set(counters.cache_hits);
        self.cache_misses.set(counters.cache_misses);
        self.inflight_hits.set(counters.inflight_hits);
        self.rejected.set(counters.rejected);
        self.spilled.set(counters.spilled);
        self.polls.set(counters.polls);
        self.errors.set(counters.errors);
        self.failed.set(counters.failed);
        self.queue_depth.set(counters.queue_depth);
        self.heavy_depth.set(counters.heavy_depth);
        self.engines_cached.set(pool.len() as u64);
        for (name, st) in pool.engine_stats() {
            let labels: &[(&str, &str)] = &[("solver", name.as_str())];
            let facets: [(&str, &str, u64); 5] = [
                ("solves", "Solves served by this backend", st.solves),
                ("decisions", "Search decisions", st.decisions),
                ("backtracks", "Backtracks / conflicts", st.backtracks),
                (
                    "propagations",
                    "Propagator or unit executions",
                    st.propagations,
                ),
                ("restarts", "Search restarts", st.restarts),
            ];
            for (facet, help, value) in facets {
                self.registry
                    .counter_with(&format!("mgrts_solver_{facet}_total"), help, labels)
                    .set(value);
            }
        }
        // Fault-injection telemetry: which sites have fired, so a chaos
        // run's scrape shows the injected load next to its effects.
        for (site, n) in mgrts_fault::injected_counts() {
            self.registry
                .counter_with(
                    "mgrts_fault_injections_total",
                    "Faults injected by the active fault plan",
                    &[("site", site.as_str())],
                )
                .set(n);
        }
        // The process-wide registry carries the robustness counters the
        // store / lease / supervisor layers maintain (quarantined lines,
        // commit retries, fail-overs, caught panics, parked shards).
        let mut body = self.registry.render();
        body.push_str(&mgrts_obs::global().render());
        body
    }
}

/// One in-flight solve that waiters (the requester and any coalesced
/// joiners) block on.
struct Flight {
    done: Mutex<Option<CachedResult>>,
    cv: Condvar,
}

struct ServerState {
    cfg: ServeConfig,
    store: LocalStore,
    pool: EnginePool,
    cancel: CancelToken,
    stats: ServeStats,
    /// In-memory view of the record-store cache, keyed by request hash.
    cache: Mutex<HashMap<u64, CachedResult>>,
    /// Coalescing table: one [`Flight`] per distinct in-flight key.
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    /// Bounded small-request queue (admission control caps its length).
    jobs: Mutex<VecDeque<(u64, SolveRequest)>>,
    jobs_cv: Condvar,
    /// Spilled requests awaiting a heavy worker.
    heavy_jobs: Mutex<VecDeque<(u64, SolveRequest)>>,
    heavy_cv: Condvar,
    /// Keys with a published spill artifact not yet settled.
    heavy_pending: Mutex<HashSet<u64>>,
    /// Serialized append handle into the store ("serve" writer segment).
    writer: Mutex<Box<dyn ShardWriter + Send>>,
    /// Metrics-exposition surface (the `metrics` request).
    metrics: ServeMetrics,
    /// Flight recorder: every worker thread records request spans into
    /// its ring; dumps happen on panic, cancellation and slow solves.
    flight: Arc<FlightRecorder>,
}

impl ServerState {
    fn cached(&self, key: u64) -> Option<CachedResult> {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Run the request's engines (the only place solves happen). The
    /// artificial delay precedes the solve so tests can observe the
    /// in-flight window deterministically.
    fn execute(&self, key: u64, req: &SolveRequest) -> CachedResult {
        let started = Instant::now();
        if self.cfg.solve_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.cfg.solve_delay_ms));
        }
        self.stats.with(|c| c.solves += 1);
        let ticket = ticket_of(key);
        let sp = flight::span("request.solve", &ticket);
        let budget_ms = req.effective_budget_ms(self.cfg.default_budget_ms);
        let budget = Budget::time_limit(Duration::from_millis(budget_ms));
        let problem = Problem {
            taskset: req.taskset.clone(),
            m: req.m,
            seed: req.seed,
        };
        match &req.mode {
            RequestMode::Single(spec) => {
                let engine = self.pool.get(*spec, req.seed);
                let (outcome, time_us, search) =
                    run_one_engine_full(&problem, &*engine, &budget, &self.cancel);
                let record =
                    self.record_for(key, req, outcome, time_us, *spec, None, None, None, search);
                let result = self.settle(key, req, record);
                self.finish_execute(&ticket, req, &result, started, sp);
                result
            }
            RequestMode::Race => {
                let roster = self.pool.roster(&SolverSpec::DEFAULT_PORTFOLIO, req.seed);
                let run = race_roster(
                    &roster,
                    &req.taskset,
                    &PlatformSpec::identical(req.m),
                    &budget,
                    &self.cancel,
                )
                .expect("valid constrained instance");
                let outcome = classify(&run.verdict);
                let record = self.record_for(
                    key,
                    req,
                    outcome,
                    run.elapsed_us,
                    SolverSpec::DEFAULT_PORTFOLIO[0],
                    run.winner.clone(),
                    run.cancel_latency_us,
                    Some(run.backends),
                    run.search,
                );
                let result = self.settle(key, req, record);
                self.finish_execute(&ticket, req, &result, started, sp);
                result
            }
        }
    }

    /// Post-solve observation: close the request span, feed the latency
    /// histogram, and — past the slow threshold or on cancellation — log
    /// one diagnosable stdout line and persist the flight-recorder
    /// timeline as a store artifact.
    fn finish_execute(
        &self,
        ticket: &str,
        req: &SolveRequest,
        result: &CachedResult,
        started: Instant,
        mut sp: flight::Span,
    ) {
        self.metrics.solve_duration_us.observe(result.time_us);
        sp.set_detail(&format!(
            "solver={} outcome={:?} elapsed_us={}",
            result.solver, result.outcome, result.time_us
        ));
        // Close the span *before* any dump below: spans hit the ring on
        // drop, and the slow-request timeline must include its own solve.
        drop(sp);
        // Wall clock of the whole execution, not the engine's own
        // measurement: queueing artifacts and artificial delays count
        // toward the user-visible latency this threshold guards.
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let slow = self.cfg.slow_ms > 0 && elapsed_us >= self.cfg.slow_ms.saturating_mul(1_000);
        let cancelled = result.outcome == InstanceOutcome::Cancelled;
        if slow {
            // Everything needed to reproduce and triage from stdout alone.
            println!(
                "serve: slow request ticket={ticket} solver={} policy={} elapsed_ms={} outcome={:?}",
                result.solver,
                req.mode.tag(),
                elapsed_us / 1_000,
                result.outcome
            );
        }
        if (slow || cancelled) && self.cfg.slow_ms > 0 {
            flight::event("request.slow", ticket, &format!("elapsed_us={elapsed_us}"));
            let dump = self.flight.dump();
            if dump.is_empty() {
                return;
            }
            let name = format!("flight-{ticket}.jsonl");
            match self.store.put_artifact(&name, &dump) {
                Ok(()) => eprintln!(
                    "serve: flight recorder dump ({}) -> {name}",
                    if cancelled { "cancelled" } else { "slow" }
                ),
                Err(e) => eprintln!("serve: failed to write flight dump {name}: {e}"),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_for(
        &self,
        key: u64,
        req: &SolveRequest,
        outcome: InstanceOutcome,
        time_us: u64,
        solver: SolverSpec,
        winner: Option<String>,
        cancel_latency_us: Option<u64>,
        backends: Option<Vec<mgrts_core::portfolio::BackendStat>>,
        search: Option<mgrts_obs::SearchStats>,
    ) -> CampaignRecord {
        let (kind, src) = match req.mode {
            RequestMode::Single(_) => (PolicyKind::Single, BudgetSource::Manifest),
            RequestMode::Race => (PolicyKind::PortfolioRace, BudgetSource::Manifest),
        };
        CampaignRecord {
            shard: ticket_of(key),
            cell: 0,
            instance: key,
            global_instance: key,
            solver,
            outcome,
            time_us,
            ratio: req.taskset.utilization_ratio(req.m),
            filtered: req.taskset.utilization_exceeds(req.m),
            m: req.m,
            n: req.taskset.len(),
            t_max: req.taskset.max_period(),
            hetero: false,
            hyperperiod: req.taskset.hyperperiod().unwrap_or(0),
            seed: req.seed,
            policy: Some(kind),
            winner,
            budget_source: Some(src),
            cancel_latency_us,
            backends,
            search,
        }
    }

    /// Commit a settled solve to the store (one single-unit shard per
    /// request key) and publish it in the in-memory cache. Cancelled
    /// outcomes (a shutdown mid-solve) are returned to their waiters but
    /// never cached — a restarted server must re-decide them.
    fn settle(&self, key: u64, req: &SolveRequest, record: CampaignRecord) -> CachedResult {
        let result = CachedResult {
            outcome: record.outcome,
            time_us: record.time_us,
            solver: record
                .winner
                .clone()
                .unwrap_or_else(|| record.solver.name().to_string()),
        };
        if record.outcome == InstanceOutcome::Cancelled {
            return result;
        }
        let shard = Shard {
            index: 0,
            hash: ticket_of(key),
            units: vec![RunUnit {
                cell: 0,
                instance: key,
                solver: 0,
            }],
        };
        {
            let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = writer.commit_shard(&shard, &[record]) {
                eprintln!("serve: failed to commit record for {}: {e}", ticket_of(key));
            }
        }
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, result.clone());
        let _ = req; // provenance lives in the record
        result
    }

    /// [`execute`](Self::execute) under a panic supervisor: a panicking
    /// engine (injected chaos, a solver bug) is retried up to
    /// `job_retries` times, then the ticket settles as `failed` — a
    /// waiter always gets an answer and a poison job can never wedge its
    /// ticket or take the worker thread down.
    fn supervised_execute(&self, key: u64, req: &SolveRequest) -> CachedResult {
        let mut strikes = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.execute(key, req))) {
                Ok(result) => return result,
                Err(payload) => {
                    strikes += 1;
                    mgrts_obs::global()
                        .counter(
                            "mgrts_worker_panics_total",
                            "Shard executions that panicked and were caught by the worker \
                             supervisor",
                        )
                        .inc();
                    let reason = panic_reason(payload.as_ref());
                    eprintln!(
                        "serve: solve {} panicked (strike {strikes}/{}): {reason}",
                        ticket_of(key),
                        self.cfg.job_retries + 1
                    );
                    if strikes > self.cfg.job_retries {
                        return self.settle_failed(key, req, &reason);
                    }
                }
            }
        }
    }

    /// Terminal failure: record [`InstanceOutcome::Failed`] durably (a
    /// restarted server sees the record and will not re-enqueue the
    /// poison job) and publish it so pollers get a `failed` status.
    fn settle_failed(&self, key: u64, req: &SolveRequest, reason: &str) -> CachedResult {
        eprintln!(
            "serve: job {} failed permanently after {} attempts: {reason}",
            ticket_of(key),
            self.cfg.job_retries + 1
        );
        self.stats.with(|c| c.failed += 1);
        let spec = match &req.mode {
            RequestMode::Single(spec) => *spec,
            RequestMode::Race => SolverSpec::DEFAULT_PORTFOLIO[0],
        };
        let record = self.record_for(
            key,
            req,
            InstanceOutcome::Failed,
            0,
            spec,
            None,
            None,
            None,
            None,
        );
        self.settle(key, req, record)
    }

    /// Resolve a flight: publish the result to every waiter and retire
    /// the coalescing entry. The cache insert (in [`settle`]) happens
    /// before this, so a request can never miss both.
    fn finish_flight(&self, key: u64, flight: &Arc<Flight>, result: CachedResult) {
        *flight.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        flight.cv.notify_all();
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

fn handle_solve(state: &ServerState, req: SolveRequest) -> Value {
    let key = request_key(&req, state.cfg.default_budget_ms);
    // 1. Response cache (the record store).
    if let Some(cached) = state.cached(key) {
        state.stats.with(|c| c.cache_hits += 1);
        return cached.response(key, "hit");
    }
    // 2. Heavy requests spill to the lease queue and get a ticket.
    let budget_ms = req.effective_budget_ms(state.cfg.default_budget_ms);
    if req.taskset.len() > state.cfg.spill_tasks || budget_ms > state.cfg.spill_budget_ms {
        return handle_spill(state, key, req);
    }
    // 3. Coalesce onto an in-flight solve, or admit a new one.
    let (flight, creator) = {
        let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match inflight.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                if jobs.len() >= state.cfg.queue_cap {
                    state.stats.with(|c| c.rejected += 1);
                    return obj(vec![
                        ("type", s("overloaded")),
                        ("queue_depth", Value::UInt(jobs.len() as u64)),
                        ("queue_cap", Value::UInt(state.cfg.queue_cap as u64)),
                    ]);
                }
                let f = Arc::new(Flight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inflight.insert(key, Arc::clone(&f));
                jobs.push_back((key, req.clone()));
                state.stats.with(|c| c.queue_depth = jobs.len() as u64);
                state.jobs_cv.notify_one();
                (f, true)
            }
        }
    };
    // 4. Wait for the solve (bounded by the budget plus the configured
    // per-request deadline slack).
    let deadline = Duration::from_millis(
        budget_ms
            .saturating_add(state.cfg.solve_delay_ms)
            .saturating_add(state.cfg.deadline_slack_ms),
    );
    let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
    while done.is_none() {
        let (guard, timeout) = flight
            .cv
            .wait_timeout(done, deadline)
            .unwrap_or_else(|e| e.into_inner());
        done = guard;
        if done.is_some() {
            break;
        }
        if timeout.timed_out() {
            return error_response("solve timed out server-side");
        }
        if state.cancel.is_cancelled() {
            return error_response("server shutting down");
        }
    }
    let result = done.clone().expect("loop exits only with a result");
    if creator {
        state.stats.with(|c| c.cache_misses += 1);
        result.response(key, "miss")
    } else {
        state.stats.with(|c| c.inflight_hits += 1);
        result.response(key, "inflight")
    }
}

fn handle_spill(state: &ServerState, key: u64, req: SolveRequest) -> Value {
    let ticket = ticket_of(key);
    let mut pending = state
        .heavy_pending
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if pending.contains(&key) {
        // A repeat of a still-queued heavy request coalesces onto the
        // existing ticket.
        state.stats.with(|c| c.inflight_hits += 1);
        return obj(vec![
            ("type", s("ticket")),
            ("ticket", s(ticket)),
            ("status", s("pending")),
            ("cache", s("inflight")),
        ]);
    }
    // Publish the job as a store artifact (crash-safe: a restarted server
    // re-enqueues unresolved job artifacts), then queue it for the heavy
    // workers.
    let artifact = render_response(&req.to_value());
    if let Err(e) = state
        .store
        .put_artifact(&format!("job-{ticket}.json"), &artifact)
    {
        return error_response(&format!("failed to persist spill job: {e}"));
    }
    pending.insert(key);
    drop(pending);
    state.stats.with(|c| c.spilled += 1);
    {
        let mut heavy = state.heavy_jobs.lock().unwrap_or_else(|e| e.into_inner());
        heavy.push_back((key, req));
        state.stats.with(|c| c.heavy_depth = heavy.len() as u64);
    }
    state.heavy_cv.notify_one();
    obj(vec![
        ("type", s("ticket")),
        ("ticket", s(ticket)),
        ("status", s("queued")),
        ("cache", s("miss")),
    ])
}

fn handle_poll(state: &ServerState, ticket: &str) -> Value {
    state.stats.with(|c| c.polls += 1);
    let key = match parse_ticket(ticket) {
        Ok(k) => k,
        Err(e) => return error_response(&e),
    };
    if let Some(cached) = state.cached(key) {
        use serde::Serialize;
        // `failed` is terminal, distinct from `done`: the job exhausted
        // its retries and will not settle to a verdict. Pollers must
        // stop waiting, not retry forever.
        let status = if cached.outcome == InstanceOutcome::Failed {
            "failed"
        } else {
            "done"
        };
        return obj(vec![
            ("type", s("poll")),
            ("ticket", s(ticket)),
            ("status", s(status)),
            ("outcome", cached.outcome.to_value()),
            ("time_us", Value::UInt(cached.time_us)),
            ("solver", s(cached.solver)),
        ]);
    }
    let pending = state
        .heavy_pending
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .contains(&key);
    if pending {
        // Distinguish queued from running via the lease board.
        let lease_name = format!("job-{}", ticket_of(key));
        let now = now_unix_ms();
        let running = list_leases(&state.store.dir().join(LEASE_DIR))
            .unwrap_or_default()
            .iter()
            .any(|l| l.shard == lease_name && !l.is_expired(now));
        return obj(vec![
            ("type", s("poll")),
            ("ticket", s(ticket)),
            ("status", s("pending")),
            ("phase", s(if running { "running" } else { "queued" })),
        ]);
    }
    error_response(&format!("unknown ticket `{ticket}`"))
}

/// Handle one request line and produce the response line's [`Value`] —
/// shared by the TCP handler and the protocol unit tests. `None` means
/// "shutdown acknowledged": the caller sends the returned ack first.
fn handle_line(state: &ServerState, line: &str) -> (Value, bool) {
    let start = std::time::Instant::now();
    state.stats.with(|c| c.requests += 1);
    let out = match parse_request(line) {
        Ok(Request::Solve(req)) => (handle_solve(state, req), false),
        Ok(Request::Poll { ticket }) => (handle_poll(state, &ticket), false),
        Ok(Request::Stats) => (state.stats.response(state.pool.len()), false),
        Ok(Request::Metrics) => (handle_metrics(state), false),
        Ok(Request::Shutdown) => (
            obj(vec![("type", s("ok")), ("msg", s("shutting down"))]),
            true,
        ),
        Err(e) => {
            state.stats.with(|c| c.errors += 1);
            (error_response(&e), false)
        }
    };
    state
        .metrics
        .request_duration_us
        .observe(start.elapsed().as_micros() as u64);
    out
}

/// The `metrics` request: Prometheus text exposition of the counters
/// (one consistent snapshot), queue gauges, latency histograms and
/// per-backend search telemetry, carried in the response's `body` field.
fn handle_metrics(state: &ServerState) -> Value {
    let body = state.metrics.render(state.stats.snapshot(), &state.pool);
    obj(vec![
        ("type", s("metrics")),
        ("content_type", s("text/plain; version=0.0.4")),
        ("body", s(body)),
    ])
}

// ---------------------------------------------------------------------------
// Worker pools
// ---------------------------------------------------------------------------

fn light_worker(state: &Arc<ServerState>, index: usize) {
    let _ring = flight::install(&state.flight, &format!("serve-light-{index}"));
    loop {
        let job = {
            let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = jobs.pop_front() {
                    state.stats.with(|c| c.queue_depth = jobs.len() as u64);
                    break Some(job);
                }
                if state.cancel.is_cancelled() {
                    break None;
                }
                let (guard, _) = state
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                jobs = guard;
            }
        };
        let Some((key, req)) = job else { break };
        // The key may have settled while queued (a racing flight that
        // re-solved, or a heavy worker): serve from cache without a solve.
        let result = match state.cached(key) {
            Some(cached) => cached,
            None => state.supervised_execute(key, &req),
        };
        let flight = state
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned();
        if let Some(flight) = flight {
            state.finish_flight(key, &flight, result);
        }
    }
}

/// Heavy worker: drains the spill queue under PR-3 leases, so the work
/// is observable (`poll` reports `running`), crash-safe (an expired
/// lease is reclaimable) and shareable with external drain processes.
fn heavy_worker(state: &Arc<ServerState>, index: usize) {
    let _ring = flight::install(&state.flight, &format!("serve-heavy-{index}"));
    let board = match LeaseBoard::open(
        state.store.dir(),
        &format!("serve-heavy-{index}"),
        Duration::from_secs(60),
    ) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve: heavy worker {index} failed to open lease board: {e}");
            return;
        }
    };
    loop {
        let job = {
            let mut jobs = state.heavy_jobs.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = jobs.pop_front() {
                    state.stats.with(|c| c.heavy_depth = jobs.len() as u64);
                    break Some(job);
                }
                if state.cancel.is_cancelled() {
                    break None;
                }
                let (guard, _) = state
                    .heavy_cv
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                jobs = guard;
            }
        };
        let Some((key, req)) = job else { break };
        let lease_name = format!("job-{}", ticket_of(key));
        match board.try_claim(&lease_name) {
            Ok(true) => {}
            Ok(false) => continue, // an external worker holds it
            Err(e) => {
                eprintln!("serve: lease claim failed for {lease_name}: {e}");
                continue;
            }
        }
        // The supervisor below catches engine panics, so control always
        // reaches the release: the `job-<ticket>` lease is dropped
        // immediately, never stranded until its TTL.
        let result = match state.cached(key) {
            Some(cached) => cached,
            None => state.supervised_execute(key, &req),
        };
        let _ = board.release(&lease_name);
        if result.outcome != InstanceOutcome::Cancelled {
            state
                .heavy_pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// Split a receive buffer into complete lines, leaving any trailing
/// partial line in place — the framing the protocol tests pin down.
pub fn drain_lines(buf: &mut Vec<u8>) -> Vec<String> {
    let mut lines = Vec::new();
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = buf.drain(..=pos).collect();
        let text = String::from_utf8_lossy(&line[..line.len() - 1])
            .trim_end_matches('\r')
            .to_string();
        lines.push(text);
    }
    lines
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if state.cancel.is_cancelled() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
        for line in drain_lines(&mut buf) {
            if line.is_empty() {
                continue;
            }
            let (response, shutdown) = handle_line(state, &line);
            let mut text = render_response(&response);
            text.push('\n');
            if stream.write_all(text.as_bytes()).is_err() {
                return;
            }
            let _ = stream.flush();
            if shutdown {
                state.cancel.cancel();
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A running serve instance: the listener, its worker pools and shared
/// state. Constructed by [`Server::start`], stopped by [`Server::shutdown`]
/// (or by cancelling [`Server::cancel_token`], e.g. from a SIGTERM
/// handler).
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind, reload the response cache from the store, recover any
    /// unresolved spill jobs, and spawn the accept loop plus worker
    /// pools.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = LocalStore::open(&cfg.data_dir)?;
        let writer = store.open_writer("serve")?;
        // Reload the cache: every believable record in the store is a
        // servable response (`instance` is the request key).
        let mut cache = HashMap::new();
        for r in store.load_records()? {
            cache.insert(
                r.instance,
                CachedResult {
                    outcome: r.outcome,
                    time_us: r.time_us,
                    solver: r
                        .winner
                        .clone()
                        .unwrap_or_else(|| r.solver.name().to_string()),
                },
            );
        }
        let flight_rec = FlightRecorder::new(512);
        flight_rec.install_panic_hook();
        let state = Arc::new(ServerState {
            store,
            pool: EnginePool::new(),
            cancel: CancelToken::new(),
            stats: ServeStats::default(),
            metrics: ServeMetrics::new(),
            flight: flight_rec,
            cache: Mutex::new(cache),
            inflight: Mutex::new(HashMap::new()),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            heavy_jobs: Mutex::new(VecDeque::new()),
            heavy_cv: Condvar::new(),
            heavy_pending: Mutex::new(HashSet::new()),
            writer: Mutex::new(writer),
            cfg,
        });
        Self::recover_spill_jobs(&state);
        let mut threads = Vec::new();
        for i in 0..state.cfg.workers.max(1) {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || light_worker(&state, i)));
        }
        {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || heavy_worker(&state, 0)));
        }
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let state = Arc::clone(&state);
            let conns = Arc::clone(&conns);
            threads.push(std::thread::spawn(move || loop {
                if state.cancel.is_cancelled() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let state = Arc::clone(&state);
                        let handle = std::thread::spawn(move || handle_connection(&state, stream));
                        conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }));
        }
        Ok(Server {
            state,
            addr,
            threads,
            conns,
        })
    }

    /// Re-enqueue spill artifacts with no settled record (a crashed or
    /// SIGKILLed predecessor): the job files are the queue's durable
    /// form.
    fn recover_spill_jobs(state: &Arc<ServerState>) {
        let Ok(entries) = std::fs::read_dir(state.store.dir()) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(ticket) = name
                .strip_prefix("job-")
                .and_then(|rest| rest.strip_suffix(".json"))
            else {
                continue;
            };
            let Ok(key) = parse_ticket(ticket) else {
                continue;
            };
            if state.cached(key).is_some() {
                continue; // already settled in a previous life
            }
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(Request::Solve(req)) = parse_request(&text) else {
                continue;
            };
            let mut pending = state
                .heavy_pending
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if pending.insert(key) {
                let mut heavy = state.heavy_jobs.lock().unwrap_or_else(|e| e.into_inner());
                heavy.push_back((key, req));
                state.stats.with(|c| c.heavy_depth = heavy.len() as u64);
            }
        }
    }

    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's cancellation token; cancelling it initiates a
    /// graceful shutdown (stop accepting, preempt running solves,
    /// release leases).
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancel.clone()
    }

    /// One consistent counter snapshot (test instrumentation; the wire
    /// surfaces are the `stats` and `metrics` requests).
    #[must_use]
    pub fn stats(&self) -> ServeCounters {
        self.state.stats.snapshot()
    }

    /// Graceful shutdown: raise the token, join every worker and
    /// connection thread, and return a human-readable summary.
    pub fn shutdown(self) -> String {
        self.state.cancel.cancel();
        self.state.jobs_cv.notify_all();
        self.state.heavy_cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for t in conns {
            let _ = t.join();
        }
        let c = self.state.stats.snapshot();
        format!(
            "served {} requests ({} solves, {} cache hits, {} coalesced, \
             {} spilled, {} rejected, {} errors)",
            c.requests, c.solves, c.cache_hits, c.inflight_hits, c.spilled, c.rejected, c.errors,
        )
    }
}

/// Run a server until `external` is cancelled (SIGTERM/SIGINT via the
/// CLI's signal handler, or a `shutdown` request), then shut down
/// gracefully. Returns the serving summary. The "listening" line goes to
/// stderr immediately so callers can synchronize on it.
pub fn run(cfg: ServeConfig, external: &CancelToken) -> std::io::Result<String> {
    let server = Server::start(cfg)?;
    eprintln!("mgrts serve: listening on {}", server.addr());
    let token = server.cancel_token();
    while !external.is_cancelled() && !token.is_cancelled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    token.cancel();
    Ok(server.shutdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example_json() -> String {
        use serde::Serialize;
        serde_json::to_string(&TaskSet::running_example().to_value()).unwrap()
    }

    fn solve_line(extra: &str) -> String {
        format!(
            "{{\"type\":\"solve\",\"taskset\":{},\"m\":2{extra}}}",
            running_example_json()
        )
    }

    #[test]
    fn parses_solve_request_shapes() {
        let req = parse_request(&solve_line("")).unwrap();
        let Request::Solve(req) = req else {
            panic!("expected solve")
        };
        assert_eq!(req.m, 2);
        assert_eq!(req.mode, RequestMode::Race);
        assert_eq!(req.budget_ms, None);

        let req = parse_request(&solve_line(",\"solver\":\"csp2-dc\",\"budget_ms\":250")).unwrap();
        let Request::Solve(req) = req else {
            panic!("expected solve")
        };
        assert!(matches!(req.mode, RequestMode::Single(_)));
        assert_eq!(req.budget_ms, Some(250));

        let req = parse_request(&solve_line(",\"policy\":\"portfolio-race\"")).unwrap();
        let Request::Solve(req) = req else {
            panic!("expected solve")
        };
        assert_eq!(req.mode, RequestMode::Race);
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for bad in [
            "not json at all",
            "{\"type\":\"conquer\"}",
            "{\"no_type\":1}",
            "{\"type\":\"solve\",\"m\":2}",
            "{\"type\":\"solve\",\"taskset\":{\"tasks\":[]},\"m\":0}",
            "{\"type\":\"poll\"}",
        ] {
            let err = match parse_request(bad) {
                Err(e) => e,
                Ok(r) => panic!("`{bad}` parsed as {r:?}"),
            };
            let resp = error_response(&err);
            let text = render_response(&resp);
            let back: Value = serde_json::from_str(&text).unwrap();
            assert_eq!(back["type"].as_str(), Some("error"), "for `{bad}`");
            assert!(back["error"].as_str().is_some(), "for `{bad}`");
        }
    }

    #[test]
    fn request_key_separates_what_matters() {
        let base = match parse_request(&solve_line("")).unwrap() {
            Request::Solve(r) => r,
            _ => unreachable!(),
        };
        let k = request_key(&base, 1_000);
        // Identical request → identical key.
        assert_eq!(k, request_key(&base.clone(), 1_000));
        // Platform size, mode, budget and seed all separate keys.
        let mut other = base.clone();
        other.m = 3;
        assert_ne!(k, request_key(&other, 1_000));
        let mut other = base.clone();
        other.mode = RequestMode::Single(SolverSpec::Csp1);
        assert_ne!(k, request_key(&other, 1_000));
        let mut other = base.clone();
        other.budget_ms = Some(2_000);
        assert_ne!(k, request_key(&other, 1_000));
        // An explicit budget equal to the default is the same request.
        let mut other = base.clone();
        other.budget_ms = Some(1_000);
        assert_eq!(k, request_key(&other, 1_000));
    }

    #[test]
    fn tickets_round_trip() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_ticket(&ticket_of(key)).unwrap(), key);
        }
        assert!(parse_ticket("xyz").is_err());
        assert!(parse_ticket("123").is_err());
        assert!(parse_ticket("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn framing_splits_complete_lines_only() {
        let mut buf = b"{\"a\":1}\n{\"b\":2}\r\n{\"part".to_vec();
        let lines = drain_lines(&mut buf);
        assert_eq!(
            lines,
            vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()]
        );
        assert_eq!(buf, b"{\"part".to_vec());
        buf.extend_from_slice(b"ial\":3}\n");
        let lines = drain_lines(&mut buf);
        assert_eq!(lines, vec!["{\"partial\":3}".to_string()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn spill_request_round_trips_through_artifact_shape() {
        let req =
            match parse_request(&solve_line(",\"solver\":\"csp2\",\"budget_ms\":123")).unwrap() {
                Request::Solve(r) => r,
                _ => unreachable!(),
            };
        let text = render_response(&req.to_value());
        let back = match parse_request(&text).unwrap() {
            Request::Solve(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(request_key(&req, 1_000), request_key(&back, 1_000));
        assert_eq!(back.budget_ms, Some(123));
        assert_eq!(back.mode, req.mode);
    }
}
