//! Execution-policy acceptance properties.
//!
//! 1. **Race/single parity** (proptest): a `portfolio-race` campaign over
//!    a deterministic exact roster yields, per `(cell, instance)` unit, a
//!    verdict identical to the best single-solver outcome of the same
//!    workload — straddle-tolerant, the same noise model as the queue
//!    multiworker test (under the comfortable budgets used here no run
//!    straddles, so the verdicts must actually be equal).
//! 2. **Adaptive budgets**: the quantile wrapper falls back to the
//!    manifest limit on an empty store and engages (recording
//!    `budget_source: Adaptive`) once a resume sees enough decided
//!    samples. The quantile math itself is pinned by unit tests in
//!    `mgrts_bench::policy`.
//! 3. **Backward compatibility**: a pre-policy (PR ≤ 4) segment file —
//!    record and checkpoint lines without the `policy` / `winner` /
//!    `budget_source` / `unix_ms` fields — still loads, with defaults.
//! 4. **All three policies end-to-end** at unit scale, including a
//!    dispatch/worker drain of a racing campaign with a partial
//!    ("killed") worker plus a fresh one resuming it.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use mgrts_bench::campaign::{
    parity, report, resume, run_fresh, CampaignOptions, Manifest, ReportKind,
};
use mgrts_bench::policy::{AdaptiveSpec, BudgetSource, PolicyKind, PolicyMode};
use mgrts_bench::queue::{dispatch, run_worker, status, WorkerOptions};
use mgrts_bench::sink::{load_records, LocalStore, RecordStore};
use mgrts_bench::InstanceOutcome;
use mgrts_core::engine::CancelGroup;

fn manifest(name: &str, seed: u64, policy_section: &str) -> Manifest {
    Manifest::parse(&format!(
        r#"
[campaign]
name = "{name}"
seed = {seed}
time_limit_ms = 5000
instances_per_cell = 3
shard_size = 4

[grid]
n = [3, 4]
m = [2]
t_max = [4]
solvers = ["csp2-dc", "csp1", "sat"]
{policy_section}
"#
    ))
    .expect("valid manifest")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mgrts-policy-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(threads: usize) -> CampaignOptions {
    CampaignOptions {
        threads,
        progress: false,
        max_shards: None,
    }
}

proptest! {
    // Each case runs one sequential and one racing campaign.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn race_verdicts_match_the_best_single_solver(seed in 0u64..1_000) {
        let single = manifest("parity-single", seed, "");
        let race = manifest("parity-race", seed, "[policy]\nmode = \"portfolio-race\"\n");
        prop_assert_eq!(single.workload_fingerprint(), race.workload_fingerprint());
        prop_assert_ne!(single.fingerprint(), race.fingerprint());

        let single_dir = tmp(&format!("parity-single-{seed}"));
        let race_dir = tmp(&format!("parity-race-{seed}"));
        let s = run_fresh(&single, &single_dir, &opts(2), &CancelGroup::new()).unwrap();
        let r = run_fresh(&race, &race_dir, &opts(2), &CancelGroup::new()).unwrap();
        prop_assert!(s.summary.completed);
        prop_assert!(r.summary.completed);
        // Racing collapses the solver axis: one unit per (cell, instance).
        prop_assert_eq!(r.summary.records, 2 * 3);
        prop_assert_eq!(s.summary.records, 2 * 3 * 3);

        let gate = parity(&race_dir, &single_dir).unwrap();
        prop_assert!(gate.ok, "parity failed:\n{}", gate.lines.join("\n"));

        // Per unit, the race verdict must equal every decided single-solver
        // verdict — straddle-tolerant: a pair where either side ran out of
        // wall clock is timing noise (CSP1's randomized search can
        // legitimately exhaust 5 s proving infeasibility), exactly the
        // tolerance of the queue multiworker test.
        let race_records = load_records(&race_dir).unwrap();
        let single_records = load_records(&single_dir).unwrap();
        for rr in &race_records {
            prop_assert_eq!(rr.policy_kind(), PolicyKind::PortfolioRace);
            prop_assert!(rr.backends.as_ref().is_some_and(|b| b.len() == 3));
            let decided = |o: InstanceOutcome| {
                matches!(o, InstanceOutcome::Solved | InstanceOutcome::ProvedInfeasible)
            };
            for sr in single_records
                .iter()
                .filter(|sr| sr.cell == rr.cell && sr.instance == rr.instance)
            {
                if decided(sr.outcome) && decided(rr.outcome) {
                    prop_assert_eq!(sr.outcome, rr.outcome,
                        "cell {} instance {}: race {:?} vs single {:?}",
                        rr.cell, rr.instance, rr.outcome, sr.outcome);
                }
            }
            if decided(rr.outcome) {
                prop_assert!(rr.winner.is_some(), "decided race unit without a winner");
            }
        }
        // The winners report renders a row per cell and counts every unit.
        let winners = report(&race_dir, ReportKind::Winners).unwrap();
        prop_assert!(winners.contains("WINNERS"), "{}", winners);
        prop_assert!(winners.contains("n=3/m=2/tmax=4"), "{}", winners);

        std::fs::remove_dir_all(&single_dir).ok();
        std::fs::remove_dir_all(&race_dir).ok();
    }
}

#[test]
fn adaptive_budgets_engage_on_resume_with_samples() {
    let m = manifest(
        "adaptive",
        42,
        "[policy]\nadaptive_quantile = 0.9\nadaptive_min_samples = 1\n",
    );
    assert_eq!(m.policy.mode, PolicyMode::Single);
    assert_eq!(
        m.policy.adaptive,
        Some(AdaptiveSpec {
            quantile: 0.9,
            min_samples: 1
        })
    );
    let dir = tmp("adaptive");
    // Fresh start: the store is empty when the policy snapshots it, so
    // every unit runs under the manifest limit.
    let partial = run_fresh(
        &m,
        &dir,
        &CampaignOptions {
            threads: 1,
            progress: false,
            max_shards: Some(1),
        },
        &CancelGroup::new(),
    )
    .unwrap();
    assert!(!partial.summary.completed);
    let first = load_records(&dir).unwrap();
    assert!(!first.is_empty());
    assert!(first
        .iter()
        .all(|r| r.budget_src() == BudgetSource::Manifest));

    // Resume: the policy snapshot now holds decided samples for the first
    // invocation's cells, so their remaining units run under the quantile
    // allowance — and because the policy re-snapshots on every shard
    // claim, cells first sampled *during the resume itself* may also go
    // adaptive once their own decided records land.
    let resumed = resume(&dir, &opts(1), &CancelGroup::new()).unwrap();
    assert!(resumed.summary.completed);
    let records = load_records(&dir).unwrap();
    let adaptive_cells: Vec<usize> = records
        .iter()
        .filter(|r| r.budget_src() == BudgetSource::Adaptive)
        .map(|r| r.cell)
        .collect();
    assert!(
        !adaptive_cells.is_empty(),
        "no unit recorded an adaptive budget after resume"
    );
    // An adaptive allowance is only ever derived from decided,
    // manifest-budget samples of the same cell (whichever invocation
    // recorded them).
    for cell in &adaptive_cells {
        assert!(
            records.iter().any(|r| r.cell == *cell
                && r.budget_src() == BudgetSource::Manifest
                && matches!(
                    r.outcome,
                    InstanceOutcome::Solved | InstanceOutcome::ProvedInfeasible
                )),
            "cell {cell} went adaptive without decided samples"
        );
    }
    // The pre-refresh guarantee still holds: every cell the first
    // invocation decided under the manifest budget goes adaptive on
    // resume (its samples are visible in the resume's very first
    // snapshot).
    for r in first.iter().filter(|r| {
        matches!(
            r.outcome,
            InstanceOutcome::Solved | InstanceOutcome::ProvedInfeasible
        )
    }) {
        assert!(
            adaptive_cells.contains(&r.cell),
            "cell {} had decided samples before the resume but never went adaptive",
            r.cell
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_policy_segment_files_load_with_defaults() {
    // Verbatim pre-PR-5 on-disk lines: no policy / winner / budget_source
    // / cancel_latency_us / backends on the record, no unix_ms on the
    // checkpoint.
    let dir = tmp("compat");
    std::fs::create_dir_all(&dir).unwrap();
    let mut records = std::fs::File::create(dir.join("records.jsonl")).unwrap();
    writeln!(
        records,
        r#"{{"shard":"00000000000000aa","cell":0,"instance":0,"global_instance":0,"solver":"Csp1","outcome":"Solved","time_us":123,"ratio":0.5,"filtered":false,"m":2,"n":3,"t_max":4,"hetero":false,"hyperperiod":12,"seed":7}}"#
    )
    .unwrap();
    writeln!(
        records,
        r#"{{"shard":"00000000000000aa","cell":0,"instance":1,"global_instance":1,"solver":{{"Csp2":"DeadlineMinusWcet"}},"outcome":"Overrun","time_us":999,"ratio":1.2,"filtered":true,"m":2,"n":3,"t_max":4,"hetero":false,"hyperperiod":12,"seed":8}}"#
    )
    .unwrap();
    let mut checkpoint = std::fs::File::create(dir.join("checkpoint.jsonl")).unwrap();
    writeln!(checkpoint, r#"{{"shard":"00000000000000aa","records":2}}"#).unwrap();

    let store = LocalStore::open(&dir).unwrap();
    assert_eq!(store.done_shards().unwrap().len(), 1);
    let loaded = store.load_records().unwrap();
    assert_eq!(loaded.len(), 2, "old lines must deserialize");
    for r in &loaded {
        assert_eq!(r.policy, None);
        assert_eq!(r.policy_kind(), PolicyKind::Single, "defaults to single");
        assert_eq!(r.budget_source, None);
        assert_eq!(r.budget_src(), BudgetSource::Manifest);
        assert_eq!(r.winner, None);
        assert_eq!(r.cancel_latency_us, None);
        assert!(r.backends.is_none());
    }
    assert_eq!(loaded[0].time_us, 123);
    // Untimestamped checkpoints contribute no throughput samples.
    let times = store.writer_checkpoints().unwrap();
    assert_eq!(times.len(), 1);
    assert!(
        times[0].1.is_empty(),
        "old checkpoint lines have no unix_ms"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn racing_campaign_drains_distributed_with_a_partial_worker() {
    let m = manifest("race-dist", 7, "[policy]\nmode = \"portfolio-race\"\n");
    let shared = tmp("race-dist");
    dispatch(&m, &shared, false).unwrap();
    let wopts = |id: &str, max: Option<u64>| WorkerOptions {
        id: id.to_string(),
        // One claimer thread: with two, both could commit a shard before
        // the max_shards cap is observed.
        threads: 1,
        lease_ttl: Duration::from_millis(300),
        poll: Duration::from_millis(20),
        max_shards: max,
        progress: false,
    };
    // A worker commits one shard and exits (the "killed" incarnation)...
    let dead = run_worker(&shared, &wopts("w1", Some(1)), &CancelGroup::new()).unwrap();
    assert_eq!(dead.shards_committed, 1);
    assert!(!dead.summary.completed);
    // ...and a fresh worker resumes the plan to completion.
    let alive = run_worker(&shared, &wopts("w2", None), &CancelGroup::new()).unwrap();
    assert!(alive.summary.completed);
    let st = status(&shared).unwrap();
    assert!(st.complete);
    assert_eq!(st.records, 2 * 3);
    assert!(st.leases.is_empty());
    // Worker rates derive from timestamped checkpoints (both workers
    // committed, so both report samples).
    assert_eq!(st.rates.len(), 2);
    assert!(st.rates.iter().all(|r| r.shards > 0));
    assert_eq!(st.eta.shards_remaining, 0);
    assert_eq!(st.eta.eta_ms, None, "complete campaign has no ETA");
    // Summary of a racing campaign is the single `portfolio` row.
    assert_eq!(alive.summary.solvers.len(), 1);
    assert_eq!(alive.summary.solvers[0].0, "portfolio");
    std::fs::remove_dir_all(&shared).ok();
}

#[test]
fn worker_rates_feed_a_live_eta() {
    // Drain only part of the plan so shards remain, then inspect status
    // while the worker's presence lease is still fresh on disk: the live
    // worker's measured rate must produce a finite ETA.
    let m = manifest("eta", 11, "");
    let shared = tmp("eta");
    dispatch(&m, &shared, false).unwrap();
    let w = WorkerOptions {
        id: "w-eta".to_string(),
        threads: 1,
        lease_ttl: Duration::from_secs(60),
        poll: Duration::from_millis(20),
        max_shards: Some(2),
        progress: false,
    };
    run_worker(&shared, &w, &CancelGroup::new()).unwrap();
    // Re-plant the presence lease the finished worker released, as if it
    // were still attached and between shards.
    let board =
        mgrts_bench::queue::LeaseBoard::open(&shared, "w-eta", Duration::from_secs(60)).unwrap();
    assert!(board
        .try_claim(&mgrts_bench::queue::presence_key("w-eta"))
        .unwrap());
    // Let the rate window (first commit → now) grow past clock granularity.
    std::thread::sleep(Duration::from_millis(10));
    let st = status(&shared).unwrap();
    assert!(!st.complete);
    assert!(st.eta.shards_remaining > 0);
    assert_eq!(st.eta.live_workers, 1);
    assert!(st.eta.aggregate_shards_per_min > 0.0);
    let eta_ms = st.eta.eta_ms.expect("live rate implies an ETA");
    assert!(eta_ms > 0);
    // The JSON surface for orchestrators carries the same numbers.
    let json = serde_json::to_string(&st).unwrap();
    assert!(json.contains("\"eta\""), "{json}");
    assert!(json.contains("\"shards_remaining\""), "{json}");
    assert!(json.contains("\"aggregate_shards_per_min\""), "{json}");
    std::fs::remove_dir_all(&shared).ok();
}

#[test]
fn policy_manifests_round_trip_and_reshard() {
    let single = manifest("rt", 1, "");
    let race = manifest("rt", 1, "[policy]\nmode = \"portfolio-race\"\n");
    let adaptive = manifest(
        "rt",
        1,
        "[policy]\nmode = \"portfolio-race\"\nadaptive_quantile = 0.75\nadaptive_min_samples = 4\n",
    );
    for m in [&single, &race, &adaptive] {
        let back = Manifest::parse(&m.to_toml()).unwrap();
        assert_eq!(&back, m, "canonical TOML must round-trip the policy");
    }
    // Distinct fingerprints ⇒ distinct shard plans (policy changes
    // re-shard), while the workload stays shared.
    assert_ne!(single.fingerprint(), race.fingerprint());
    assert_ne!(race.fingerprint(), adaptive.fingerprint());
    assert_eq!(single.workload_fingerprint(), race.workload_fingerprint());
    assert_ne!(single.plan()[0].hash, race.plan()[0].hash);
    // The racing plan has one unit per (cell, instance).
    assert_eq!(race.total_runs(), 2 * 3);
    assert_eq!(single.total_runs(), 2 * 3 * 3);
    // Malformed policy sections are rejected.
    for bad in [
        "[policy]\nmode = \"nonsense\"\n",
        "[policy]\nadaptive_quantile = 1.5\n",
        "[policy]\nadaptive_quantile = 0\n",
        "[policy]\nadaptive_min_samples = 3\n",
    ] {
        let text = format!(
            "[campaign]\nname = \"x\"\ninstances_per_cell = 1\n\
             [grid]\nn = [2]\nm = [2]\nt_max = [3]\nsolvers = [\"csp1\"]\n{bad}"
        );
        assert!(Manifest::parse(&text).is_err(), "accepted: {bad}");
    }
}
