//! End-to-end tests of the resident serve loop over real TCP: in-flight
//! dedupe (exactly one solve for concurrent identical requests),
//! malformed-line resilience, admission control, the queue-spill + poll
//! path, and cache persistence across a server restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mgrts_bench::serve::{ServeConfig, Server};
use serde_json::Value;

/// Serialize the tests in this binary: the fault-injection case installs
/// a process-global fault plan that would panic any *other* test's solve
/// while it is active.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mgrts-serve-{tag}-{}-{:?}",
        std::process::id(),
        Instant::now()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: tmp_dir(tag),
        workers: 2,
        queue_cap: 16,
        default_budget_ms: 2_000,
        spill_tasks: 64,
        spill_budget_ms: 60_000,
        solve_delay_ms: 0,
        slow_ms: 0,
        job_retries: 2,
        deadline_slack_ms: 30_000,
    }
}

fn taskset_json() -> String {
    use serde::Serialize;
    serde_json::to_string(&rt_task::TaskSet::running_example().to_value()).unwrap()
}

fn solve_line(extra: &str) -> String {
    format!(
        "{{\"type\":\"solve\",\"taskset\":{},\"m\":2,\"solver\":\"csp2-dc\"{extra}}}",
        taskset_json()
    )
}

/// One request/response exchange on a fresh connection.
fn exchange(addr: std::net::SocketAddr, line: &str) -> Value {
    let stream = TcpStream::connect(addr).expect("connect");
    exchange_on(&stream, line)
}

/// One request/response exchange on an existing connection.
fn exchange_on(stream: &TcpStream, line: &str) -> Value {
    let mut out = stream.try_clone().expect("clone stream");
    out.write_all(format!("{line}\n").as_bytes()).expect("send");
    out.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("response line");
    serde_json::from_str(&response).expect("response parses")
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_solve() {
    let _serial = serial();
    let mut cfg = config("dedupe");
    cfg.solve_delay_ms = 300; // hold the in-flight window open
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let threads: Vec<_> = (0..3)
        .map(|_| {
            let line = solve_line("");
            std::thread::spawn(move || exchange(addr, &line))
        })
        .collect();
    let responses: Vec<Value> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    let mut tags: Vec<String> = responses
        .iter()
        .map(|r| {
            assert_eq!(r["type"].as_str(), Some("result"), "got {r:?}");
            assert_eq!(r["outcome"].as_str(), Some("Solved"), "got {r:?}");
            r["cache"].as_str().unwrap().to_string()
        })
        .collect();
    tags.sort();
    // One creator, two coalesced joiners — and exactly one engine run.
    assert_eq!(tags, vec!["inflight", "inflight", "miss"]);
    assert_eq!(server.stats().solves, 1);

    // A repeat after settling is a store hit, still without a new solve.
    let repeat = exchange(addr, &solve_line(""));
    assert_eq!(repeat["cache"].as_str(), Some("hit"));
    assert_eq!(server.stats().solves, 1);
    server.shutdown();
}

#[test]
fn malformed_lines_get_errors_without_disconnect() {
    let _serial = serial();
    let server = Server::start(config("malformed")).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();

    let err = exchange_on(&stream, "this is not json");
    assert_eq!(err["type"].as_str(), Some("error"));
    let err = exchange_on(&stream, "{\"type\":\"solve\",\"m\":2}");
    assert_eq!(err["type"].as_str(), Some("error"));

    // The same connection still serves valid requests afterwards.
    let ok = exchange_on(&stream, &solve_line(""));
    assert_eq!(ok["type"].as_str(), Some("result"));
    assert_eq!(ok["outcome"].as_str(), Some("Solved"));

    let stats = exchange_on(&stream, "{\"type\":\"stats\"}");
    assert_eq!(stats["type"].as_str(), Some("stats"));
    assert_eq!(stats["errors"].as_u64(), Some(2));
    server.shutdown();
}

#[test]
fn oversized_request_resolves_via_spill_and_poll() {
    let _serial = serial();
    let mut cfg = config("spill");
    cfg.spill_tasks = 1; // every instance is "oversized"
    let data_dir = cfg.data_dir.clone();
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let ticket_resp = exchange(addr, &solve_line(""));
    assert_eq!(
        ticket_resp["type"].as_str(),
        Some("ticket"),
        "{ticket_resp:?}"
    );
    let ticket = ticket_resp["ticket"].as_str().unwrap().to_string();
    assert_eq!(ticket_resp["status"].as_str(), Some("queued"));

    // Poll until the heavy worker settles it.
    let deadline = Instant::now() + Duration::from_secs(20);
    let done = loop {
        let poll = exchange(
            addr,
            &format!("{{\"type\":\"poll\",\"ticket\":\"{ticket}\"}}"),
        );
        assert_eq!(poll["type"].as_str(), Some("poll"), "{poll:?}");
        if poll["status"].as_str() == Some("done") {
            break poll;
        }
        assert!(Instant::now() < deadline, "spill job never settled");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(done["outcome"].as_str(), Some("Solved"));

    // The settled spill is now an ordinary cache hit.
    let repeat = exchange(addr, &solve_line(""));
    assert_eq!(repeat["type"].as_str(), Some("result"));
    assert_eq!(repeat["cache"].as_str(), Some("hit"));

    // Unknown tickets are structured errors.
    let unknown = exchange(addr, "{\"type\":\"poll\",\"ticket\":\"00000000000000aa\"}");
    assert_eq!(unknown["type"].as_str(), Some("error"));

    server.shutdown();
    // Clean shutdown leaves no leases behind.
    let leases = mgrts_bench::queue::list_leases(&data_dir.join("leases")).unwrap();
    assert!(leases.is_empty(), "orphaned leases: {leases:?}");
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let _serial = serial();
    let mut cfg = config("overload");
    cfg.workers = 1;
    cfg.queue_cap = 1;
    cfg.solve_delay_ms = 400;
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // Four distinct requests (seed separates keys). Write them all before
    // reading any response, so they contend for the single queue slot
    // while the lone worker sits in its 400 ms delay.
    let streams: Vec<TcpStream> = (0..4)
        .map(|i| {
            let stream = TcpStream::connect(addr).unwrap();
            let line = solve_line(&format!(",\"seed\":{}", i + 1));
            (&stream).write_all(format!("{line}\n").as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            stream
        })
        .collect();
    let mut kinds: Vec<String> = streams
        .iter()
        .map(|s| {
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let v: Value = serde_json::from_str(&line).unwrap();
            v["type"].as_str().unwrap().to_string()
        })
        .collect();
    kinds.sort();
    assert!(
        kinds.iter().any(|k| k == "overloaded"),
        "expected an admission rejection, got {kinds:?}"
    );
    assert!(server.stats().rejected >= 1);
    server.shutdown();
}

#[test]
fn metrics_request_returns_parseable_exposition() {
    let _serial = serial();
    let server = Server::start(config("metrics")).unwrap();
    let addr = server.addr();

    // Drive some traffic first so the counters are non-zero: one solve
    // (a cache miss) plus a stats probe.
    let first = exchange(addr, &solve_line(""));
    assert_eq!(first["type"].as_str(), Some("result"), "{first:?}");
    exchange(addr, "{\"type\":\"stats\"}");

    let resp = exchange(addr, "{\"type\":\"metrics\"}");
    assert_eq!(resp["type"].as_str(), Some("metrics"), "{resp:?}");
    assert_eq!(
        resp["content_type"].as_str(),
        Some("text/plain; version=0.0.4")
    );
    let body = resp["body"].as_str().expect("metrics body");

    // Structural checks of the exposition: every non-comment line is
    // `name{labels} value` with a finite numeric value.
    let mut names = std::collections::HashSet::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect(line);
        let v: f64 = value.parse().expect(line);
        assert!(v.is_finite(), "{line}");
        let name = name_part.split(['{', ' ']).next().unwrap();
        names.insert(name.to_string());
    }

    // Request counter saw the traffic above.
    let requests = body
        .lines()
        .find(|l| l.starts_with("mgrts_serve_requests_total "))
        .expect("requests counter");
    let count: f64 = requests.rsplit_once(' ').unwrap().1.parse().unwrap();
    assert!(count >= 2.0, "{requests}");

    // Queue gauges and at least one latency histogram are exposed.
    assert!(names.contains("mgrts_serve_queue_depth"), "{names:?}");
    assert!(names.contains("mgrts_serve_heavy_queue_depth"), "{names:?}");
    assert!(
        body.contains("# TYPE mgrts_serve_request_duration_us histogram"),
        "{body}"
    );
    assert!(
        body.lines()
            .any(|l| l.starts_with("mgrts_serve_request_duration_us_bucket{le=\"+Inf\"}")),
        "{body}"
    );

    // Per-solver search telemetry appears once an engine has run.
    assert!(body.contains("mgrts_solver_solves_total{solver="), "{body}");
    server.shutdown();
}

#[test]
fn slow_request_threshold_logs_and_dumps_flight_recording() {
    let _serial = serial();
    let mut cfg = config("slowlog");
    cfg.slow_ms = 1; // everything qualifies as slow
    let data_dir = cfg.data_dir.clone();
    cfg.solve_delay_ms = 5;
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();
    let resp = exchange(addr, &solve_line(""));
    assert_eq!(resp["type"].as_str(), Some("result"), "{resp:?}");
    let ticket = resp["ticket"].as_str().unwrap().to_string();
    server.shutdown();

    // The flight recording for the slow ticket was dumped as a store
    // artifact, and each line is a well-formed event.
    let artifact = data_dir.join(format!("flight-{ticket}.jsonl"));
    let dump = std::fs::read_to_string(&artifact).expect("flight artifact");
    assert!(!dump.trim().is_empty());
    for line in dump.lines() {
        let ev: Value = serde_json::from_str(line).expect(line);
        assert!(ev["name"].as_str().is_some(), "{line}");
    }
    assert!(dump.lines().any(|l| l.contains("request.solve")), "{dump}");
}

#[test]
fn cache_survives_restart_and_shutdown_request_stops_server() {
    let _serial = serial();
    let cfg = config("restart");
    let data_dir = cfg.data_dir.clone();
    let server = Server::start(cfg.clone()).unwrap();
    let first = exchange(server.addr(), &solve_line(""));
    assert_eq!(first["cache"].as_str(), Some("miss"));

    // A `shutdown` request acknowledges, then stops the server.
    let ack = exchange(server.addr(), "{\"type\":\"shutdown\"}");
    assert_eq!(ack["type"].as_str(), Some("ok"));
    let token = server.cancel_token();
    server.shutdown();
    assert!(token.is_cancelled());

    // A fresh server over the same store answers from the cache.
    let mut cfg2 = config("restart2");
    cfg2.data_dir = data_dir;
    let server = Server::start(cfg2).unwrap();
    let hit = exchange(server.addr(), &solve_line(""));
    assert_eq!(hit["cache"].as_str(), Some("hit"), "{hit:?}");
    assert_eq!(server.stats().solves, 0);
    server.shutdown();
}

#[test]
fn heavy_worker_panic_settles_ticket_failed_and_releases_lease() {
    let _serial = serial();
    let mut cfg = config("heavypanic");
    cfg.spill_tasks = 1; // every solve spills to the heavy queue
    cfg.job_retries = 1; // two attempts, both panic
    let data_dir = cfg.data_dir.clone();
    // Every engine execution panics under this plan — the poison job.
    let _plan = mgrts_fault::install_guarded(
        mgrts_fault::FaultPlan::parse("seed=9;engine.solve:panic:always").unwrap(),
    );
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    let ticket_resp = exchange(addr, &solve_line(""));
    assert_eq!(
        ticket_resp["type"].as_str(),
        Some("ticket"),
        "{ticket_resp:?}"
    );
    let ticket = ticket_resp["ticket"].as_str().unwrap().to_string();

    // The supervisor catches both panics, then settles the ticket as the
    // terminal `failed` — it never wedges in `pending`, and the poll
    // carries the Failed outcome.
    let deadline = Instant::now() + Duration::from_secs(20);
    let failed = loop {
        let poll = exchange(
            addr,
            &format!("{{\"type\":\"poll\",\"ticket\":\"{ticket}\"}}"),
        );
        assert_eq!(poll["type"].as_str(), Some("poll"), "{poll:?}");
        if poll["status"].as_str() == Some("failed") {
            break poll;
        }
        assert!(
            Instant::now() < deadline,
            "poison job never settled as failed: {poll:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(failed["outcome"].as_str(), Some("Failed"), "{failed:?}");
    assert!(server.stats().failed >= 1);

    // The `job-<ticket>` lease was released by the supervisor right away
    // (its TTL is 60 s — a leaked lease would still be visible here).
    let leases = mgrts_bench::queue::list_leases(&data_dir.join("leases")).unwrap();
    assert!(
        !leases.iter().any(|l| l.shard.contains(&ticket)),
        "job lease leaked past the panic: {leases:?}"
    );

    // The failure is durable: a restarted server (fault plan cleared)
    // reports the same terminal status instead of re-running the job.
    server.shutdown();
    drop(_plan);
    let mut cfg2 = config("heavypanic2");
    cfg2.data_dir = data_dir;
    let server = Server::start(cfg2).unwrap();
    let poll = exchange(
        server.addr(),
        &format!("{{\"type\":\"poll\",\"ticket\":\"{ticket}\"}}"),
    );
    assert_eq!(poll["status"].as_str(), Some("failed"), "{poll:?}");
    server.shutdown();
}
