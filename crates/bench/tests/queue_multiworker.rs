//! Multi-worker drain determinism: several concurrent workers — including
//! one SIGKILLed mid-shard and restarted — must reconstruct exactly the
//! record set of a single-process `campaign run`. This is the acceptance
//! property of the distributed queue, stated over the canonical export
//! (wall-clock fields normalized — they are measurements, not results).
//!
//! "Killed mid-shard" is simulated at the storage + lease layer, which is
//! where a SIGKILL actually bites: the dead worker leaves (a) record
//! lines of a shard that never reached its checkpoint, (b) a truncated
//! trailing record line in its own segment, and (c) a stale lease whose
//! heartbeat stops. Live workers must ignore (a) and (b) via the loader
//! and reclaim (c) after expiry.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use proptest::prelude::*;

use mgrts_bench::campaign::{
    canonical_store_export, compact, report, run_fresh, CampaignOptions, Manifest, ReportKind,
};
use mgrts_bench::queue::{
    dispatch, now_unix_ms, run_worker, status, Lease, WorkerOptions, LEASE_DIR,
};
use mgrts_core::engine::CancelGroup;

fn manifest(seed: u64, shard_size: usize) -> Manifest {
    Manifest::parse(&format!(
        r#"
[campaign]
name = "queue-prop"
seed = {seed}
time_limit_ms = 5000
instances_per_cell = 4
shard_size = {shard_size}

[grid]
n = [3, 4]
m = [2]
t_max = [4]
solvers = ["csp2-dc", "csp2-rm", "sat"]
"#
    ))
    .expect("valid manifest")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mgrts-queue-mw-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wopts(id: &str, max_shards: Option<u64>) -> WorkerOptions {
    WorkerOptions {
        id: id.to_string(),
        threads: 2,
        lease_ttl: Duration::from_millis(300),
        poll: Duration::from_millis(20),
        max_shards,
        progress: false,
    }
}

/// Leave the debris a SIGKILL mid-commit leaves in a worker's own
/// segment — record lines of a shard that never reached its checkpoint
/// (so the hash appears in no checkpoint segment), then a truncated
/// line — plus the dead worker's stale lease on the shard it was solving
/// (`victim`), heartbeat long stopped.
fn simulate_kill_mid_shard(store: &Path, worker: &str, victim: &str) {
    let mut raw = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(store.join(format!("records-{worker}.jsonl")))
        .expect("worker segment");
    let stale = r#"{"shard":"deadbeefdeadbeef","cell":0,"instance":0,"global_instance":0,"solver":"Csp1","outcome":"Solved","time_us":1,"ratio":0.5,"filtered":false,"m":2,"n":3,"t_max":4,"hetero":false,"hyperperiod":12,"seed":1}"#;
    writeln!(raw, "{stale}").unwrap();
    write!(raw, "{}", &stale[..stale.len() / 2]).unwrap();
    let lease = Lease {
        shard: victim.to_string(),
        worker: worker.to_string(),
        nonce: 1,
        heartbeat_unix_ms: now_unix_ms().saturating_sub(10_000),
        ttl_ms: 300,
    };
    std::fs::create_dir_all(store.join(LEASE_DIR)).unwrap();
    std::fs::write(
        store.join(LEASE_DIR).join(format!("{victim}.lease")),
        serde_json::to_string(&lease).unwrap(),
    )
    .unwrap();
}

proptest! {
    // Each case runs one single-process campaign plus a multi-worker
    // drain; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn concurrent_workers_with_kill_match_single_process_run(
        seed in 0u64..1_000,
        shard_size in 1usize..=6,
    ) {
        let m = manifest(seed, shard_size);
        let reference = tmp(&format!("ref-{seed}-{shard_size}"));
        let shared = tmp(&format!("dist-{seed}-{shard_size}"));

        // Single-process reference run.
        let full = run_fresh(
            &m,
            &reference,
            &CampaignOptions { threads: 2, progress: false, max_shards: None },
            &CancelGroup::new(),
        )
        .unwrap();
        prop_assert!(full.summary.completed);

        // Distributed drain: dispatch, let worker w1 "die" mid-shard
        // (one committed shard, then kill debris + a stale lease on the
        // next pending shard), then two live workers — one of them the
        // restarted w1 — drain concurrently.
        dispatch(&m, &shared, false).unwrap();
        let dead = run_worker(&shared, &wopts("w1", Some(1)), &CancelGroup::new()).unwrap();
        prop_assert!(dead.shards_committed >= 1);
        let done = mgrts_bench::sink::load_done_shards(&shared).unwrap();
        let victim = m
            .plan()
            .into_iter()
            .find(|s| !done.contains(&s.hash))
            .map(|s| s.hash)
            .expect("a pending shard remains after the partial drain");
        simulate_kill_mid_shard(&shared, "w1", &victim);

        let shared_a = shared.clone();
        let shared_b = shared.clone();
        let a = std::thread::spawn(move || {
            run_worker(&shared_a, &wopts("w1", None), &CancelGroup::new()).unwrap()
        });
        let b = std::thread::spawn(move || {
            run_worker(&shared_b, &wopts("w2", None), &CancelGroup::new()).unwrap()
        });
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        prop_assert!(ra.summary.completed);
        prop_assert!(rb.summary.completed);

        let st = status(&shared).unwrap();
        prop_assert!(st.complete);
        prop_assert!(st.leases.is_empty(), "leases left behind: {:?}", st.leases);

        let want = canonical_store_export(&reference).unwrap();
        let got = canonical_store_export(&shared).unwrap();
        prop_assert!(!want.is_empty());
        prop_assert_eq!(
            &want, &got,
            "multi-worker record set diverged (seed {}, shard_size {})",
            seed, shard_size
        );

        // Compaction drops the dead worker's stale copies without
        // changing the believable record set, and is idempotent.
        let before = got;
        let c1 = compact(&shared).unwrap();
        prop_assert_eq!(canonical_store_export(&shared).unwrap(), before.clone());
        prop_assert_eq!(
            std::fs::read_to_string(shared.join("canonical.jsonl")).unwrap(),
            before.clone()
        );
        let c2 = compact(&shared).unwrap();
        prop_assert_eq!(c1.records, c2.records);
        prop_assert_eq!(c2.segments_merged, 0, "second compact found segments");
        prop_assert_eq!(canonical_store_export(&shared).unwrap(), before);

        std::fs::remove_dir_all(&reference).ok();
        std::fs::remove_dir_all(&shared).ok();
    }
}

#[test]
fn dispatch_is_idempotent_and_guards_fingerprints() {
    let m = manifest(7, 4);
    let dir = tmp("dispatch");
    let first = dispatch(&m, &dir, false).unwrap();
    assert!(first.initialized);
    let again = dispatch(&m, &dir, false).unwrap();
    assert!(!again.initialized, "joining must not clear the store");
    // A different campaign over the same store is refused...
    let other = manifest(8, 4);
    assert!(dispatch(&other, &dir, false).is_err());
    // ...unless --fresh clears it.
    let fresh = dispatch(&other, &dir, true).unwrap();
    assert!(fresh.initialized);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_refuses_an_undispatched_store() {
    let dir = tmp("undispatched");
    std::fs::create_dir_all(&dir).unwrap();
    let err = run_worker(&dir, &wopts("w1", None), &CancelGroup::new());
    assert!(err.is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hetero_report_renders_unsupported_counts() {
    let m = Manifest::parse(
        r#"
[campaign]
name = "hetero-report"
seed = 11
time_limit_ms = 5000
instances_per_cell = 2

[grid]
n = [3]
m = [2]
t_max = [4]
hetero = [true]
solvers = ["csp2-dc", "csp2-generic"]
"#,
    )
    .unwrap();
    let dir = tmp("hetero");
    run_fresh(
        &m,
        &dir,
        &CampaignOptions {
            threads: 1,
            progress: false,
            max_shards: None,
        },
        &CancelGroup::new(),
    )
    .unwrap();
    let out = report(&dir, ReportKind::Hetero).unwrap();
    assert!(out.contains("HETERO"), "{out}");
    assert!(out.contains("hetero=true"), "{out}");
    assert!(out.contains("unsupported"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion at full smoke scale: two workers drain
/// `bench/manifests/smoke.toml` concurrently, one of them killed after
/// its first shard and restarted, and the canonical export matches the
/// single-process `campaign run`'s.
///
/// One caveat is inherent to the *workload*, not the queue: the smoke
/// campaign deliberately uses a tight 1 s **wall-clock** budget on hard
/// instances, so whether a borderline run classifies as a decided
/// verdict or `Overrun` is machine- and load-dependent across any two
/// independent executions — single-process re-runs included. That is the
/// exact noise model the perf gate tolerates ("budget straddles"). The
/// sound property is therefore: identical unit sets, records identical
/// in every field except for outcome exchanges where one side is
/// `Overrun` — and *byte-identical* exports whenever no run straddled
/// (the property test above pins byte-identity under comfortable
/// budgets, where straddling cannot occur).
///
/// Minutes of solver time — ignored by default, runnable with
/// `cargo test --release -p mgrts-bench --test queue_multiworker -- --ignored`;
/// the CI `bench-smoke` job covers the same scale with real SIGKILLed
/// worker processes and the straddle-tolerant `gate` comparison.
#[test]
#[ignore = "smoke-scale acceptance; run with -- --ignored (minutes of solver time)"]
fn two_workers_drain_the_smoke_manifest_match_single_process() {
    use mgrts_bench::sink::CampaignRecord;
    use mgrts_bench::InstanceOutcome;
    use std::collections::BTreeMap;

    let smoke = Manifest::load(Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench/manifests/smoke.toml"
    )))
    .unwrap();
    let reference = tmp("smoke-ref");
    let shared = tmp("smoke-dist");
    run_fresh(
        &smoke,
        &reference,
        &CampaignOptions::default(),
        &CancelGroup::new(),
    )
    .unwrap();

    dispatch(&smoke, &shared, false).unwrap();
    let dead = run_worker(&shared, &wopts("w1", Some(1)), &CancelGroup::new()).unwrap();
    assert!(dead.shards_committed >= 1);
    let done = mgrts_bench::sink::load_done_shards(&shared).unwrap();
    let victim = smoke
        .plan()
        .into_iter()
        .find(|s| !done.contains(&s.hash))
        .map(|s| s.hash)
        .expect("a pending shard remains after the partial drain");
    simulate_kill_mid_shard(&shared, "w1", &victim);
    let shared_a = shared.clone();
    let shared_b = shared.clone();
    let a = std::thread::spawn(move || {
        run_worker(&shared_a, &wopts("w1", None), &CancelGroup::new()).unwrap()
    });
    let b = std::thread::spawn(move || {
        run_worker(&shared_b, &wopts("w2", None), &CancelGroup::new()).unwrap()
    });
    assert!(a.join().unwrap().summary.completed);
    assert!(b.join().unwrap().summary.completed);

    let want = canonical_store_export(&reference).unwrap();
    let got = canonical_store_export(&shared).unwrap();
    let by_unit = |export: &str| -> BTreeMap<(usize, u64, String), CampaignRecord> {
        export
            .lines()
            .map(|l| serde_json::from_str::<CampaignRecord>(l).expect("canonical line"))
            .map(|r| ((r.cell, r.instance, r.solver.name().to_string()), r))
            .collect()
    };
    let (ra, rb) = (by_unit(&want), by_unit(&got));
    assert_eq!(
        ra.keys().collect::<Vec<_>>(),
        rb.keys().collect::<Vec<_>>(),
        "distributed drain covered a different unit set"
    );
    let mut straddles = 0u32;
    for (key, a) in &ra {
        let b = &rb[key];
        if a == b {
            continue;
        }
        // Only the outcome may differ, and only as a budget straddle:
        // one side decided, the other ran out of wall clock.
        let mut a_with_b_outcome = a.clone();
        a_with_b_outcome.outcome = b.outcome;
        assert_eq!(
            &a_with_b_outcome, b,
            "non-outcome divergence at {key:?} — a real determinism bug"
        );
        assert!(
            a.outcome == InstanceOutcome::Overrun || b.outcome == InstanceOutcome::Overrun,
            "verdict flip without an Overrun side at {key:?}: {:?} vs {:?}",
            a.outcome,
            b.outcome
        );
        straddles += 1;
    }
    eprintln!("smoke drain: {straddles} budget-straddle exchange(s) between runs");
    if straddles == 0 {
        assert_eq!(want, got, "no straddles, exports must be byte-identical");
        assert_eq!(
            report(&reference, ReportKind::Table1).unwrap(),
            report(&shared, ReportKind::Table1).unwrap()
        );
    }
    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&shared).ok();
}
