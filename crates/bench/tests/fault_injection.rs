//! Storage-fault robustness of the campaign engine: a full campaign run
//! with a hostile (but storage-only) fault plan injected under every file
//! operation must still converge to exactly the record set of a
//! fault-free run — no duplicated units, no lost units, no torn records.
//!
//! Faults are injected through [`mgrts_fault::FaultFs`], the IO shim the
//! record sink routes its appends / flushes / syncs / checkpoint writes
//! through. The plan space deliberately excludes:
//!
//! * `engine.solve` — a panicking engine parks shards (by design), which
//!   legitimately changes the final record set;
//! * `corrupt` faults on record lines — scribbled bytes of a
//!   *checkpointed* shard are quarantined, which also (by design) drops
//!   those units rather than inventing data;
//! * `store.manifest` — a store without a manifest cannot be resumed;
//!   losing the manifest write is dispatch failure, not mid-run chaos.
//!
//! What remains is the transient-error space (interruptions, timeouts,
//! full disks, busy handles) the commit retry + segment fail-over
//! machinery claims to absorb. If a plan is hostile enough that the
//! campaign gives up anyway, the store must still be *resumable* once
//! the weather clears — the acceptance property is export equality
//! either way.

use std::path::PathBuf;

use proptest::prelude::*;

use mgrts_bench::campaign::{canonical_store_export, resume, run_fresh, CampaignOptions, Manifest};
use mgrts_core::engine::CancelGroup;
use mgrts_fault::FaultPlan;

fn manifest(seed: u64, shard_size: usize) -> Manifest {
    Manifest::parse(&format!(
        r#"
[campaign]
name = "fault-prop"
seed = {seed}
time_limit_ms = 5000
instances_per_cell = 3
shard_size = {shard_size}

[grid]
n = [3, 4]
m = [2]
t_max = [4]
solvers = ["csp2-dc", "sat"]
"#
    ))
    .expect("valid manifest")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mgrts-fault-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> CampaignOptions {
    CampaignOptions {
        threads: 2,
        progress: false,
        max_shards: None,
    }
}

/// Derive a deterministic storage-fault plan from one seed: 1–3 rules
/// over the sink's fault sites, transient error kinds only, mixed
/// nth / every-nth / probabilistic triggers.
fn storage_plan(plan_seed: u64) -> String {
    const SITES: [&str; 5] = [
        "sink.append",
        "sink.flush",
        "sink.sync",
        "sink.checkpoint",
        "sink.open",
    ];
    const KINDS: [&str; 5] = ["interrupted", "timeout", "busy", "full", "io"];
    let mut x = plan_seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    let n_rules = 1 + next() % 3;
    let rules: Vec<String> = (0..n_rules)
        .map(|_| {
            let site = SITES[(next() % SITES.len() as u64) as usize];
            let kind = KINDS[(next() % KINDS.len() as u64) as usize];
            let trigger = match next() % 3 {
                0 => format!("n{}", 1 + next() % 4),
                1 => format!("every{}", 2 + next() % 4),
                _ => format!("p0.{}", 1 + next() % 3),
            };
            format!("{site}:{kind}:{trigger}")
        })
        .collect();
    format!("seed={plan_seed};{}", rules.join(";"))
}

proptest! {
    // Each case runs two full campaigns (one under chaos); keep modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn campaign_under_storage_faults_matches_fault_free_run(
        seed in 0u64..1_000,
        plan_seed in 1u64..100_000,
        shard_size in 1usize..=5,
    ) {
        let m = manifest(seed, shard_size);
        let a = tmp(&format!("ref-{seed}-{plan_seed}-{shard_size}"));
        let b = tmp(&format!("chaos-{seed}-{plan_seed}-{shard_size}"));

        // Fault-free reference run.
        let reference_run = run_fresh(&m, &a, &opts(), &CancelGroup::new()).unwrap();
        prop_assert!(reference_run.summary.completed);

        // Chaos run: the same campaign with the storage fault plan
        // active. The commit retry + segment fail-over machinery should
        // absorb most plans outright; a plan hostile enough to exhaust
        // the retries fails the run but must leave a resumable store.
        let plan_text = storage_plan(plan_seed);
        let plan = FaultPlan::parse(&plan_text).expect("generated plan parses");
        let guard = mgrts_fault::install_guarded(plan);
        let chaos_run = run_fresh(&m, &b, &opts(), &CancelGroup::new());
        let injected = mgrts_fault::injected_total();
        drop(guard); // clear the plan before any recovery resume
        match chaos_run {
            Ok(outcome) => prop_assert!(outcome.summary.completed),
            Err(e) => {
                // The campaign gave up under fire — the store must heal
                // by resuming once the faults stop.
                let recovered = resume(&b, &opts(), &CancelGroup::new())
                    .unwrap_or_else(|r| panic!("store not resumable after `{e}` (plan {plan_text}): {r}"));
                prop_assert!(recovered.summary.completed);
            }
        }

        // Acceptance: canonical exports identical — every unit present
        // exactly once with the same verdict, regardless of how many
        // retries, fail-over segments or healed truncations it took.
        let reference = canonical_store_export(&a).unwrap();
        let rebuilt = canonical_store_export(&b).unwrap();
        prop_assert!(!reference.is_empty());
        prop_assert_eq!(
            reference, rebuilt,
            "chaos run diverged (seed {}, plan `{}`, shard_size {}, {} faults injected)",
            seed, plan_text, shard_size, injected
        );

        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}
