//! Resume determinism of the campaign engine: a campaign killed mid-shard
//! and resumed must reconstruct exactly the record set of an uninterrupted
//! run — the acceptance property of the record store.
//!
//! "Killed mid-shard" is simulated at the storage layer, which is where a
//! SIGKILL actually bites: the interrupted store ends with (a) record
//! lines from a shard that never reached its checkpoint and (b) a
//! truncated trailing record line. `resume` must discard both, re-run the
//! missing shards, and converge to the same canonical export (wall-clock
//! fields normalized — they are measurements, not results).

use std::io::Write;
use std::path::PathBuf;

use proptest::prelude::*;

use mgrts_bench::campaign::{canonical_store_export, resume, run_fresh, CampaignOptions, Manifest};
use mgrts_bench::sink::RECORDS_FILE;
use mgrts_core::engine::CancelGroup;

fn manifest(seed: u64, shard_size: usize) -> Manifest {
    Manifest::parse(&format!(
        r#"
[campaign]
name = "resume-prop"
seed = {seed}
time_limit_ms = 5000
instances_per_cell = 4
shard_size = {shard_size}

[grid]
n = [3, 4]
m = [2]
t_max = [4]
solvers = ["csp2-dc", "csp2-rm", "sat"]
"#
    ))
    .expect("valid manifest")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mgrts-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(max_shards: Option<u64>) -> CampaignOptions {
    CampaignOptions {
        threads: 2,
        progress: false,
        max_shards,
    }
}

/// Append SIGKILL debris to a record store: a full record line belonging
/// to a shard that never checkpointed, then a truncated line.
fn simulate_kill_mid_shard(store: &std::path::Path) {
    let mut raw = std::fs::OpenOptions::new()
        .append(true)
        .open(store.join(RECORDS_FILE))
        .expect("records file exists after a partial run");
    // A plausible but uncheckpointed record (shard hash no plan contains).
    let stale = r#"{"shard":"deadbeefdeadbeef","cell":0,"instance":0,"global_instance":0,"solver":"Csp1","outcome":"Solved","time_us":1,"ratio":0.5,"filtered":false,"m":2,"n":3,"t_max":4,"hetero":false,"hyperperiod":12,"seed":1}"#;
    writeln!(raw, "{stale}").unwrap();
    // A run record cut off mid-write.
    write!(raw, "{}", &stale[..stale.len() / 2]).unwrap();
}

proptest! {
    // Each case runs two full campaigns; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn killed_and_resumed_campaign_matches_uninterrupted_run(
        seed in 0u64..1_000,
        shard_size in 1usize..=6,
        kill_after in 1u64..=3,
    ) {
        let m = manifest(seed, shard_size);
        let a = tmp(&format!("a-{seed}-{shard_size}-{kill_after}"));
        let b = tmp(&format!("b-{seed}-{shard_size}-{kill_after}"));

        // Uninterrupted reference run.
        let full = run_fresh(&m, &a, &opts(None), &CancelGroup::new()).unwrap();
        prop_assert!(full.summary.completed);

        // Interrupted run: stop after `kill_after` shards, then corrupt the
        // store the way a SIGKILL mid-shard would.
        let partial = run_fresh(&m, &b, &opts(Some(kill_after)), &CancelGroup::new()).unwrap();
        prop_assert!(partial.shards_committed <= kill_after);
        simulate_kill_mid_shard(&b);

        // Resume to completion (twice: the second resume must be a no-op).
        let resumed = resume(&b, &opts(None), &CancelGroup::new()).unwrap();
        prop_assert!(resumed.summary.completed);
        let noop = resume(&b, &opts(None), &CancelGroup::new()).unwrap();
        prop_assert_eq!(noop.shards_committed, 0);

        let reference = canonical_store_export(&a).unwrap();
        let rebuilt = canonical_store_export(&b).unwrap();
        prop_assert!(!reference.is_empty());
        prop_assert_eq!(
            reference, rebuilt,
            "resumed record set diverged (seed {}, shard_size {}, kill_after {})",
            seed, shard_size, kill_after
        );

        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}

#[test]
fn report_over_resumed_store_matches_uninterrupted_report() {
    use mgrts_bench::campaign::{report, ReportKind};

    let m = manifest(2009, 5);
    let a = tmp("report-a");
    let b = tmp("report-b");
    run_fresh(&m, &a, &opts(None), &CancelGroup::new()).unwrap();
    run_fresh(&m, &b, &opts(Some(2)), &CancelGroup::new()).unwrap();
    simulate_kill_mid_shard(&b);
    resume(&b, &opts(None), &CancelGroup::new()).unwrap();
    // Tables I & II aggregate verdict counts only, so the resumed store
    // reproduces them exactly; Tables III/IV also print mean wall-times,
    // which are measurements and legitimately differ between runs — for
    // those we only require that both stores render.
    assert_eq!(
        report(&a, ReportKind::Table1).unwrap(),
        report(&b, ReportKind::Table1).unwrap(),
        "Table I/II diverged between uninterrupted and resumed stores"
    );
    for kind in [ReportKind::Table3, ReportKind::Table4] {
        assert!(!report(&b, kind).unwrap().is_empty());
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}
