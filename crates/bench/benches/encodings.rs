//! Criterion micro-benchmarks: CSP1 vs CSP2 vs CSP2-on-generic-engine.
//!
//! The paper's headline comparison (Table I) in microbenchmark form: the
//! specialized chronological CSP2 search should beat the boolean CSP1
//! encoding on the generic solver by orders of magnitude, and the generic
//! rendition of CSP2 should land in between.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mgrts_core::csp1::{encode as encode_csp1, solve_csp1, Csp1Config};
use mgrts_core::csp2::Csp2Solver;
use mgrts_core::csp2_generic::{solve_csp2_generic, Csp2GenericConfig};
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use rt_task::TaskSet;

fn feasible_corpus(n: usize, count: usize) -> Vec<(TaskSet, usize)> {
    // Pre-filter to feasible instances so every solver does comparable
    // work (finding a schedule, not proving infeasibility).
    let cfg = GeneratorConfig {
        n,
        m: MSpec::MinUtilization,
        t_max: 5,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 77);
    let mut out = Vec::new();
    let mut idx = 0;
    while out.len() < count {
        let p = gen.nth(idx);
        idx += 1;
        let feasible = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .solve()
            .verdict
            .is_feasible();
        if feasible {
            out.push((p.taskset, p.m));
        }
    }
    out
}

fn bench_solvers(c: &mut Criterion) {
    let corpus = feasible_corpus(5, 8);
    let mut group = c.benchmark_group("solve_feasible_n5");
    group.sample_size(20);
    group.bench_function("csp2_dc", |b| {
        b.iter(|| {
            for (ts, m) in &corpus {
                let res = Csp2Solver::new(ts, *m)
                    .unwrap()
                    .with_order(TaskOrder::DeadlineMinusWcet)
                    .solve();
                black_box(res.verdict.is_feasible());
            }
        })
    });
    // The engine-backed solvers get a per-solve wall-clock cap: a single
    // unlucky instance can otherwise push one iteration into minutes and
    // the whole group into hours. Overruns count as completed iterations —
    // this *underestimates* how much slower the generic routes are, which
    // only strengthens the comparison's conclusion.
    let cap = Some(std::time::Duration::from_millis(250));
    group.bench_function("csp2_generic_engine", |b| {
        b.iter(|| {
            for (ts, m) in &corpus {
                let cfg = Csp2GenericConfig {
                    time: cap,
                    ..Csp2GenericConfig::default()
                };
                let res = solve_csp2_generic(ts, *m, &cfg).unwrap();
                black_box(res.verdict.is_feasible());
            }
        })
    });
    group.bench_function("csp1_generic_engine", |b| {
        b.iter(|| {
            for (ts, m) in &corpus {
                let cfg = Csp1Config {
                    time: cap,
                    ..Csp1Config::default()
                };
                let res = solve_csp1(ts, *m, &cfg).unwrap();
                black_box(res.verdict.is_feasible());
            }
        })
    });
    group.finish();
}

fn bench_encoding_cost(c: &mut Criterion) {
    // Pure model-construction cost of CSP1 as the hyperperiod grows — the
    // memory wall of Table IV in microcosm.
    let mut group = c.benchmark_group("csp1_encode");
    for t_max in [4u64, 6, 8] {
        let cfg = GeneratorConfig {
            n: 6,
            m: MSpec::Fixed(3),
            t_max,
            order: ParamOrder::DeadlineFirst,
            synchronous: false,
        };
        let p = ProblemGenerator::new(cfg, 3).nth(0);
        group.bench_with_input(BenchmarkId::from_parameter(t_max), &p, |b, p| {
            b.iter(|| black_box(encode_csp1(&p.taskset, p.m).unwrap().0.num_vars()))
        });
    }
    group.finish();
}

fn bench_infeasible_proof(c: &mut Criterion) {
    // Proving infeasibility (the paper notes this is the hard direction).
    let ts = TaskSet::from_ocdt(&[
        (0, 1, 1, 2),
        (0, 1, 1, 2),
        (0, 1, 1, 2),
        (0, 1, 2, 3),
        (0, 1, 2, 3),
    ]);
    let m = 2;
    let mut group = c.benchmark_group("prove_infeasible");
    group.bench_function("csp2_dc", |b| {
        b.iter(|| {
            let res = Csp2Solver::new(&ts, m)
                .unwrap()
                .with_order(TaskOrder::DeadlineMinusWcet)
                .solve();
            black_box(res.verdict.is_infeasible());
        })
    });
    group.bench_function("csp1", |b| {
        b.iter(|| {
            let res = solve_csp1(&ts, m, &Csp1Config::default()).unwrap();
            black_box(res.verdict.is_infeasible());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_encoding_cost,
    bench_infeasible_proof
);
criterion_main!(benches);
