//! Criterion ablation benches for the search-strategy ingredients of
//! Section V-C: value-ordering heuristics (the Table I columns) and the
//! eq. (10) symmetry-breaking constraint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mgrts_core::csp2::Csp2Solver;
use mgrts_core::csp2_generic::{solve_csp2_generic, Csp2GenericConfig};
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, ProblemGenerator};

fn bench_task_orders(c: &mut Criterion) {
    // A batch of paper-shaped instances (m = 5, n = 10, Tmax = 7), solved
    // by each Table I heuristic column.
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), 11);
    let problems: Vec<_> = gen
        .batch(40)
        .into_iter()
        .filter(|p| !p.filtered_out())
        .take(12)
        .collect();
    let mut group = c.benchmark_group("csp2_value_ordering");
    group.sample_size(10);
    for order in TaskOrder::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(order.label()),
            &order,
            |b, &order| {
                b.iter(|| {
                    for p in &problems {
                        let res = Csp2Solver::new(&p.taskset, p.m)
                            .unwrap()
                            .with_order(order)
                            .with_budget(mgrts_core::csp2::Csp2Budget {
                                time: Some(std::time::Duration::from_millis(250)),
                                max_decisions: None,
                            })
                            .solve();
                        black_box(res.stats.decisions);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_symmetry_breaking(c: &mut Criterion) {
    // eq. (10) on/off on the generic CSP2 rendition: quantifies the m!
    // permutation collapse.
    let gen = ProblemGenerator::new(
        GeneratorConfig {
            n: 5,
            t_max: 4,
            ..GeneratorConfig::table1()
        },
        23,
    );
    let problems: Vec<_> = gen
        .batch(30)
        .into_iter()
        .filter(|p| !p.filtered_out())
        .take(6)
        .collect();
    let mut group = c.benchmark_group("eq10_symmetry");
    group.sample_size(10);
    for (name, sym) in [("with", true), ("without", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sym, |b, &sym| {
            b.iter(|| {
                for p in &problems {
                    let cfg = Csp2GenericConfig {
                        symmetry_breaking: sym,
                        time: Some(std::time::Duration::from_millis(500)),
                        ..Default::default()
                    };
                    let res = solve_csp2_generic(&p.taskset, p.m, &cfg).unwrap();
                    black_box(res.stats.failures);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_task_orders, bench_symmetry_breaking);
criterion_main!(benches);
