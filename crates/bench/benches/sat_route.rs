//! Criterion benches for the SAT route: CNF encoding cost, CDCL solve
//! time vs the specialized CSP2 search, and the at-most-one encoding
//! ablation (pairwise vs ladder).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mgrts_core::csp1_sat::{encode_cnf, solve_csp1_sat, Csp1SatConfig};
use mgrts_core::csp2::Csp2Solver;
use mgrts_core::heuristics::TaskOrder;
use rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use rt_sat::{AmoEncoding, SatConfig, SatSolver};
use rt_task::TaskSet;

fn feasible_corpus(n: usize, count: usize) -> Vec<(TaskSet, usize)> {
    let cfg = GeneratorConfig {
        n,
        m: MSpec::MinUtilization,
        t_max: 5,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 77);
    let mut out = Vec::new();
    let mut idx = 0;
    while out.len() < count {
        let p = gen.nth(idx);
        idx += 1;
        let feasible = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .solve()
            .verdict
            .is_feasible();
        if feasible {
            out.push((p.taskset, p.m));
        }
    }
    out
}

fn bench_encode(c: &mut Criterion) {
    let corpus = feasible_corpus(6, 4);
    let mut group = c.benchmark_group("cnf_encode_n6");
    for (i, (ts, m)) in corpus.iter().enumerate() {
        for (label, amo) in [
            ("pairwise", AmoEncoding::Pairwise),
            ("ladder", AmoEncoding::Ladder),
        ] {
            group.bench_with_input(BenchmarkId::new(label, i), ts, |b, ts| {
                b.iter(|| black_box(encode_cnf(ts, *m, amo).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_sat_vs_csp2(c: &mut Criterion) {
    let corpus = feasible_corpus(6, 4);
    let mut group = c.benchmark_group("sat_vs_csp2_n6");
    group.sample_size(20);
    for (i, (ts, m)) in corpus.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("sat_cdcl", i), ts, |b, ts| {
            b.iter(|| {
                let res = solve_csp1_sat(ts, *m, &Csp1SatConfig::default()).unwrap();
                assert!(black_box(res).verdict.is_feasible());
            });
        });
        group.bench_with_input(BenchmarkId::new("csp2_dc", i), ts, |b, ts| {
            b.iter(|| {
                let res = Csp2Solver::new(ts, *m)
                    .unwrap()
                    .with_order(TaskOrder::DeadlineMinusWcet)
                    .solve();
                assert!(black_box(res).verdict.is_feasible());
            });
        });
    }
    group.finish();
}

fn bench_raw_cdcl(c: &mut Criterion) {
    // Solver-only cost on a pre-built formula (excludes encoding).
    let corpus = feasible_corpus(8, 2);
    let mut group = c.benchmark_group("cdcl_solve_only_n8");
    group.sample_size(20);
    for (i, (ts, m)) in corpus.iter().enumerate() {
        let (cnf, _layout) = encode_cnf(ts, *m, AmoEncoding::Pairwise).unwrap();
        group.bench_function(BenchmarkId::new("cdcl", i), |b| {
            b.iter(|| {
                let mut solver = SatSolver::new(&cnf, SatConfig::default());
                black_box(solver.solve())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_sat_vs_csp2, bench_raw_cdcl);
criterion_main!(benches);
