//! Criterion benches for the incomplete solvers and the analytic battery:
//! local-search strategy ablation (min-conflicts / tabu / annealing) and
//! the cost of the polynomial schedulability tests relative to one exact
//! solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mgrts_core::csp2::Csp2Solver;
use mgrts_core::heuristics::TaskOrder;
use mgrts_core::local_search::{solve_local_search, LocalSearchConfig, LsStrategy};
use rt_analysis::analyze;
use rt_gen::{GeneratorConfig, MSpec, ParamOrder, ProblemGenerator};
use rt_task::TaskSet;

fn feasible_corpus(n: usize, count: usize) -> Vec<(TaskSet, usize)> {
    let cfg = GeneratorConfig {
        n,
        m: MSpec::MinUtilization,
        t_max: 5,
        order: ParamOrder::DeadlineFirst,
        synchronous: false,
    };
    let gen = ProblemGenerator::new(cfg, 99);
    let mut out = Vec::new();
    let mut idx = 0;
    while out.len() < count {
        let p = gen.nth(idx);
        idx += 1;
        let feasible = Csp2Solver::new(&p.taskset, p.m)
            .unwrap()
            .with_order(TaskOrder::DeadlineMinusWcet)
            .solve()
            .verdict
            .is_feasible();
        if feasible {
            out.push((p.taskset, p.m));
        }
    }
    out
}

fn bench_local_strategies(c: &mut Criterion) {
    let corpus = feasible_corpus(5, 4);
    let strategies: [(&str, LsStrategy); 3] = [
        ("min_conflicts", LsStrategy::MinConflicts),
        ("tabu", LsStrategy::Tabu { tenure: 10 }),
        (
            "annealing",
            LsStrategy::Annealing {
                t0: 2.0,
                cooling: 0.9995,
            },
        ),
    ];
    let mut group = c.benchmark_group("local_search_n5");
    group.sample_size(20);
    for (i, (ts, m)) in corpus.iter().enumerate() {
        for (label, strategy) in strategies {
            group.bench_with_input(BenchmarkId::new(label, i), ts, |b, ts| {
                b.iter(|| {
                    let cfg = LocalSearchConfig {
                        strategy,
                        max_iters: 500_000,
                        ..LocalSearchConfig::default()
                    };
                    let res = solve_local_search(ts, *m, &cfg).unwrap();
                    assert!(black_box(res).verdict.is_feasible());
                });
            });
        }
    }
    group.finish();
}

fn bench_analysis_battery(c: &mut Criterion) {
    let corpus = feasible_corpus(8, 4);
    let mut group = c.benchmark_group("analysis_vs_exact_n8");
    for (i, (ts, m)) in corpus.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("battery", i), ts, |b, ts| {
            b.iter(|| black_box(analyze(ts, *m)));
        });
        group.bench_with_input(BenchmarkId::new("exact_csp2", i), ts, |b, ts| {
            b.iter(|| {
                black_box(
                    Csp2Solver::new(ts, *m)
                        .unwrap()
                        .with_order(TaskOrder::DeadlineMinusWcet)
                        .solve(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_strategies, bench_analysis_battery);
criterion_main!(benches);
