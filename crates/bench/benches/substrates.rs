//! Criterion micro-benchmarks for the substrates: the CSP engine's trailed
//! store, the mod-H interval arithmetic, the problem generator, the clone
//! transform, the local-search alternative and the global simulators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use csp_engine::{Constraint, Model, SolverConfig, Store};
use mgrts_core::local_search::{solve_local_search, LocalSearchConfig};
use rt_gen::{GeneratorConfig, ProblemGenerator};
use rt_sim::{simulate, Policy};
use rt_task::{clone_transform, JobInstants, Task, TaskSet};

fn bench_store(c: &mut Criterion) {
    c.bench_function("store_push_remove_backtrack", |b| {
        let mut s = Store::new();
        let vars: Vec<_> = (0..64).map(|_| s.new_var(0, 127)).collect();
        b.iter(|| {
            s.push_level();
            for (k, &v) in vars.iter().enumerate() {
                s.remove(v, (k % 128) as i32).unwrap();
            }
            s.backtrack();
        })
    });
}

fn bench_pigeonhole(c: &mut Criterion) {
    // Full UNSAT proof: 8 pigeons, 7 holes via AllDifferent.
    c.bench_function("engine_pigeonhole_8_7", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let v = m.new_vars(8, 0, 6);
            m.post(Constraint::AllDifferent { vars: v });
            let mut solver = m.into_solver(SolverConfig::default());
            black_box(solver.solve().is_unsat());
        })
    });
}

fn bench_job_instants(c: &mut Criterion) {
    // The O(1) mod-H queries on a paper-scale system (Tmax = 15, H can hit
    // 360360).
    let tasks: Vec<Task> = (0..32)
        .map(|i| {
            let t = 7 + (i % 9) as u64;
            Task::ocdt(i as u64 % t, 1 + (i % 3) as u64, 3 + (i % 4) as u64, t)
        })
        .collect();
    let ts = TaskSet::new(tasks).unwrap();
    let ji = JobInstants::new(&ts).unwrap();
    let h = ji.hyperperiod();
    c.bench_function("job_at_sweep_32_tasks", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for t in (0..h).step_by((h / 10_000).max(1) as usize) {
                for i in 0..32 {
                    hits += u64::from(ji.job_at(i, t).is_some());
                }
            }
            black_box(hits)
        })
    });
}

fn bench_generator(c: &mut Criterion) {
    let gen = ProblemGenerator::new(GeneratorConfig::table1(), 5);
    c.bench_function("generate_100_problems", |b| {
        b.iter(|| black_box(gen.batch(100).len()))
    });
}

fn bench_clone_transform(c: &mut Criterion) {
    let ts = TaskSet::new(
        (0..16)
            .map(|i| Task::new(i, 2, 9 + i % 5, 3 + i % 3).unwrap())
            .collect(),
    )
    .unwrap();
    c.bench_function("clone_transform_16_arbitrary", |b| {
        b.iter(|| black_box(clone_transform(&ts).unwrap().0.len()))
    });
}

fn bench_local_search(c: &mut Criterion) {
    let ts = TaskSet::running_example();
    c.bench_function("min_conflicts_running_example", |b| {
        b.iter(|| {
            let res = solve_local_search(&ts, 2, &LocalSearchConfig::default()).unwrap();
            black_box(res.verdict.is_feasible())
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let ts = TaskSet::from_ocdt(&[
        (0, 2, 3, 3),
        (1, 1, 2, 4),
        (0, 1, 3, 6),
        (2, 2, 4, 6),
        (0, 1, 2, 2),
    ]);
    c.bench_function("global_edf_simulate", |b| {
        b.iter(|| black_box(simulate(&ts, 3, &Policy::Edf, None).misses.len()))
    });
}

criterion_group!(
    benches,
    bench_store,
    bench_pigeonhole,
    bench_job_instants,
    bench_generator,
    bench_clone_transform,
    bench_local_search,
    bench_simulator
);
criterion_main!(benches);
