//! Single-backend vs parallel-portfolio wall clock on the Table I roster.
//!
//! The paper runs its six solver configurations sequentially; the
//! portfolio races them on scoped threads with cooperative cancellation.
//! This bench quantifies what the race buys (and what thread overhead
//! costs on trivially easy instances) on a fixed mini-corpus drawn from
//! the Table I generator settings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use mgrts_core::engine::{Budget, CancelToken, FeasibilitySolver, SolverSpec};
use mgrts_core::portfolio::race;
use rt_gen::{GeneratorConfig, Problem, ProblemGenerator};
use rt_task::TaskSet;

fn corpus() -> Vec<Problem> {
    // Small Table-I-shaped instances: large enough that backends differ,
    // small enough for a benchmark loop.
    let gen = ProblemGenerator::new(
        GeneratorConfig {
            n: 5,
            t_max: 4,
            ..GeneratorConfig::table1()
        },
        0xBE5C,
    );
    gen.batch(6)
}

fn table1_roster() -> Vec<Box<dyn FeasibilitySolver>> {
    SolverSpec::TABLE1_ROSTER
        .iter()
        .map(|s| s.build())
        .collect()
}

fn budget() -> Budget {
    Budget::time_limit(Duration::from_secs(5))
}

/// Every roster member sequentially — the paper's evaluation shape.
fn bench_sequential_roster(c: &mut Criterion) {
    let problems = corpus();
    let roster = table1_roster();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("sequential-roster", |b| {
        b.iter(|| {
            for p in &problems {
                for solver in &roster {
                    let res = solver
                        .solve(&p.taskset, p.m, &budget(), &CancelToken::new())
                        .expect("valid instance");
                    black_box(res.verdict.is_feasible());
                }
            }
        })
    });
    group.finish();
}

/// The single strongest backend (the paper's +(D-C) column).
fn bench_best_single(c: &mut Criterion) {
    let problems = corpus();
    let best = SolverSpec::Csp2(mgrts_core::heuristics::TaskOrder::DeadlineMinusWcet).build();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("single-csp2-dc", |b| {
        b.iter(|| {
            for p in &problems {
                let res = best
                    .solve(&p.taskset, p.m, &budget(), &CancelToken::new())
                    .expect("valid instance");
                black_box(res.verdict.is_feasible());
            }
        })
    });
    group.finish();
}

/// The full roster raced in parallel with cancellation.
fn bench_portfolio_race(c: &mut Criterion) {
    let problems = corpus();
    let roster = table1_roster();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("portfolio-race", |b| {
        b.iter(|| {
            for p in &problems {
                let r = race(&roster, &p.taskset, p.m, &budget()).expect("valid instance");
                black_box(r.result.verdict.is_feasible());
            }
        })
    });
    group.finish();
}

/// Race on one dense instance where backend runtimes genuinely diverge.
fn bench_portfolio_hard_instance(c: &mut Criterion) {
    let ts = TaskSet::from_ocdt(&[
        (0, 1, 2, 2),
        (1, 3, 4, 4),
        (0, 2, 3, 3),
        (0, 1, 3, 4),
        (2, 1, 2, 6),
    ]);
    let roster = table1_roster();
    let mut group = c.benchmark_group("hard-instance");
    group.sample_size(10);
    group.bench_function("portfolio-race", |b| {
        b.iter(|| {
            let r = race(&roster, &ts, 3, &budget()).expect("valid instance");
            black_box(r.winner);
        })
    });
    group.bench_function("sequential-roster", |b| {
        b.iter(|| {
            for solver in &roster {
                let res = solver
                    .solve(&ts, 3, &budget(), &CancelToken::new())
                    .expect("valid instance");
                black_box(res.verdict.is_feasible());
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_roster,
    bench_best_single,
    bench_portfolio_race,
    bench_portfolio_hard_instance
);
criterion_main!(benches);
