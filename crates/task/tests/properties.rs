//! Property tests for the task-model substrate: the O(1) mod-H interval
//! arithmetic must agree with explicit enumeration, and the clone transform
//! must preserve the quantities Section VI-B relies on.

use proptest::prelude::*;
use rt_task::{
    checked_hyperperiod, clone_count, clone_transform, gcd, JobId, JobInstants, Task, TaskSet,
};

fn arb_constrained_task() -> impl Strategy<Value = Task> {
    // T ∈ [1, 12], D ∈ [1, T], C ∈ [1, D], O ∈ [0, 2T).
    (1u64..=12)
        .prop_flat_map(|t| (Just(t), 1u64..=t))
        .prop_flat_map(|(t, d)| (Just(t), Just(d), 1u64..=d, 0u64..(2 * t)))
        .prop_map(|(t, d, c, o)| Task::new(o, c, d, t).unwrap())
}

fn arb_arbitrary_task() -> impl Strategy<Value = Task> {
    // D may exceed T: D ∈ [1, 3T].
    (1u64..=8)
        .prop_flat_map(|t| (Just(t), 1u64..=3 * t))
        .prop_flat_map(|(t, d)| (Just(t), Just(d), 1u64..=d, 0u64..t))
        .prop_map(|(t, d, c, o)| Task::new(o, c, d, t).unwrap())
}

fn arb_constrained_set() -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec(arb_constrained_task(), 1..=5)
        .prop_filter("hyperperiod fits", |tasks| {
            checked_hyperperiod(&tasks.iter().map(|t| t.period).collect::<Vec<_>>())
                .is_some_and(|h| h <= 4000)
        })
        .prop_map(|tasks| TaskSet::new(tasks).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn job_at_agrees_with_enumerated_instants(ts in arb_constrained_set()) {
        let ji = JobInstants::new(&ts).unwrap();
        let h = ji.hyperperiod();
        for i in 0..ts.len() {
            let mut owner = vec![None; h as usize];
            for k in 0..ji.jobs_of(i) {
                for t in ji.instants_mod(JobId { task: i, k }) {
                    prop_assert!(owner[t as usize].is_none(),
                        "jobs of one constrained task never overlap mod H");
                    owner[t as usize] = Some(k);
                }
            }
            for t in 0..h {
                prop_assert_eq!(ji.job_at(i, t).map(|j| j.k), owner[t as usize]);
            }
        }
    }

    #[test]
    fn slots_at_or_after_counts_suffix(ts in arb_constrained_set()) {
        let ji = JobInstants::new(&ts).unwrap();
        let h = ji.hyperperiod();
        for i in 0..ts.len() {
            for k in 0..ji.jobs_of(i) {
                let job = JobId { task: i, k };
                let inst = ji.instants_mod(job);
                prop_assert_eq!(inst.len() as u64, ts.task(i).deadline);
                for t in 0..h {
                    let expect = inst.iter().filter(|&&x| x >= t).count() as u64;
                    prop_assert_eq!(ji.slots_at_or_after(job, t), expect);
                }
            }
        }
    }

    #[test]
    fn total_jobs_equals_demand_accounting(ts in arb_constrained_set()) {
        let ji = JobInstants::new(&ts).unwrap();
        let h = ji.hyperperiod();
        let total: u64 = (0..ts.len()).map(|i| ji.jobs_of(i)).sum();
        prop_assert_eq!(total, ji.total_jobs());
        let demand: u64 = ts.iter().map(|(_, t)| t.wcet * (h / t.period)).sum();
        prop_assert_eq!(ts.demand_per_hyperperiod().unwrap(), demand);
    }

    #[test]
    fn clone_transform_invariants(tasks in proptest::collection::vec(arb_arbitrary_task(), 1..=4)) {
        let ts = TaskSet::new(tasks).unwrap();
        let (clones, info) = clone_transform(&ts).unwrap();
        // Always constrained afterwards.
        prop_assert!(clones.is_constrained());
        // Clone counts follow ⌈D/T⌉ and sum to the output size.
        let mut expected = 0u64;
        for (i, t) in ts.iter() {
            prop_assert_eq!(info.clones_of(i), clone_count(t));
            expected += clone_count(t);
        }
        prop_assert_eq!(clones.len() as u64, expected);
        // Utilization is preserved (each task splits into ki pieces of
        // utilization C/(ki·T)).
        prop_assert!((clones.utilization() - ts.utilization()).abs() < 1e-9);
        // Every clone inherits C and D and stretches T to ki·T.
        for (c, clone) in clones.iter() {
            let (orig, i_prime) = (info.origin[c].0, info.origin[c].1);
            let t = ts.task(orig);
            prop_assert_eq!(clone.wcet, t.wcet);
            prop_assert_eq!(clone.deadline, t.deadline);
            prop_assert_eq!(clone.period, clone_count(t) * t.period);
            prop_assert_eq!(clone.offset, t.offset + i_prime * t.period);
        }
    }

    #[test]
    fn gcd_lcm_algebra(a in 1u64..10_000, b in 1u64..10_000) {
        let g = gcd(a, b);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
        let l = rt_task::lcm(a, b);
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert_eq!(g as u128 * l as u128, a as u128 * b as u128);
    }

    #[test]
    fn min_processors_is_a_sound_lower_bound(ts in arb_constrained_set()) {
        let mmin = ts.min_processors();
        prop_assert!(mmin >= 1);
        // U ≤ mmin and U > mmin - 1.
        prop_assert!(!ts.utilization_exceeds(mmin));
        if mmin > 1 {
            prop_assert!(ts.utilization_exceeds(mmin - 1));
        }
    }

    #[test]
    fn offset_normalization_is_sound(task in arb_constrained_task()) {
        // Offsets ≥ T behave identically mod H to their reduction.
        let reduced = Task::new(task.offset % task.period, task.wcet,
                                task.deadline, task.period).unwrap();
        let a = TaskSet::new(vec![task]).unwrap();
        let b = TaskSet::new(vec![reduced]).unwrap();
        let ja = JobInstants::new(&a).unwrap();
        let jb = JobInstants::new(&b).unwrap();
        for t in 0..ja.hyperperiod() {
            prop_assert_eq!(ja.job_at(0, t).is_some(), jb.job_at(0, t).is_some());
        }
    }
}
