//! Necessary feasibility conditions (pruning filters).
//!
//! The paper uses one filter: the utilization ratio `r = U/m > 1` proves
//! infeasibility (Table II separates "filtered" instances this way). This
//! module adds a second, strictly stronger *sound* filter based on forced
//! demand in time windows: if some window `[a, b)` contains jobs whose
//! availability intervals lie entirely inside it with total execution
//! exceeding `m·(b-a)`, no schedule can exist. Both tests are sound
//! (never reject a feasible system) but incomplete.

use crate::intervals::JobInstants;
use crate::taskset::TaskSet;
use crate::time::Time;

/// Result of a cheap infeasibility pre-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precheck {
    /// Proven infeasible by the utilization filter `U > m`.
    UtilizationExceeded,
    /// Proven infeasible by window demand: the half-open `window` contains
    /// `demand` units of forced execution exceeding `m · |window|`.
    WindowOverload {
        /// The overloaded window `[start, end)`.
        window: (Time, Time),
        /// Forced execution inside it.
        demand: Time,
    },
    /// No cheap proof of infeasibility; the instance must be solved.
    Unknown,
}

/// Run the utilization filter only (the paper's Table II filter).
#[must_use]
pub fn utilization_precheck(ts: &TaskSet, m: usize) -> Precheck {
    if ts.utilization_exceeds(m) {
        Precheck::UtilizationExceeded
    } else {
        Precheck::Unknown
    }
}

/// Run the utilization filter, then the window-demand filter.
///
/// Windows are drawn from the critical instants of one unrolled hyperperiod
/// `[0, 2H)`: window starts are job releases, window ends are absolute
/// deadlines. A job is *forced* into `[a, b)` if its whole availability
/// interval lies inside. Cost is O(#jobs² in 2H) — only use on instances
/// with modest hyperperiods (the experiment harness applies it behind a
/// size guard).
#[must_use]
pub fn demand_precheck(ts: &TaskSet, m: usize) -> Precheck {
    if ts.utilization_exceeds(m) {
        return Precheck::UtilizationExceeded;
    }
    let Ok(ji) = JobInstants::new(ts) else {
        return Precheck::Unknown;
    };
    let h = ji.hyperperiod();

    // Collect absolute intervals over [0, 2H) so windows that straddle the
    // hyperperiod boundary are also examined.
    let mut jobs: Vec<(Time, Time, Time)> = Vec::new(); // (release, end, wcet)
    for (i, task) in ts.iter() {
        let jobs_per_h = ji.jobs_of(i);
        for rep in 0..2 {
            for k in 0..jobs_per_h {
                let release = (task.offset % task.period) + k * task.period + rep * h;
                jobs.push((release, release + task.deadline, task.wcet));
            }
        }
    }
    let mut starts: Vec<Time> = jobs.iter().map(|j| j.0).collect();
    let mut ends: Vec<Time> = jobs.iter().map(|j| j.1).collect();
    starts.sort_unstable();
    starts.dedup();
    ends.sort_unstable();
    ends.dedup();

    for &a in &starts {
        for &b in &ends {
            if b <= a || b - a > h {
                continue;
            }
            let demand: Time = jobs
                .iter()
                .filter(|&&(r, e, _)| r >= a && e <= b)
                .map(|&(_, _, c)| c)
                .sum();
            if demand > m as Time * (b - a) {
                return Precheck::WindowOverload {
                    window: (a, b),
                    demand,
                };
            }
        }
    }
    Precheck::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    #[test]
    fn utilization_filter_matches_taskset() {
        let ts = TaskSet::running_example(); // U = 23/12
        assert_eq!(utilization_precheck(&ts, 1), Precheck::UtilizationExceeded);
        assert_eq!(utilization_precheck(&ts, 2), Precheck::Unknown);
    }

    #[test]
    fn window_overload_detected() {
        // Two tasks each needing 2 units in [0,2) on one processor:
        // U = 2/3 + 2/3 = 4/3 > 1 would be caught by utilization on m=1,
        // so use m=2 with three such tasks plus low overall utilization.
        // Three jobs (C=2, D=2) released together on m=2: demand 6 > 2·2.
        let ts = TaskSet::from_ocdt(&[(0, 2, 2, 12), (0, 2, 2, 12), (0, 2, 2, 12)]);
        assert!(!ts.utilization_exceeds(2)); // U = 1/2
        match demand_precheck(&ts, 2) {
            Precheck::WindowOverload { window, demand } => {
                assert_eq!(window, (0, 2));
                assert_eq!(demand, 6);
            }
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn feasible_example_passes() {
        let ts = TaskSet::running_example();
        assert_eq!(demand_precheck(&ts, 2), Precheck::Unknown);
    }

    #[test]
    fn straddling_window_checked() {
        // Task with offset near the end of H: its interval wraps; the filter
        // must still see the overload inside [H-1, H+1).
        let ts = TaskSet::from_ocdt(&[(3, 2, 2, 4), (3, 2, 2, 4), (3, 2, 2, 4)]);
        match demand_precheck(&ts, 2) {
            Precheck::WindowOverload { demand, .. } => assert_eq!(demand, 6),
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn single_feasible_task() {
        let ts = TaskSet::new(vec![Task::ocdt(0, 1, 1, 2)]).unwrap();
        assert_eq!(demand_precheck(&ts, 1), Precheck::Unknown);
    }
}
