#![warn(missing_docs)]
//! # rt-task — periodic real-time task model
//!
//! This crate implements the task model of Section II of
//! *Global Multiprocessor Real-Time Scheduling as a Constraint Satisfaction
//! Problem* (Cucu-Grosjean & Buffet, ICPP 2009).
//!
//! A periodic task `τi = (Oi, Ci, Di, Ti)` releases a job every `Ti` ticks
//! starting at offset `Oi`; each job needs `Ci` units of execution and must
//! complete within `Di` ticks of its release. Time is discrete (`u64` ticks).
//!
//! The central objects are:
//!
//! * [`Task`] — a single validated periodic task;
//! * [`TaskSet`] — a collection of tasks with hyperperiod / utilization
//!   queries and job enumeration over one hyperperiod;
//! * [`intervals::JobInstants`] — the mod-H instant machinery used by the CSP
//!   encodings (handles availability intervals that straddle the hyperperiod
//!   boundary);
//! * [`clones::clone_transform`] — the arbitrary-deadline clone transform of
//!   Section VI-B.

pub mod clones;
pub mod demand;
pub mod error;
pub mod intervals;
pub mod task;
pub mod taskset;
pub mod time;

pub use clones::{clone_count, clone_transform, CloneInfo};
pub use error::TaskError;
pub use intervals::{AvailabilityInterval, JobId, JobInstants};
pub use task::{Task, TaskBuilder, TaskId};
pub use taskset::TaskSet;
pub use time::{checked_hyperperiod, gcd, lcm, Time};
