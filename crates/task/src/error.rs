//! Error types for task-model validation.

use std::fmt;

use crate::time::Time;

/// Why a task or task set was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// `Ci` must satisfy `1 ≤ Ci`.
    ZeroWcet,
    /// `Ti` must satisfy `1 ≤ Ti`.
    ZeroPeriod,
    /// `Di` must satisfy `1 ≤ Di`.
    ZeroDeadline,
    /// The execution requirement exceeds the window: `Ci > Di`.
    WcetExceedsDeadline {
        /// The offending `Ci`.
        wcet: Time,
        /// The window `Di`.
        deadline: Time,
    },
    /// A constrained-deadline context required `Di ≤ Ti`.
    DeadlineExceedsPeriod {
        /// The offending `Di`.
        deadline: Time,
        /// The period `Ti`.
        period: Time,
    },
    /// The task set is empty.
    EmptyTaskSet,
    /// The hyperperiod `lcm(T1..Tn)` overflows `u64`.
    HyperperiodOverflow,
    /// A solver backend failed for a reason unrelated to the task model
    /// (internal invariant breach, injected fault). The instance itself
    /// may be perfectly valid; retrying can succeed.
    EngineFailure(String),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::ZeroWcet => write!(f, "worst-case execution time must be at least 1"),
            TaskError::ZeroPeriod => write!(f, "period must be at least 1"),
            TaskError::ZeroDeadline => write!(f, "deadline must be at least 1"),
            TaskError::WcetExceedsDeadline { wcet, deadline } => write!(
                f,
                "WCET {wcet} exceeds deadline {deadline}: job can never finish in its window"
            ),
            TaskError::DeadlineExceedsPeriod { deadline, period } => write!(
                f,
                "deadline {deadline} exceeds period {period} in a constrained-deadline context"
            ),
            TaskError::EmptyTaskSet => write!(f, "task set is empty"),
            TaskError::HyperperiodOverflow => {
                write!(f, "hyperperiod lcm(T1..Tn) overflows u64")
            }
            TaskError::EngineFailure(msg) => write!(f, "engine failure: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TaskError::WcetExceedsDeadline {
            wcet: 5,
            deadline: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        assert!(TaskError::EmptyTaskSet.to_string().contains("empty"));
    }
}
