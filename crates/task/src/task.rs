//! A single periodic task `τi = (Oi, Ci, Di, Ti)`.

use serde::{Deserialize, Serialize};

use crate::error::TaskError;
use crate::time::Time;

/// Index of a task within a [`crate::TaskSet`] (0-based; the paper numbers
/// tasks from 1, we translate at display time only).
pub type TaskId = usize;

/// A periodic task, Section II of the paper.
///
/// A task releases job `k` (k = 1, 2, …) at time `Oi + (k-1)·Ti`; the job must
/// receive exactly `Ci` units of execution within the availability interval
/// `[Oi + (k-1)·Ti, Oi + (k-1)·Ti + Di)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    /// Offset `Oi`: release time of the first job.
    pub offset: Time,
    /// Worst-case execution time `Ci`.
    pub wcet: Time,
    /// Relative deadline `Di`.
    pub deadline: Time,
    /// Period `Ti`.
    pub period: Time,
}

impl Task {
    /// Build a validated task. Requires `1 ≤ Ci ≤ Di` and `Ti ≥ 1`.
    ///
    /// Arbitrary deadlines (`Di > Ti`) are allowed here; constrained-deadline
    /// contexts check separately with [`Task::is_constrained`].
    pub fn new(offset: Time, wcet: Time, deadline: Time, period: Time) -> Result<Self, TaskError> {
        if wcet == 0 {
            return Err(TaskError::ZeroWcet);
        }
        if period == 0 {
            return Err(TaskError::ZeroPeriod);
        }
        if deadline == 0 {
            return Err(TaskError::ZeroDeadline);
        }
        if wcet > deadline {
            return Err(TaskError::WcetExceedsDeadline { wcet, deadline });
        }
        Ok(Task {
            offset,
            wcet,
            deadline,
            period,
        })
    }

    /// Shorthand used pervasively in tests: `(O, C, D, T)` order as in the
    /// paper. Panics on invalid parameters.
    #[must_use]
    pub fn ocdt(offset: Time, wcet: Time, deadline: Time, period: Time) -> Self {
        Self::new(offset, wcet, deadline, period).expect("invalid task parameters")
    }

    /// `Di ≤ Ti` — the constrained-deadline condition of Sections II–V.
    #[must_use]
    pub fn is_constrained(&self) -> bool {
        self.deadline <= self.period
    }

    /// `Di = Ti` — the implicit-deadline special case.
    #[must_use]
    pub fn is_implicit(&self) -> bool {
        self.deadline == self.period
    }

    /// Task utilization `Ci / Ti` as a rational numerator/denominator pair.
    #[must_use]
    pub fn utilization_ratio(&self) -> (Time, Time) {
        (self.wcet, self.period)
    }

    /// Task utilization `Ci / Ti` as an `f64` (for reporting only; exact
    /// comparisons use [`crate::TaskSet::utilization_exceeds`]).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }

    /// Release time of job `k` (1-based, matching the paper): `Oi + (k-1)·Ti`.
    #[must_use]
    pub fn release(&self, k: u64) -> Time {
        debug_assert!(k >= 1, "jobs are 1-based");
        self.offset + (k - 1) * self.period
    }

    /// Absolute deadline of job `k`: `release(k) + Di`.
    #[must_use]
    pub fn absolute_deadline(&self, k: u64) -> Time {
        self.release(k) + self.deadline
    }

    /// Slack of the task: `Di - Ci`, the D-C quantity of the paper's value
    /// heuristic (Section V-C2).
    #[must_use]
    pub fn slack(&self) -> Time {
        self.deadline - self.wcet
    }

    /// `Ti - Ci`, the T-C quantity of the paper's value heuristic.
    ///
    /// For arbitrary-deadline tasks `Ci` may exceed `Ti`; saturates at 0.
    #[must_use]
    pub fn period_slack(&self) -> Time {
        self.period.saturating_sub(self.wcet)
    }
}

/// Fluent builder for [`Task`], mainly for examples and doc clarity.
///
/// ```
/// use rt_task::TaskBuilder;
/// let t = TaskBuilder::new().wcet(2).deadline(4).period(5).build().unwrap();
/// assert_eq!(t.offset, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskBuilder {
    offset: Time,
    wcet: Time,
    deadline: Option<Time>,
    period: Option<Time>,
}

impl TaskBuilder {
    /// Start a builder with offset 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the offset `Oi` (defaults to 0).
    #[must_use]
    pub fn offset(mut self, offset: Time) -> Self {
        self.offset = offset;
        self
    }

    /// Set the WCET `Ci`.
    #[must_use]
    pub fn wcet(mut self, wcet: Time) -> Self {
        self.wcet = wcet;
        self
    }

    /// Set the relative deadline `Di` (defaults to the period if unset).
    #[must_use]
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the period `Ti`.
    #[must_use]
    pub fn period(mut self, period: Time) -> Self {
        self.period = Some(period);
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Task, TaskError> {
        let period = self.period.ok_or(TaskError::ZeroPeriod)?;
        let deadline = self.deadline.unwrap_or(period);
        Task::new(self.offset, self.wcet, deadline, period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert_eq!(Task::new(0, 0, 1, 1), Err(TaskError::ZeroWcet));
        assert_eq!(Task::new(0, 1, 1, 0), Err(TaskError::ZeroPeriod));
        assert_eq!(Task::new(0, 1, 0, 1), Err(TaskError::ZeroDeadline));
        assert_eq!(
            Task::new(0, 3, 2, 5),
            Err(TaskError::WcetExceedsDeadline {
                wcet: 3,
                deadline: 2
            })
        );
    }

    #[test]
    fn accepts_running_example_tasks() {
        // Example 1: τ1=(0,1,2,2), τ2=(1,3,4,4), τ3=(0,2,2,3).
        let t1 = Task::ocdt(0, 1, 2, 2);
        let t2 = Task::ocdt(1, 3, 4, 4);
        let t3 = Task::ocdt(0, 2, 2, 3);
        assert!(t1.is_constrained() && t2.is_constrained() && t3.is_constrained());
        assert!(t1.is_implicit());
        assert!(!t3.is_implicit());
    }

    #[test]
    fn arbitrary_deadline_allowed() {
        let t = Task::new(0, 2, 7, 3).unwrap();
        assert!(!t.is_constrained());
        assert_eq!(t.slack(), 5);
        assert_eq!(t.period_slack(), 1);
    }

    #[test]
    fn releases_and_deadlines() {
        let t2 = Task::ocdt(1, 3, 4, 4);
        assert_eq!(t2.release(1), 1);
        assert_eq!(t2.release(2), 5);
        assert_eq!(t2.release(3), 9);
        assert_eq!(t2.absolute_deadline(3), 13);
    }

    #[test]
    fn heuristic_quantities() {
        let t = Task::ocdt(0, 2, 5, 8);
        assert_eq!(t.slack(), 3); // D - C
        assert_eq!(t.period_slack(), 6); // T - C
        assert_eq!(t.utilization_ratio(), (2, 8));
    }

    #[test]
    fn builder_defaults_deadline_to_period() {
        let t = TaskBuilder::new().wcet(1).period(4).build().unwrap();
        assert_eq!(t.deadline, 4);
        assert!(TaskBuilder::new().wcet(1).build().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let t = Task::ocdt(1, 3, 4, 4);
        let s = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
