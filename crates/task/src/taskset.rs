//! Task sets: validated collections of periodic tasks.

use serde::{Deserialize, Serialize};

use crate::error::TaskError;
use crate::task::{Task, TaskId};
use crate::time::{checked_hyperperiod, Time};

/// A validated, non-empty collection of periodic tasks.
///
/// The task set owns no platform information; pair it with an
/// `rt-platform` platform to state a full MGRTS problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Build a task set. Fails on an empty list (individual tasks are
    /// already validated by [`Task::new`]).
    pub fn new(tasks: Vec<Task>) -> Result<Self, TaskError> {
        if tasks.is_empty() {
            return Err(TaskError::EmptyTaskSet);
        }
        Ok(TaskSet { tasks })
    }

    /// Convenience constructor from `(O, C, D, T)` tuples; panics on invalid
    /// parameters (intended for tests and examples).
    #[must_use]
    pub fn from_ocdt(rows: &[(Time, Time, Time, Time)]) -> Self {
        Self::new(
            rows.iter()
                .map(|&(o, c, d, t)| Task::ocdt(o, c, d, t))
                .collect(),
        )
        .expect("non-empty rows")
    }

    /// The running example of the paper (Example 1): `m = 2`, three tasks,
    /// hyperperiod 12.
    #[must_use]
    pub fn running_example() -> Self {
        Self::from_ocdt(&[(0, 1, 2, 2), (1, 3, 4, 4), (0, 2, 2, 3)])
    }

    /// Number of tasks `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always false: task sets are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Borrow the tasks.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Borrow one task.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// Iterate over `(TaskId, &Task)`.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate()
    }

    /// Are all tasks constrained-deadline (`Di ≤ Ti`)?
    #[must_use]
    pub fn is_constrained(&self) -> bool {
        self.tasks.iter().all(Task::is_constrained)
    }

    /// Hyperperiod `H = lcm(T1..Tn)`.
    pub fn hyperperiod(&self) -> Result<Time, TaskError> {
        checked_hyperperiod(&self.tasks.iter().map(|t| t.period).collect::<Vec<_>>())
            .ok_or(TaskError::HyperperiodOverflow)
    }

    /// Utilization factor `U = Σ Ci/Ti` as an `f64` (reporting only).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Utilization ratio `r = U / m` (Section II), `f64` for reporting.
    #[must_use]
    pub fn utilization_ratio(&self, m: usize) -> f64 {
        self.utilization() / m as f64
    }

    /// Exact test `U > m` (the paper's `r > 1` pruning filter, Table II),
    /// computed in integer arithmetic over a common denominator so no
    /// floating-point edge case can misclassify an instance.
    #[must_use]
    pub fn utilization_exceeds(&self, m: usize) -> bool {
        // U > m  ⇔  Σ Ci·(L/Ti) > m·L with L = lcm(Ti); overflow-checked
        // via u128 (Ci·L/Ti ≤ Ci·L ≤ 2^64·2^64).
        let l = match self.hyperperiod() {
            Ok(l) => u128::from(l),
            // If the hyperperiod overflows u64 fall back to f64 (only
            // reachable for adversarial inputs, not the paper's workloads).
            Err(_) => return self.utilization() > m as f64,
        };
        let sum: u128 = self
            .tasks
            .iter()
            .map(|t| u128::from(t.wcet) * (l / u128::from(t.period)))
            .sum();
        sum > m as u128 * l
    }

    /// Minimum processor count that survives the `r ≤ 1` necessary
    /// condition: `mmin = ⌈Σ Ci/Ti⌉` (Section VII-E).
    #[must_use]
    pub fn min_processors(&self) -> usize {
        let Ok(l) = self.hyperperiod() else {
            return self.utilization().ceil().max(1.0) as usize;
        };
        let l = u128::from(l);
        let sum: u128 = self
            .tasks
            .iter()
            .map(|t| u128::from(t.wcet) * (l / u128::from(t.period)))
            .sum();
        // ceil(sum / l), at least 1.
        (sum.div_ceil(l)).max(1) as usize
    }

    /// Largest period `Tmax` (Section II).
    #[must_use]
    pub fn max_period(&self) -> Time {
        self.tasks.iter().map(|t| t.period).max().unwrap_or(0)
    }

    /// Total execution demand in one hyperperiod: `Σ Ci · H/Ti`.
    pub fn demand_per_hyperperiod(&self) -> Result<Time, TaskError> {
        let h = self.hyperperiod()?;
        let mut total: Time = 0;
        for t in &self.tasks {
            total = total
                .checked_add(t.wcet * (h / t.period))
                .ok_or(TaskError::HyperperiodOverflow)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_properties() {
        let ts = TaskSet::running_example();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.hyperperiod().unwrap(), 12);
        // U = 1/2 + 3/4 + 2/3 = 23/12 ≈ 1.9167
        assert!((ts.utilization() - 23.0 / 12.0).abs() < 1e-12);
        assert!(!ts.utilization_exceeds(2)); // 23/12 < 2
        assert!(ts.utilization_exceeds(1)); // 23/12 > 1
        assert_eq!(ts.min_processors(), 2);
        assert_eq!(ts.max_period(), 4);
        // demand per hyperperiod: 1·6 + 3·3 + 2·4 = 23
        assert_eq!(ts.demand_per_hyperperiod().unwrap(), 23);
    }

    #[test]
    fn exact_utilization_boundary() {
        // U = exactly 2 on m = 2: not "exceeds" (necessary condition holds).
        let ts = TaskSet::from_ocdt(&[(0, 1, 1, 1), (0, 1, 1, 1)]);
        assert!(!ts.utilization_exceeds(2));
        assert!(ts.utilization_exceeds(1));
        assert_eq!(ts.min_processors(), 2);
    }

    #[test]
    fn min_processors_rounds_up() {
        // U = 3/2 → mmin = 2.
        let ts = TaskSet::from_ocdt(&[(0, 3, 4, 4), (0, 3, 4, 4)]);
        assert_eq!(ts.min_processors(), 2);
        // U = 1/2 → mmin = 1 (never 0).
        let ts = TaskSet::from_ocdt(&[(0, 1, 2, 2)]);
        assert_eq!(ts.min_processors(), 1);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(TaskSet::new(vec![]), Err(TaskError::EmptyTaskSet));
    }

    #[test]
    fn constrained_detection() {
        assert!(TaskSet::running_example().is_constrained());
        let ts = TaskSet::new(vec![Task::new(0, 1, 6, 4).unwrap()]).unwrap();
        assert!(!ts.is_constrained());
    }

    #[test]
    fn serde_round_trip() {
        let ts = TaskSet::running_example();
        let s = serde_json::to_string(&ts).unwrap();
        let back: TaskSet = serde_json::from_str(&s).unwrap();
        assert_eq!(ts, back);
    }
}
