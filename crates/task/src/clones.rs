//! Arbitrary-deadline task systems via clones (Section VI-B of the paper).
//!
//! When `Di > Ti`, up to `ki = ⌈Di/Ti⌉` jobs of τi can be simultaneously
//! active, which the CSP encodings (one value per task) cannot express. The
//! paper's fix is to split τi into `ki` *clones* `τi,i'` with
//!
//! ```text
//! Oi,i' = Oi + (i'-1)·Ti     Ci,i' = Ci     Di,i' = Di     Ti,i' = ki·Ti
//! ```
//!
//! Each clone is constrained-deadline with respect to its *new* period
//! (`Di ≤ ki·Ti`), so the ordinary encodings apply unchanged — at the cost of
//! more tasks and a potentially longer hyperperiod.

use serde::{Deserialize, Serialize};

use crate::task::{Task, TaskId};
use crate::taskset::TaskSet;
use crate::TaskError;

/// Mapping from clone tasks back to the original task set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloneInfo {
    /// `origin[c]` = (original task id, clone index `i' ∈ [0, ki)`) for clone
    /// task `c` of the transformed set.
    pub origin: Vec<(TaskId, u64)>,
    /// `ki` per original task.
    pub clone_counts: Vec<u64>,
}

impl CloneInfo {
    /// Original task of clone `c`.
    #[must_use]
    pub fn original_of(&self, clone: TaskId) -> TaskId {
        self.origin[clone].0
    }

    /// Number of clones created for original task `i`.
    #[must_use]
    pub fn clones_of(&self, original: TaskId) -> u64 {
        self.clone_counts[original]
    }
}

/// Number of clones required for a task: `ki = ⌈Di/Ti⌉` (at least 1).
#[must_use]
pub fn clone_count(task: &Task) -> u64 {
    task.deadline.div_ceil(task.period)
}

/// Apply the clone transform to a (possibly arbitrary-deadline) task set.
///
/// Constrained-deadline tasks have `ki = 1` and are passed through verbatim,
/// so the transform is the identity on already-constrained sets. The
/// resulting set is always constrained-deadline.
pub fn clone_transform(ts: &TaskSet) -> Result<(TaskSet, CloneInfo), TaskError> {
    let mut tasks = Vec::new();
    let mut origin = Vec::new();
    let mut clone_counts = Vec::with_capacity(ts.len());
    for (id, task) in ts.iter() {
        let k = clone_count(task);
        clone_counts.push(k);
        for i_prime in 0..k {
            let clone = Task::new(
                task.offset + i_prime * task.period,
                task.wcet,
                task.deadline,
                k * task.period,
            )?;
            debug_assert!(clone.is_constrained(), "clone must be constrained");
            tasks.push(clone);
            origin.push((id, i_prime));
        }
    }
    Ok((
        TaskSet::new(tasks)?,
        CloneInfo {
            origin,
            clone_counts,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_constrained_sets() {
        let ts = TaskSet::running_example();
        let (out, info) = clone_transform(&ts).unwrap();
        assert_eq!(out, ts);
        assert_eq!(info.clone_counts, vec![1, 1, 1]);
        assert_eq!(info.origin, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn clone_count_formula() {
        assert_eq!(clone_count(&Task::new(0, 1, 4, 4).unwrap()), 1); // D = T
        assert_eq!(clone_count(&Task::new(0, 1, 5, 4).unwrap()), 2); // D = T+1
        assert_eq!(clone_count(&Task::new(0, 1, 8, 4).unwrap()), 2); // D = 2T
        assert_eq!(clone_count(&Task::new(0, 1, 9, 4).unwrap()), 3); // D = 2T+1
    }

    #[test]
    fn clone_parameters_match_paper() {
        // τ = (O=2, C=1, D=7, T=3) → k = ⌈7/3⌉ = 3 clones:
        //   (2, 1, 7, 9), (5, 1, 7, 9), (8, 1, 7, 9)
        let ts = TaskSet::new(vec![Task::new(2, 1, 7, 3).unwrap()]).unwrap();
        let (out, info) = clone_transform(&ts).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(info.clones_of(0), 3);
        for (i_prime, task) in out.tasks().iter().enumerate() {
            assert_eq!(task.offset, 2 + 3 * i_prime as u64);
            assert_eq!(task.wcet, 1);
            assert_eq!(task.deadline, 7);
            assert_eq!(task.period, 9);
            assert!(task.is_constrained());
            assert_eq!(info.original_of(i_prime), 0);
        }
    }

    #[test]
    fn transformed_set_is_always_constrained() {
        let ts = TaskSet::new(vec![
            Task::new(0, 2, 10, 3).unwrap(),
            Task::new(1, 1, 2, 5).unwrap(),
        ])
        .unwrap();
        let (out, _) = clone_transform(&ts).unwrap();
        assert!(out.is_constrained());
        // k1 = ⌈10/3⌉ = 4 clones + 1 original = 5 tasks.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn utilization_is_preserved() {
        // Clones have utilization Ci/(ki·Ti); ki of them sum to Ci/Ti.
        let ts = TaskSet::new(vec![Task::new(0, 2, 10, 3).unwrap()]).unwrap();
        let (out, _) = clone_transform(&ts).unwrap();
        assert!((out.utilization() - ts.utilization()).abs() < 1e-12);
    }
}
