//! Availability intervals and the mod-H instant machinery.
//!
//! For a constrained-deadline task `τi`, job `k` (0-based here) is available
//! during `[Oi + k·Ti, Oi + k·Ti + Di)`. Because the schedule we search for is
//! periodic with period `H = lcm(Ti)` (Theorem 1 of the paper), both CSP
//! encodings work with time instants *modulo H*. An interval may straddle the
//! hyperperiod boundary (e.g. τ2 = (1,3,4,4) of the running example, whose
//! third interval is `[9, 13)` with `H = 12`, wrapping to instant 0); in that
//! case the job occupies mod-H instants `{9, 10, 11, 0}`.
//!
//! For `Di ≤ Ti` the mod-H instant sets of a task's jobs are pairwise
//! disjoint, so every instant `t ∈ [0, H)` belongs to at most one job of each
//! task and membership can be decided with O(1) arithmetic — no per-instant
//! tables, which matters because the paper's scaling experiment (Table IV)
//! reaches `H = 360 360` and `n = 256`.

use serde::{Deserialize, Serialize};

use crate::task::TaskId;
use crate::taskset::TaskSet;
use crate::time::Time;
use crate::TaskError;

/// Identifies one job in the hyperperiod: task index plus 0-based job index
/// `k ∈ [0, H/Ti)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId {
    /// Task index in the task set.
    pub task: TaskId,
    /// 0-based job index within one hyperperiod.
    pub k: u64,
}

/// One availability interval `Ii,k = [release, release + Di)` in *absolute*
/// (non-wrapped) time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityInterval {
    /// The job this interval belongs to.
    pub job: JobId,
    /// Release instant `Oi + k·Ti`.
    pub release: Time,
    /// Exclusive end `release + Di` (the paper writes the inclusive form
    /// `[…, release + Di - 1]`).
    pub end: Time,
}

impl AvailabilityInterval {
    /// Number of instants in the interval (= `Di`).
    #[must_use]
    pub fn len(&self) -> Time {
        self.end - self.release
    }

    /// Whether the interval is empty (never true for validated tasks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.release
    }

    /// Does absolute instant `t` fall inside the interval?
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.release <= t && t < self.end
    }
}

/// Per-task geometry used for O(1) mod-H queries.
#[derive(Debug, Clone, Copy)]
struct TaskGeometry {
    /// Offset normalized into `[0, Ti)`; the mod-H release set is invariant
    /// under this normalization.
    offset: Time,
    wcet: Time,
    deadline: Time,
    period: Time,
    /// Jobs per hyperperiod: `H / Ti`.
    jobs: u64,
}

/// Precomputed mod-H availability structure for a constrained-deadline task
/// set. Built once per problem; all queries are O(1).
#[derive(Debug, Clone)]
pub struct JobInstants {
    hyperperiod: Time,
    geo: Vec<TaskGeometry>,
}

impl JobInstants {
    /// Build the structure. Fails if the set is empty, any task violates
    /// `Di ≤ Ti`, or the hyperperiod overflows.
    pub fn new(ts: &TaskSet) -> Result<Self, TaskError> {
        let h = ts.hyperperiod()?;
        let mut geo = Vec::with_capacity(ts.len());
        for task in ts.tasks() {
            if !task.is_constrained() {
                return Err(TaskError::DeadlineExceedsPeriod {
                    deadline: task.deadline,
                    period: task.period,
                });
            }
            geo.push(TaskGeometry {
                offset: task.offset % task.period,
                wcet: task.wcet,
                deadline: task.deadline,
                period: task.period,
                jobs: h / task.period,
            });
        }
        Ok(JobInstants {
            hyperperiod: h,
            geo,
        })
    }

    /// The hyperperiod `H`.
    #[must_use]
    pub fn hyperperiod(&self) -> Time {
        self.hyperperiod
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.geo.len()
    }

    /// Number of jobs of task `i` in one hyperperiod (`H / Ti`).
    #[must_use]
    pub fn jobs_of(&self, task: TaskId) -> u64 {
        self.geo[task].jobs
    }

    /// Total number of jobs across all tasks in one hyperperiod.
    #[must_use]
    pub fn total_jobs(&self) -> u64 {
        self.geo.iter().map(|g| g.jobs).sum()
    }

    /// WCET of task `i` (the per-interval execution requirement).
    #[must_use]
    pub fn wcet(&self, task: TaskId) -> Time {
        self.geo[task].wcet
    }

    /// Which job of task `i` (if any) is available at mod-H instant `t`.
    ///
    /// O(1): with normalized offset `O < T`, job `k` covers the *unwrapped*
    /// phase window `[k·T, k·T + D)` where the phase is `(t - O) mod H`.
    #[must_use]
    pub fn job_at(&self, task: TaskId, t: Time) -> Option<JobId> {
        let g = &self.geo[task];
        debug_assert!(t < self.hyperperiod);
        let phase = (t + self.hyperperiod - g.offset) % self.hyperperiod;
        let k = phase / g.period;
        if phase - k * g.period < g.deadline {
            Some(JobId { task, k })
        } else {
            None
        }
    }

    /// Mod-H release instant of job `(task, k)`.
    #[must_use]
    pub fn release_mod(&self, job: JobId) -> Time {
        let g = &self.geo[job.task];
        debug_assert!(job.k < g.jobs);
        // With O < T and k < H/T: O + k·T < H, no reduction needed.
        g.offset + job.k * g.period
    }

    /// Number of instants of `job` whose mod-H value is ≥ `t` — i.e. how many
    /// decision slots remain for this job when a chronological search sits at
    /// instant `t`. The wrapped head of a boundary-straddling job lies at
    /// *small* mod values and is decided *before* its tail, which this
    /// accounting captures exactly.
    #[must_use]
    pub fn slots_at_or_after(&self, job: JobId, t: Time) -> Time {
        let g = &self.geo[job.task];
        let release = self.release_mod(job);
        let end = release + g.deadline; // absolute, may exceed H
        if end <= self.hyperperiod {
            // No wrap: instants are [release, end).
            if t >= end {
                0
            } else if t <= release {
                g.deadline
            } else {
                end - t
            }
        } else {
            // Wraps: head [0, end - H), tail [release, H).
            let head_end = end - self.hyperperiod;
            let tail_len = self.hyperperiod - release;
            if t < head_end {
                (head_end - t) + tail_len
            } else if t < release {
                tail_len
            } else {
                self.hyperperiod - t
            }
        }
    }

    /// All mod-H instants of `job`, in increasing mod order (head of a
    /// wrapped job first). Mainly for encoders and verification; the search
    /// hot path uses [`Self::job_at`] / [`Self::slots_at_or_after`].
    #[must_use]
    pub fn instants_mod(&self, job: JobId) -> Vec<Time> {
        let g = &self.geo[job.task];
        let release = self.release_mod(job);
        let end = release + g.deadline;
        let mut v = Vec::with_capacity(g.deadline as usize);
        if end <= self.hyperperiod {
            v.extend(release..end);
        } else {
            v.extend(0..end - self.hyperperiod);
            v.extend(release..self.hyperperiod);
        }
        v
    }

    /// Absolute-time availability intervals of task `i` in one hyperperiod
    /// (for display and verification).
    #[must_use]
    pub fn intervals_of(&self, task: TaskId) -> Vec<AvailabilityInterval> {
        let g = &self.geo[task];
        (0..g.jobs)
            .map(|k| {
                let release = g.offset + k * g.period;
                AvailabilityInterval {
                    job: JobId { task, k },
                    release,
                    end: release + g.deadline,
                }
            })
            .collect()
    }

    /// All intervals of all tasks, ordered by (task, k).
    #[must_use]
    pub fn all_intervals(&self) -> Vec<AvailabilityInterval> {
        (0..self.geo.len())
            .flat_map(|i| self.intervals_of(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn running_example() -> TaskSet {
        TaskSet::new(vec![
            Task::ocdt(0, 1, 2, 2),
            Task::ocdt(1, 3, 4, 4),
            Task::ocdt(0, 2, 2, 3),
        ])
        .unwrap()
    }

    #[test]
    fn hyperperiod_and_job_counts() {
        let ji = JobInstants::new(&running_example()).unwrap();
        assert_eq!(ji.hyperperiod(), 12);
        assert_eq!(ji.jobs_of(0), 6);
        assert_eq!(ji.jobs_of(1), 3);
        assert_eq!(ji.jobs_of(2), 4);
        assert_eq!(ji.total_jobs(), 13);
    }

    #[test]
    fn job_at_matches_figure_1() {
        let ji = JobInstants::new(&running_example()).unwrap();
        // τ1 = (0,1,2,2): available at every instant (D = T = 2).
        for t in 0..12 {
            assert!(ji.job_at(0, t).is_some(), "τ1 should cover t={t}");
        }
        // τ2 = (1,3,4,4): intervals [1,5), [5,9), [9,13)→wraps to 0.
        assert!(ji.job_at(1, 0).is_some(), "wrapped head of third interval");
        assert_eq!(ji.job_at(1, 0).unwrap().k, 2);
        assert!(ji.job_at(1, 1).is_some());
        assert_eq!(ji.job_at(1, 1).unwrap().k, 0);
        assert!(ji.job_at(1, 4).is_some());
        assert!(ji.job_at(1, 9).is_some());
        assert_eq!(ji.job_at(1, 9).unwrap().k, 2);
        // τ3 = (0,2,2,3): available at 0,1, 3,4, 6,7, 9,10; not at 2,5,8,11.
        for t in [0u64, 1, 3, 4, 6, 7, 9, 10] {
            assert!(ji.job_at(2, t).is_some(), "τ3 should cover t={t}");
        }
        for t in [2u64, 5, 8, 11] {
            assert!(ji.job_at(2, t).is_none(), "τ3 should not cover t={t}");
        }
    }

    #[test]
    fn wrapped_instants_mod() {
        let ji = JobInstants::new(&running_example()).unwrap();
        // Third job of τ2: interval [9,13) → mod-H instants {0, 9, 10, 11}.
        let job = JobId { task: 1, k: 2 };
        assert_eq!(ji.instants_mod(job), vec![0, 9, 10, 11]);
        assert_eq!(ji.release_mod(job), 9);
    }

    #[test]
    fn slots_at_or_after_no_wrap() {
        let ji = JobInstants::new(&running_example()).unwrap();
        let job = JobId { task: 1, k: 0 }; // interval [1,5)
        assert_eq!(ji.slots_at_or_after(job, 0), 4);
        assert_eq!(ji.slots_at_or_after(job, 1), 4);
        assert_eq!(ji.slots_at_or_after(job, 3), 2);
        assert_eq!(ji.slots_at_or_after(job, 4), 1);
        assert_eq!(ji.slots_at_or_after(job, 5), 0);
        assert_eq!(ji.slots_at_or_after(job, 11), 0);
    }

    #[test]
    fn slots_at_or_after_wrap() {
        let ji = JobInstants::new(&running_example()).unwrap();
        let job = JobId { task: 1, k: 2 }; // mod instants {0, 9, 10, 11}
        assert_eq!(ji.slots_at_or_after(job, 0), 4);
        assert_eq!(ji.slots_at_or_after(job, 1), 3);
        assert_eq!(ji.slots_at_or_after(job, 8), 3);
        assert_eq!(ji.slots_at_or_after(job, 9), 3);
        assert_eq!(ji.slots_at_or_after(job, 11), 1);
    }

    #[test]
    fn slots_agree_with_instants_everywhere() {
        let ji = JobInstants::new(&running_example()).unwrap();
        for task in 0..3 {
            for k in 0..ji.jobs_of(task) {
                let job = JobId { task, k };
                let inst = ji.instants_mod(job);
                for t in 0..12 {
                    let expect = inst.iter().filter(|&&x| x >= t).count() as Time;
                    assert_eq!(
                        ji.slots_at_or_after(job, t),
                        expect,
                        "task {task} job {k} t {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn job_at_agrees_with_instants() {
        let ji = JobInstants::new(&running_example()).unwrap();
        for task in 0..3 {
            let mut owner = [None; 12];
            for k in 0..ji.jobs_of(task) {
                for t in ji.instants_mod(JobId { task, k }) {
                    assert!(owner[t as usize].is_none(), "overlap at {t}");
                    owner[t as usize] = Some(k);
                }
            }
            for t in 0..12u64 {
                assert_eq!(ji.job_at(task, t).map(|j| j.k), owner[t as usize]);
            }
        }
    }

    #[test]
    fn rejects_arbitrary_deadline() {
        let ts = TaskSet::new(vec![Task::new(0, 1, 5, 3).unwrap()]).unwrap();
        assert!(matches!(
            JobInstants::new(&ts),
            Err(TaskError::DeadlineExceedsPeriod { .. })
        ));
    }

    #[test]
    fn offset_normalization_preserves_mod_structure() {
        // O = 7, T = 4 behaves like O = 3 mod H.
        let a = TaskSet::new(vec![Task::ocdt(7, 2, 3, 4)]).unwrap();
        let b = TaskSet::new(vec![Task::ocdt(3, 2, 3, 4)]).unwrap();
        let ja = JobInstants::new(&a).unwrap();
        let jb = JobInstants::new(&b).unwrap();
        for t in 0..4 {
            assert_eq!(ja.job_at(0, t).is_some(), jb.job_at(0, t).is_some());
        }
    }

    #[test]
    fn interval_contains() {
        let iv = AvailabilityInterval {
            job: JobId { task: 0, k: 0 },
            release: 3,
            end: 7,
        };
        assert_eq!(iv.len(), 4);
        assert!(!iv.is_empty());
        assert!(!iv.contains(2));
        assert!(iv.contains(3));
        assert!(iv.contains(6));
        assert!(!iv.contains(7));
    }
}
