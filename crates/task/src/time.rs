//! Discrete time arithmetic: ticks, gcd/lcm, hyperperiods.
//!
//! All task parameters are integers (the paper: "The time being discrete, all
//! these parameters take integer values"). We use `u64` ticks throughout; the
//! hyperperiod of a task set is the least common multiple of the periods and
//! can overflow for adversarial inputs, so [`checked_hyperperiod`] reports
//! overflow instead of panicking.

/// A discrete time instant or duration, in ticks.
pub type Time = u64;

/// Greatest common divisor (Euclid). `gcd(0, x) == x`.
#[must_use]
pub fn gcd(mut a: Time, mut b: Time) -> Time {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple. Panics on overflow; use [`checked_lcm`] when the
/// inputs are untrusted.
#[must_use]
pub fn lcm(a: Time, b: Time) -> Time {
    checked_lcm(a, b).expect("lcm overflow")
}

/// Least common multiple, `None` on `u64` overflow. `lcm(0, x) == 0`.
#[must_use]
pub fn checked_lcm(a: Time, b: Time) -> Option<Time> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Hyperperiod of a list of periods: `lcm(T1, …, Tn)`.
///
/// Returns `None` if the list is empty, any period is zero, or the lcm
/// overflows `u64`.
#[must_use]
pub fn checked_hyperperiod(periods: &[Time]) -> Option<Time> {
    if periods.is_empty() || periods.contains(&0) {
        return None;
    }
    periods.iter().try_fold(1u64, |acc, &p| checked_lcm(acc, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(8, 12), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(2, 3), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 1), 1);
        assert_eq!(checked_lcm(0, 4), Some(0));
    }

    #[test]
    fn lcm_overflow_detected() {
        let big = u64::MAX - 1;
        assert_eq!(checked_lcm(big, big - 1), None);
    }

    #[test]
    fn hyperperiod_running_example() {
        // Example 1 of the paper: T = lcm(2, 4, 3) = 12.
        assert_eq!(checked_hyperperiod(&[2, 4, 3]), Some(12));
    }

    #[test]
    fn hyperperiod_paper_tmax15() {
        // Section VII-E: lcm(1..=15) = 360360.
        let periods: Vec<Time> = (1..=15).collect();
        assert_eq!(checked_hyperperiod(&periods), Some(360_360));
    }

    #[test]
    fn hyperperiod_degenerate() {
        assert_eq!(checked_hyperperiod(&[]), None);
        assert_eq!(checked_hyperperiod(&[0, 3]), None);
        assert_eq!(checked_hyperperiod(&[5]), Some(5));
    }

    #[test]
    fn hyperperiod_overflow() {
        // Large coprime periods overflow u64.
        let primes: Vec<Time> = vec![
            4_294_967_311, // > 2^32, prime
            4_294_967_357,
            4_294_967_371,
        ];
        assert_eq!(checked_hyperperiod(&primes), None);
    }
}
