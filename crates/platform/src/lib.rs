#![warn(missing_docs)]
//! # rt-platform — multiprocessor platform models
//!
//! Section II of the paper distinguishes three platform classes, from least
//! to most general:
//!
//! * **identical** — all processors have the same computing power;
//! * **uniform** — processor `Pj` has capacity `sj`; a job run for `t` ticks
//!   completes `sj·t` units;
//! * **heterogeneous** (unrelated) — an execution rate `si,j` per
//!   task-processor pair; `si,j = 0` models a dedicated processor that
//!   cannot serve the task.
//!
//! [`Platform`] stores the general rate matrix and exposes the structure the
//! CSP encodings need: per-processor quality `Q(Pj) = Σ_i si,j·Ci/Ti`
//! (Section VI-A variable ordering) and groups of mutually identical
//! processors (eq. 13 symmetry breaking).
//!
//! Rates are integers: running task `τi` on `Pj` for `t` ticks completes
//! `si,j·t` execution units. Identical platforms use rate 1 everywhere, so
//! the constrained encodings of Sections IV–V fall out as the special case
//! `si,j ≡ 1`.

pub mod platform;
pub mod quality;

pub use platform::{Platform, PlatformError, ProcId, Rate};
pub use quality::{identical_groups, quality_order, QualityKey};
