//! The platform type: a task×processor execution-rate matrix.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a processor (0-based; the paper numbers `P1..Pm`).
pub type ProcId = usize;

/// Integer execution rate `si,j`: units of execution completed per tick when
/// task `i` runs on processor `j`. Zero means the processor cannot serve the
/// task (dedicated-processor modelling, Section II).
pub type Rate = u64;

/// Why a platform was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// No processors.
    NoProcessors,
    /// No tasks (rate matrix has zero rows).
    NoTasks,
    /// Row lengths of the rate matrix differ.
    RaggedMatrix {
        /// The offending row (task index).
        row: usize,
        /// Expected column count `m`.
        expected: usize,
        /// Actual column count.
        got: usize,
    },
    /// Some task cannot run anywhere (`si,j = 0` for all `j`).
    UnservableTask {
        /// The unservable task's index.
        task: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoProcessors => write!(f, "platform has no processors"),
            PlatformError::NoTasks => write!(f, "rate matrix has no task rows"),
            PlatformError::RaggedMatrix { row, expected, got } => write!(
                f,
                "rate matrix row {row} has {got} entries, expected {expected}"
            ),
            PlatformError::UnservableTask { task } => {
                write!(f, "task {task} has rate 0 on every processor")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// A multiprocessor platform described by its execution-rate matrix
/// `rates[i][j] = si,j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    /// Rate matrix, one row per task, one column per processor.
    rates: Vec<Vec<Rate>>,
    /// Number of processors `m`.
    m: usize,
}

impl Platform {
    /// An identical platform of `m` processors for `n` tasks: `si,j = 1`.
    pub fn identical(n: usize, m: usize) -> Result<Self, PlatformError> {
        Self::heterogeneous(vec![vec![1; m]; n])
    }

    /// A uniform platform: processor `j` has capacity `speeds[j]`, the same
    /// for every task (`si,j = sj`).
    pub fn uniform(n: usize, speeds: &[Rate]) -> Result<Self, PlatformError> {
        Self::heterogeneous(vec![speeds.to_vec(); n])
    }

    /// A fully heterogeneous platform from an explicit `n × m` rate matrix.
    pub fn heterogeneous(rates: Vec<Vec<Rate>>) -> Result<Self, PlatformError> {
        if rates.is_empty() {
            return Err(PlatformError::NoTasks);
        }
        let m = rates[0].len();
        if m == 0 {
            return Err(PlatformError::NoProcessors);
        }
        for (row, r) in rates.iter().enumerate() {
            if r.len() != m {
                return Err(PlatformError::RaggedMatrix {
                    row,
                    expected: m,
                    got: r.len(),
                });
            }
            if r.iter().all(|&s| s == 0) {
                return Err(PlatformError::UnservableTask { task: row });
            }
        }
        Ok(Platform { rates, m })
    }

    /// Number of processors `m`.
    #[must_use]
    pub fn num_processors(&self) -> usize {
        self.m
    }

    /// Number of tasks `n` the matrix covers.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.rates.len()
    }

    /// Execution rate `si,j`.
    #[must_use]
    pub fn rate(&self, task: usize, proc: ProcId) -> Rate {
        self.rates[task][proc]
    }

    /// Can processor `j` serve task `i` at all?
    #[must_use]
    pub fn can_run(&self, task: usize, proc: ProcId) -> bool {
        self.rates[task][proc] > 0
    }

    /// Is the platform identical (`si,j = 1` everywhere)? This is the domain
    /// of the base encodings (Sections IV–V).
    #[must_use]
    pub fn is_identical(&self) -> bool {
        self.rates.iter().all(|row| row.iter().all(|&s| s == 1))
    }

    /// Is the platform uniform (all rows equal)?
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.rates.windows(2).all(|w| w[0] == w[1])
    }

    /// Column `j` of the rate matrix — the rate signature of processor `j`.
    /// Two processors with equal signatures are interchangeable
    /// (eq. 13's `Pj ≡ Pj'`).
    #[must_use]
    pub fn signature(&self, proc: ProcId) -> Vec<Rate> {
        self.rates.iter().map(|row| row[proc]).collect()
    }

    /// Processors able to serve task `i`.
    #[must_use]
    pub fn eligible_processors(&self, task: usize) -> Vec<ProcId> {
        (0..self.m).filter(|&j| self.can_run(task, j)).collect()
    }

    /// Number of processors able to serve task `i` — used by the
    /// heterogeneous value-ordering rule ("higher priority on tasks that can
    /// run on few processors", Section VI-A).
    #[must_use]
    pub fn eligibility_count(&self, task: usize) -> usize {
        (0..self.m).filter(|&j| self.can_run(task, j)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_platform() {
        let p = Platform::identical(3, 2).unwrap();
        assert_eq!(p.num_processors(), 2);
        assert_eq!(p.num_tasks(), 3);
        assert!(p.is_identical());
        assert!(p.is_uniform());
        assert_eq!(p.rate(1, 1), 1);
        assert!(p.can_run(2, 0));
    }

    #[test]
    fn uniform_platform() {
        let p = Platform::uniform(2, &[2, 1]).unwrap();
        assert!(!p.is_identical());
        assert!(p.is_uniform());
        assert_eq!(p.rate(0, 0), 2);
        assert_eq!(p.rate(1, 0), 2);
    }

    #[test]
    fn heterogeneous_platform_with_dedicated_processor() {
        // Task 0 can only run on P0; task 1 anywhere.
        let p = Platform::heterogeneous(vec![vec![1, 0], vec![1, 2]]).unwrap();
        assert!(!p.is_uniform());
        assert!(!p.can_run(0, 1));
        assert_eq!(p.eligible_processors(0), vec![0]);
        assert_eq!(p.eligibility_count(0), 1);
        assert_eq!(p.eligibility_count(1), 2);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(Platform::heterogeneous(vec![]), Err(PlatformError::NoTasks));
        assert_eq!(
            Platform::heterogeneous(vec![vec![]]),
            Err(PlatformError::NoProcessors)
        );
        assert_eq!(
            Platform::heterogeneous(vec![vec![1, 1], vec![1]]),
            Err(PlatformError::RaggedMatrix {
                row: 1,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            Platform::heterogeneous(vec![vec![1, 1], vec![0, 0]]),
            Err(PlatformError::UnservableTask { task: 1 })
        );
    }

    #[test]
    fn signatures_detect_identical_processors() {
        let p = Platform::heterogeneous(vec![vec![1, 2, 1], vec![3, 1, 3]]).unwrap();
        assert_eq!(p.signature(0), p.signature(2));
        assert_ne!(p.signature(0), p.signature(1));
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::heterogeneous(vec![vec![1, 0], vec![1, 2]]).unwrap();
        let s = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
