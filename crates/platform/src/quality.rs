//! Processor quality and identical-processor grouping (Section VI-A).
//!
//! For heterogeneous platforms the paper suggests ordering the *search
//! variables* so that less capable processors come first, measuring
//! processor quality as `Q(Pj) = Σ_i si,j · Ci/Ti`, and restricting the
//! permutation-symmetry constraint (eq. 10) to pairs of *identical*
//! processors (eq. 13) — which is sound exactly because quality ordering
//! groups identical processors together (equal columns ⇒ equal quality).

use crate::platform::{Platform, ProcId};

/// Quality of a processor expressed as an exact rational with a common
/// denominator, so ordering is total and reproducible: the pair
/// `(numerator, denominator)` represents `Σ_i si,j·Ci·(L/Ti) / L` where
/// `L = lcm(Ti)` is folded into the numerator by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QualityKey {
    /// `Σ_i si,j · Ci · (L / Ti)` for a common multiple `L` of the periods.
    pub weighted_demand: u128,
}

/// Compute `Q(Pj)` for every processor as exact integers over a common
/// period multiple `common_l` (`lcm` of the task periods; pass the
/// hyperperiod). `tasks` supplies `(Ci, Ti)` pairs.
#[must_use]
pub fn qualities(platform: &Platform, tasks: &[(u64, u64)], common_l: u64) -> Vec<QualityKey> {
    (0..platform.num_processors())
        .map(|j| {
            let weighted_demand = tasks
                .iter()
                .enumerate()
                .map(|(i, &(c, t))| {
                    u128::from(platform.rate(i, j)) * u128::from(c) * u128::from(common_l / t)
                })
                .sum();
            QualityKey { weighted_demand }
        })
        .collect()
}

/// Processor ordering for heterogeneous search: ascending quality (least
/// capable first, Section VI-A), ties broken by processor id for
/// determinism. Returns the permutation (a list of processor ids).
#[must_use]
pub fn quality_order(platform: &Platform, tasks: &[(u64, u64)], common_l: u64) -> Vec<ProcId> {
    let q = qualities(platform, tasks, common_l);
    let mut order: Vec<ProcId> = (0..platform.num_processors()).collect();
    order.sort_by_key(|&j| (q[j], j));
    order
}

/// Partition processors into groups of mutually identical processors
/// (equal rate-matrix columns). Within a group, eq. 13 symmetry breaking is
/// sound. Groups are returned in first-occurrence order; each group lists
/// processor ids in ascending order.
#[must_use]
pub fn identical_groups(platform: &Platform) -> Vec<Vec<ProcId>> {
    let mut groups: Vec<(Vec<u64>, Vec<ProcId>)> = Vec::new();
    for j in 0..platform.num_processors() {
        let sig = platform.signature(j);
        if let Some(g) = groups.iter_mut().find(|(s, _)| *s == sig) {
            g.1.push(j);
        } else {
            groups.push((sig, vec![j]));
        }
    }
    groups.into_iter().map(|(_, ids)| ids).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_platform_is_one_group() {
        let p = Platform::identical(3, 4).unwrap();
        assert_eq!(identical_groups(&p), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn groups_follow_signatures() {
        let p = Platform::heterogeneous(vec![vec![1, 2, 1, 2], vec![1, 1, 1, 1]]).unwrap();
        assert_eq!(identical_groups(&p), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn quality_orders_least_capable_first() {
        // Two tasks (C=1, T=2) each; P0 fast (rate 4), P1 slow (rate 1).
        let p = Platform::heterogeneous(vec![vec![4, 1], vec![4, 1]]).unwrap();
        let tasks = [(1u64, 2u64), (1, 2)];
        let order = quality_order(&p, &tasks, 2);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn quality_is_exact_rational() {
        // Q(P0) = 1·1/3, Q(P1) = 1·1/2 over L = 6: 2 vs 3.
        let p = Platform::heterogeneous(vec![vec![1, 0], vec![0, 1]]).unwrap();
        let tasks = [(1u64, 3u64), (1, 2)];
        let q = qualities(&p, &tasks, 6);
        assert_eq!(q[0].weighted_demand, 2);
        assert_eq!(q[1].weighted_demand, 3);
    }

    #[test]
    fn ties_broken_by_id() {
        let p = Platform::identical(2, 3).unwrap();
        let tasks = [(1u64, 2u64), (1, 4)];
        assert_eq!(quality_order(&p, &tasks, 4), vec![0, 1, 2]);
    }

    #[test]
    fn identical_processors_have_equal_quality() {
        let p = Platform::heterogeneous(vec![vec![2, 1, 2], vec![1, 3, 1]]).unwrap();
        let tasks = [(1u64, 2u64), (2, 3)];
        let q = qualities(&p, &tasks, 6);
        assert_eq!(q[0], q[2]);
        assert_ne!(q[0], q[1]);
    }
}
