//! Core SAT types: variables, literals and clauses.
//!
//! A variable is a dense index `0..num_vars`; a literal packs the variable
//! and its polarity into one `u32` (`lit = var·2 + sign`), the layout used
//! by MiniSat-family solvers so that a literal indexes watch lists directly.

use std::fmt;

/// A propositional variable, a dense index starting at 0.
pub type Var = u32;

/// A literal: a variable together with a polarity.
///
/// Internally `code = var·2 + (negated as u32)`, so `Lit` values of the
/// same variable are adjacent and `lit ^ 1` is the complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[must_use]
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    #[must_use]
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// Build from a variable and a sign (`true` = negated).
    #[must_use]
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit((v << 1) | u32::from(negated))
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True when the literal is negative (`¬v`).
    #[must_use]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The packed code, suitable for indexing watch lists.
    #[must_use]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[must_use]
    pub fn from_code(code: usize) -> Lit {
        Lit(u32::try_from(code).expect("literal code fits u32"))
    }

    /// DIMACS form: 1-based, negative when the literal is negated.
    #[must_use]
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.var()) + 1;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Parse a DIMACS literal (nonzero, 1-based).
    ///
    /// # Panics
    /// Panics when `d == 0`.
    #[must_use]
    pub fn from_dimacs(d: i64) -> Lit {
        assert!(d != 0, "DIMACS literal must be nonzero");
        let v = Var::try_from(d.unsigned_abs() - 1).expect("variable fits u32");
        Lit::new(v, d < 0)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Ternary assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    Undef,
}

impl LBool {
    /// The truth value of `lit` given this value of its variable.
    #[must_use]
    pub fn under(self, lit: Lit) -> LBool {
        match (self, lit.is_neg()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, false) | (LBool::False, true) => LBool::True,
            (LBool::True, true) | (LBool::False, false) => LBool::False,
        }
    }

    /// Convert to a `bool`, panicking on `Undef`.
    #[must_use]
    pub fn expect_bool(self) -> bool {
        match self {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => panic!("LBool::Undef has no boolean value"),
        }
    }
}

impl From<bool> for LBool {
    fn from(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The literals. Invariant after construction through [`Clause::new`]:
    /// sorted and duplicate-free.
    pub lits: Vec<Lit>,
    /// Bump-count activity used by learned-clause deletion.
    pub activity: f32,
    /// True for clauses learned during conflict analysis (deletable).
    pub learnt: bool,
}

impl Clause {
    /// A problem clause; sorts and deduplicates the literals.
    #[must_use]
    pub fn new(mut lits: Vec<Lit>) -> Clause {
        lits.sort_unstable();
        lits.dedup();
        Clause {
            lits,
            activity: 0.0,
            learnt: false,
        }
    }

    /// A learned clause; the literal order produced by conflict analysis is
    /// preserved (the asserting literal must stay at index 0).
    #[must_use]
    pub fn learnt(lits: Vec<Lit>) -> Clause {
        Clause {
            lits,
            activity: 0.0,
            learnt: true,
        }
    }

    /// True when the clause contains both `l` and `¬l` for some literal.
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        // `lits` sorted: complementary literals of one variable are adjacent.
        self.lits.windows(2).any(|w| w[0] == !w[1])
    }

    /// Number of literals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True when empty (the unsatisfiable clause).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        for v in [0u32, 1, 5, 1000] {
            assert_eq!(Lit::pos(v).var(), v);
            assert_eq!(Lit::neg(v).var(), v);
            assert!(!Lit::pos(v).is_neg());
            assert!(Lit::neg(v).is_neg());
            assert_eq!(!Lit::pos(v), Lit::neg(v));
            assert_eq!(!!Lit::pos(v), Lit::pos(v));
            assert_eq!(Lit::from_code(Lit::neg(v).code()), Lit::neg(v));
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [1i64, -1, 7, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Lit::pos(0).to_dimacs(), 1);
        assert_eq!(Lit::neg(0).to_dimacs(), -1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_under() {
        assert_eq!(LBool::True.under(Lit::pos(0)), LBool::True);
        assert_eq!(LBool::True.under(Lit::neg(0)), LBool::False);
        assert_eq!(LBool::False.under(Lit::pos(0)), LBool::False);
        assert_eq!(LBool::False.under(Lit::neg(0)), LBool::True);
        assert_eq!(LBool::Undef.under(Lit::pos(0)), LBool::Undef);
    }

    #[test]
    fn clause_dedup_and_tautology() {
        let c = Clause::new(vec![Lit::pos(1), Lit::pos(0), Lit::pos(1)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_tautology());
        let t = Clause::new(vec![Lit::pos(0), Lit::neg(0)]);
        assert!(t.is_tautology());
        assert!(Clause::new(vec![]).is_empty());
    }
}
