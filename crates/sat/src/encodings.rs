//! Cardinality-constraint CNF encodings.
//!
//! CSP1's constraint families reduce to three cardinality shapes over
//! boolean variables: *at most one* (constraints (3) and (4)), and
//! *exactly k* (constraint (5) with `k = Ci`). This module provides the
//! standard encodings:
//!
//! * pairwise at-most-one — `O(n²)` binary clauses, no auxiliaries, best
//!   for small groups;
//! * ladder (sequential) at-most-one — `O(n)` clauses and auxiliaries,
//!   best for large groups;
//! * Sinz's sequential-counter at-most-k / at-least-k / exactly-k —
//!   `O(n·k)` clauses, arc-consistent under unit propagation.
//!
//! All encodings are *equisatisfiable* extensions: auxiliary variables are
//! functionally determined, so projected model counts over the original
//! variables are preserved (tested in this module).

use crate::cnf::Cnf;
use crate::types::Lit;

/// Which at-most-one encoding to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmoEncoding {
    /// Pairwise `¬a ∨ ¬b` clauses; no auxiliary variables.
    #[default]
    Pairwise,
    /// Ladder/sequential encoding; `n-1` auxiliary variables, `3n-4`
    /// clauses.
    Ladder,
}

/// Post "at most one of `lits` is true".
pub fn at_most_one(cnf: &mut Cnf, lits: &[Lit], enc: AmoEncoding) {
    match enc {
        AmoEncoding::Pairwise => at_most_one_pairwise(cnf, lits),
        AmoEncoding::Ladder => at_most_one_ladder(cnf, lits),
    }
}

fn at_most_one_pairwise(cnf: &mut Cnf, lits: &[Lit]) {
    for (a_idx, &a) in lits.iter().enumerate() {
        for &b in &lits[a_idx + 1..] {
            cnf.add_binary(!a, !b);
        }
    }
}

/// Ladder encoding: auxiliaries `s_i` mean "some literal among the first
/// `i+1` is true"; `x_{i+1} → ¬s_i`'s contrapositive chain forbids a second
/// true literal.
fn at_most_one_ladder(cnf: &mut Cnf, lits: &[Lit]) {
    let n = lits.len();
    if n <= 4 {
        // Auxiliaries don't pay for themselves below this size.
        at_most_one_pairwise(cnf, lits);
        return;
    }
    let first = cnf.new_vars(u32::try_from(n - 1).expect("group fits u32"));
    let s = |i: usize| Lit::pos(first + u32::try_from(i).expect("index fits u32"));
    for i in 0..n - 1 {
        // x_i → s_i
        cnf.add_binary(!lits[i], s(i));
        // s_{i-1} → s_i (monotone ladder)
        if i > 0 {
            cnf.add_binary(!s(i - 1), s(i));
        }
        // x_{i+1} ∧ s_i → ⊥
        cnf.add_binary(!lits[i + 1], !s(i));
    }
}

/// Post "exactly one of `lits` is true".
pub fn exactly_one(cnf: &mut Cnf, lits: &[Lit], enc: AmoEncoding) {
    cnf.add_clause(lits.to_vec());
    at_most_one(cnf, lits, enc);
}

/// Post "at most `k` of `lits` are true" with Sinz's sequential counter.
///
/// `k = 0` forces every literal false; `k ≥ n` is a no-op.
pub fn at_most_k(cnf: &mut Cnf, lits: &[Lit], k: u32) {
    let n = lits.len();
    if k as usize >= n {
        return;
    }
    if k == 0 {
        for &l in lits {
            cnf.add_unit(!l);
        }
        return;
    }
    if k == 1 {
        // The ladder AMO is the k=1 special case of the counter with fewer
        // clauses.
        at_most_one(cnf, lits, AmoEncoding::Ladder);
        return;
    }
    let k = k as usize;
    // s[i][j] ⇔ "at least j+1 of lits[0..=i] are true" (partial sums),
    // i ∈ 0..n-1, j ∈ 0..k.
    let width = u32::try_from(k).expect("k fits u32");
    let rows = u32::try_from(n - 1).expect("group fits u32");
    let first = cnf.new_vars(rows * width);
    let s = |i: usize, j: usize| -> Lit {
        Lit::pos(first + u32::try_from(i).unwrap() * width + u32::try_from(j).unwrap())
    };

    // Row 0: s(0,0) ← x0; s(0,j) false for j ≥ 1.
    cnf.add_binary(!lits[0], s(0, 0));
    for j in 1..k {
        cnf.add_unit(!s(0, j));
    }
    #[allow(clippy::needless_range_loop)] // i indexes both lits and the s-grid
    for i in 1..n - 1 {
        // Sum carries over: s(i-1,j) → s(i,j).
        // New element increments: x_i ∧ s(i-1,j-1) → s(i,j); x_i → s(i,0).
        cnf.add_binary(!lits[i], s(i, 0));
        for j in 0..k {
            cnf.add_binary(!s(i - 1, j), s(i, j));
            if j > 0 {
                cnf.add_clause(vec![!lits[i], !s(i - 1, j - 1), s(i, j)]);
            }
        }
        // Overflow: x_i ∧ s(i-1,k-1) → ⊥.
        cnf.add_binary(!lits[i], !s(i - 1, k - 1));
    }
    // Final element may not overflow either.
    cnf.add_binary(!lits[n - 1], !s(n - 2, k - 1));
}

/// Post "at least `k` of `lits` are true" (via at-most on the negations).
pub fn at_least_k(cnf: &mut Cnf, lits: &[Lit], k: u32) {
    let n = lits.len();
    if k == 0 {
        return;
    }
    if k as usize > n {
        // Unsatisfiable: demand more true literals than exist.
        cnf.add_clause(vec![]);
        return;
    }
    if k == 1 {
        cnf.add_clause(lits.to_vec());
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    at_most_k(cnf, &negated, u32::try_from(n).expect("group fits u32") - k);
}

/// Post "exactly `k` of `lits` are true".
pub fn exactly_k(cnf: &mut Cnf, lits: &[Lit], k: u32) {
    at_most_k(cnf, lits, k);
    at_least_k(cnf, lits, k);
}

/// Post the pseudo-boolean equality `Σ weights[i]·lits[i] = target` via a
/// forward reachability ("weighted counter" / BDD decomposition) encoding.
///
/// One auxiliary per reachable `(prefix, partial sum)` state; transitions
/// `state ∧ ±lit → next state`, infeasible transitions become conflict
/// clauses, and final states other than `target` are forbidden. Size is
/// `O(n · target)` — suitable for the small weighted cardinalities of the
/// heterogeneous scheduling constraint (11), not for large knapsacks.
///
/// Zero weights are rejected (filter those literals out first — for the
/// scheduling use they are exactly the `si,j = 0` forbidden cells).
///
/// # Panics
/// Panics when `lits` and `weights` differ in length or a weight is 0.
pub fn pb_exactly(cnf: &mut Cnf, lits: &[Lit], weights: &[u64], target: u64) {
    assert_eq!(lits.len(), weights.len(), "one weight per literal");
    assert!(weights.iter().all(|&w| w > 0), "zero weights not allowed");
    let n = lits.len();
    let total: u64 = weights.iter().sum();
    if target > total {
        cnf.add_clause(vec![]); // unreachable
        return;
    }
    if target == 0 {
        for &l in lits {
            cnf.add_unit(!l);
        }
        return;
    }
    // Suffix sums: the most the remaining literals can still contribute.
    let mut suffix = vec![0u64; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + weights[i];
    }
    // state[l] maps partial sum s (reachable after l literals, completable
    // to `target`) to its auxiliary variable.
    let reachable = |l: usize, s: u64| s <= target && s + suffix[l] >= target;
    let mut prev: std::collections::BTreeMap<u64, Lit> = std::collections::BTreeMap::new();
    let root = Lit::pos(cnf.new_var());
    cnf.add_unit(root);
    prev.insert(0, root);
    for l in 0..n {
        let mut next: std::collections::BTreeMap<u64, Lit> = std::collections::BTreeMap::new();
        let node = |cnf: &mut Cnf, map: &mut std::collections::BTreeMap<u64, Lit>, s: u64| {
            *map.entry(s).or_insert_with(|| Lit::pos(cnf.new_var()))
        };
        for (&s, &state) in &prev.clone() {
            // Not taking literal l keeps the sum.
            if reachable(l + 1, s) {
                let nxt = node(cnf, &mut next, s);
                cnf.add_clause(vec![!state, lits[l], nxt]);
            } else {
                // Skipping is fatal: the literal must be taken.
                cnf.add_binary(!state, lits[l]);
            }
            // Taking it adds the weight.
            let s2 = s + weights[l];
            if reachable(l + 1, s2) {
                let nxt = node(cnf, &mut next, s2);
                cnf.add_clause(vec![!state, !lits[l], nxt]);
            } else {
                cnf.add_binary(!state, !lits[l]);
            }
        }
        prev = next;
    }
    // All surviving final states equal `target` by construction of
    // `reachable(n, s)`; nothing further to assert.
    debug_assert!(prev.keys().all(|&s| s == target));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn fresh(cnf: &mut Cnf, n: usize) -> (Vec<Lit>, Vec<Var>) {
        let vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        (vars.iter().map(|&v| Lit::pos(v)).collect(), vars)
    }

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    /// Projected model count over the original variables must equal the
    /// number of 0/1 vectors satisfying the cardinality predicate.
    fn assert_counts(n: usize, post: impl Fn(&mut Cnf, &[Lit]), expected: u64) {
        let mut cnf = Cnf::new();
        let (lits, vars) = fresh(&mut cnf, n);
        post(&mut cnf, &lits);
        assert_eq!(cnf.count_models_projected(&vars), expected, "n={n}");
    }

    #[test]
    fn amo_counts_match() {
        for n in 1..=7 {
            let expected = n as u64 + 1; // all-false plus n singletons
            assert_counts(n, |c, l| at_most_one(c, l, AmoEncoding::Pairwise), expected);
            assert_counts(n, |c, l| at_most_one(c, l, AmoEncoding::Ladder), expected);
        }
    }

    #[test]
    fn exactly_one_counts_match() {
        for n in 1..=7 {
            assert_counts(n, |c, l| exactly_one(c, l, AmoEncoding::Pairwise), n as u64);
            assert_counts(n, |c, l| exactly_one(c, l, AmoEncoding::Ladder), n as u64);
        }
    }

    // Auxiliary variables cost (n-1)·k, and the brute-force oracle caps at
    // 24 variables total, hence n ≤ 5 here. `exactly_k` pays both counters,
    // hence n ≤ 4 there.
    #[test]
    fn at_most_k_counts_match() {
        for n in 1..=5usize {
            for k in 0..=n as u32 + 1 {
                let expected: u64 = (0..=k.min(n as u32) as u64)
                    .map(|j| binom(n as u64, j))
                    .sum();
                assert_counts(n, |c, l| at_most_k(c, l, k), expected);
            }
        }
    }

    #[test]
    fn at_least_k_counts_match() {
        for n in 1..=5usize {
            for k in 0..=n as u32 {
                let expected: u64 = (u64::from(k)..=n as u64).map(|j| binom(n as u64, j)).sum();
                assert_counts(n, |c, l| at_least_k(c, l, k), expected);
            }
        }
    }

    #[test]
    fn exactly_k_counts_match() {
        for n in 1..=4usize {
            for k in 0..=n as u32 {
                assert_counts(n, |c, l| exactly_k(c, l, k), binom(n as u64, u64::from(k)));
            }
        }
    }

    #[test]
    fn pb_exactly_counts_match() {
        // Compare the projected model count with direct enumeration of
        // weight subsets for several weight vectors and targets.
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![1, 1, 1], (0..=4).collect()),
            (vec![1, 2, 3], (0..=7).collect()),
            (vec![2, 2, 4], (0..=9).collect()),
            (vec![1, 1, 2, 3], (0..=8).collect()),
            (vec![5], vec![0, 3, 5, 6]),
        ];
        for (weights, targets) in cases {
            let n = weights.len();
            for &target in &targets {
                let expected = (0u64..1 << n)
                    .filter(|bits| {
                        let sum: u64 = (0..n)
                            .filter(|&i| bits >> i & 1 == 1)
                            .map(|i| weights[i])
                            .sum();
                        sum == target
                    })
                    .count() as u64;
                let mut cnf = Cnf::new();
                let (lits, vars) = fresh(&mut cnf, n);
                pb_exactly(&mut cnf, &lits, &weights, target);
                assert_eq!(
                    cnf.count_models_projected(&vars),
                    expected,
                    "weights {weights:?} target {target}"
                );
            }
        }
    }

    #[test]
    fn pb_exactly_reduces_to_exactly_k_on_unit_weights() {
        for n in 1..=5usize {
            for k in 0..=n as u64 {
                let mut cnf = Cnf::new();
                let (lits, vars) = fresh(&mut cnf, n);
                pb_exactly(&mut cnf, &lits, &vec![1; n], k);
                assert_eq!(
                    cnf.count_models_projected(&vars),
                    binom(n as u64, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn pb_exactly_unreachable_target_is_unsat() {
        let mut cnf = Cnf::new();
        let (lits, _) = fresh(&mut cnf, 2);
        pb_exactly(&mut cnf, &lits, &[2, 2], 3); // parity-unreachable
        assert!(cnf.brute_force().is_none());
        let mut cnf2 = Cnf::new();
        let (lits2, _) = fresh(&mut cnf2, 2);
        pb_exactly(&mut cnf2, &lits2, &[1, 1], 5); // above the total
        assert!(cnf2.brute_force().is_none());
    }

    #[test]
    fn at_least_more_than_n_is_unsat() {
        let mut cnf = Cnf::new();
        let (lits, _) = fresh(&mut cnf, 3);
        at_least_k(&mut cnf, &lits, 4);
        assert!(cnf.brute_force().is_none());
    }

    #[test]
    fn mixed_polarities() {
        // exactly 2 of {x0, ¬x1, x2}: check via brute force agreement.
        let mut cnf = Cnf::new();
        let a = Lit::pos(cnf.new_var());
        let b = Lit::neg(cnf.new_var());
        let c = Lit::pos(cnf.new_var());
        exactly_k(&mut cnf, &[a, b, c], 2);
        let n_base = 3usize;
        let mut count = 0u64;
        // Enumerate base assignments, check some completion exists.
        for bits in 0u64..8 {
            let base: Vec<bool> = (0..n_base).map(|v| bits >> v & 1 == 1).collect();
            let trues = [a, b, c]
                .iter()
                .filter(|l| base[l.var() as usize] != l.is_neg())
                .count();
            if trues == 2 {
                count += 1;
            }
        }
        assert_eq!(cnf.count_models_projected(&[0, 1, 2]), count);
        assert_eq!(count, 3);
    }
}
