#![warn(missing_docs)]
//! # rt-sat — a CDCL boolean satisfiability solver
//!
//! Section IV of the reproduced paper motivates CSP1's all-boolean shape:
//! "focusing on boolean variables so that even boolean satisfiability (SAT)
//! solvers could be used". This crate is that substrate — a self-contained
//! conflict-driven clause-learning solver in the MiniSat lineage:
//!
//! * [`types`] — variables, literals (MiniSat packing), clauses;
//! * [`cnf`] — CNF container, DIMACS import/export, and the brute-force
//!   oracle the solver is validated against;
//! * [`encodings`] — cardinality encodings (pairwise / ladder at-most-one,
//!   Sinz sequential counter for at-most-k / exactly-k) used by the CSP1 →
//!   CNF translation in `mgrts-core`;
//! * [`solver`] — two-watched-literal propagation, first-UIP learning with
//!   clause minimization, VSIDS + phase saving, Luby restarts,
//!   activity-driven clause deletion, and conflict/time budgets reported as
//!   a three-way outcome matching the scheduling experiments' overruns.
//!
//! ## Example
//!
//! ```
//! use rt_sat::{Cnf, Lit, SatSolver, SatOutcome};
//!
//! let mut f = Cnf::new();
//! let x = f.new_var();
//! let y = f.new_var();
//! f.add_clause(vec![Lit::pos(x), Lit::pos(y)]);
//! f.add_clause(vec![Lit::neg(x), Lit::pos(y)]);
//! match SatSolver::solve_cnf(&f) {
//!     SatOutcome::Sat(model) => assert!(model[y as usize]),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

pub mod cnf;
pub mod encodings;
pub mod heap;
pub mod solver;
pub mod types;

pub use cnf::{Cnf, DimacsError};
pub use encodings::{
    at_least_k, at_most_k, at_most_one, exactly_k, exactly_one, pb_exactly, AmoEncoding,
};
pub use solver::{SatConfig, SatLimit, SatOutcome, SatSolver, SatStats};
pub use types::{Clause, LBool, Lit, Var};
