//! Indexed binary max-heap over variables keyed by activity — the VSIDS
//! decision order. Supports `decrease`/`increase`-key by position lookup,
//! which a plain `BinaryHeap` cannot do.

use crate::types::Var;

/// Max-heap of variables ordered by an external activity array.
#[derive(Debug, Clone, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    index: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// An empty heap sized for `n` variables.
    #[must_use]
    pub fn new(n: usize) -> VarHeap {
        VarHeap {
            heap: Vec::with_capacity(n),
            index: vec![ABSENT; n],
        }
    }

    /// Number of queued variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no variable is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `v` is currently queued.
    #[must_use]
    pub fn contains(&self, v: Var) -> bool {
        self.index[v as usize] != ABSENT
    }

    /// Insert `v` (no-op when present), restoring heap order under
    /// `activity`.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.index[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Remove and return the variable with maximal activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.index[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restore order after `v`'s activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        let pos = self.index[v as usize];
        if pos != ABSENT {
            self.sift_up(pos, activity);
        }
    }

    /// Rebuild from scratch with every variable in `vars` queued.
    pub fn rebuild(&mut self, vars: impl Iterator<Item = Var>, activity: &[f64]) {
        self.heap.clear();
        self.index.iter_mut().for_each(|i| *i = ABSENT);
        for v in vars {
            self.index[v as usize] = self.heap.len();
            self.heap.push(v);
        }
        for pos in (0..self.heap.len() / 2).rev() {
            self.sift_down(pos, activity);
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                best = right;
            }
            if activity[self.heap[best] as usize] <= activity[self.heap[pos] as usize] {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a] as usize] = a;
        self.index[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new(4);
        for v in 0..4 {
            h.insert(v, &activity);
        }
        let order: Vec<Var> = std::iter::from_fn(|| h.pop_max(&activity)).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new(3);
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.bumped(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), Some(2));
        assert_eq!(h.pop_max(&activity), Some(1));
        assert!(h.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0; 3];
        let mut h = VarHeap::new(3);
        h.insert(1, &activity);
        h.insert(1, &activity);
        assert_eq!(h.len(), 1);
        assert!(h.contains(1));
        assert!(!h.contains(0));
    }

    #[test]
    fn rebuild_restores_everything() {
        let activity = vec![2.0, 1.0, 4.0, 3.0];
        let mut h = VarHeap::new(4);
        h.rebuild(0..4, &activity);
        let order: Vec<Var> = std::iter::from_fn(|| h.pop_max(&activity)).collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
    }
}
