//! CNF formula container with DIMACS import/export and reference
//! evaluation / brute-force solving (the oracle the solver is tested
//! against).

use std::fmt::Write as _;

use crate::types::{Clause, Lit, Var};

/// A formula in conjunctive normal form.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

/// Errors from DIMACS parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token could not be parsed as a literal.
    BadLiteral(String),
    /// A clause references a variable beyond the header's declaration.
    VarOutOfRange {
        /// The offending variable (1-based as in the file).
        var: u64,
        /// Declared variable count.
        declared: u32,
    },
    /// The final clause is not `0`-terminated.
    UnterminatedClause,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::BadHeader(l) => write!(f, "malformed DIMACS header: {l:?}"),
            DimacsError::BadLiteral(t) => write!(f, "malformed DIMACS literal: {t:?}"),
            DimacsError::VarOutOfRange { var, declared } => {
                write!(f, "variable {var} out of declared range 1..={declared}")
            }
            DimacsError::UnterminatedClause => write!(f, "final clause not terminated by 0"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl Cnf {
    /// An empty formula over zero variables.
    #[must_use]
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocate a fresh variable and return it.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Allocate `k` fresh variables, returning the first.
    pub fn new_vars(&mut self, k: u32) -> Var {
        let first = self.num_vars;
        self.num_vars += k;
        first
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Add a clause. Tautologies are silently dropped; variables referenced
    /// beyond the current count grow the variable space.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        let c = Clause::new(lits);
        if c.is_tautology() {
            return;
        }
        if let Some(max) = c.lits.iter().map(|l| l.var()).max() {
            self.num_vars = self.num_vars.max(max + 1);
        }
        self.clauses.push(c);
    }

    /// Add a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause(vec![lit]);
    }

    /// Add the binary clause `a ∨ b`.
    pub fn add_binary(&mut self, a: Lit, b: Lit) {
        self.add_clause(vec![a, b]);
    }

    /// Evaluate under a total assignment (`assignment[v]` is the value of
    /// variable `v`). Returns true when every clause is satisfied.
    ///
    /// # Panics
    /// Panics when the assignment is shorter than the variable count.
    #[must_use]
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars as usize);
        self.clauses.iter().all(|c| {
            c.lits
                .iter()
                .any(|l| assignment[l.var() as usize] != l.is_neg())
        })
    }

    /// Exhaustive satisfiability check — the test oracle. Returns a model
    /// when one exists. Only usable for small variable counts.
    ///
    /// # Panics
    /// Panics when `num_vars > 24` (2^24 assignments is the sanity bound).
    #[must_use]
    pub fn brute_force(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 24, "brute force limited to 24 variables");
        let n = self.num_vars as usize;
        for bits in 0u64..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// Count models exhaustively — used to validate encodings preserve
    /// solution counts. Same size restriction as [`Cnf::brute_force`].
    ///
    /// `project` restricts counting to distinct assignments of the given
    /// variables (auxiliary encoding variables are then ignored): a
    /// projected assignment is counted once if *some* completion satisfies
    /// the formula.
    #[must_use]
    pub fn count_models_projected(&self, project: &[Var]) -> u64 {
        assert!(self.num_vars <= 24, "brute force limited to 24 variables");
        let n = self.num_vars as usize;
        let mut seen = std::collections::HashSet::new();
        for bits in 0u64..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
            if self.eval(&assignment) {
                let key: Vec<bool> = project.iter().map(|&v| assignment[v as usize]).collect();
                seen.insert(key);
            }
        }
        seen.len() as u64
    }

    /// Serialize to DIMACS CNF.
    #[must_use]
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in &c.lits {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parse DIMACS CNF text. Comment lines (`c …`) are skipped; `%`
    /// end-markers (SATLIB convention) stop parsing.
    pub fn from_dimacs(text: &str) -> Result<Cnf, DimacsError> {
        let mut declared: Option<(u32, usize)> = None;
        let mut cnf = Cnf::new();
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('%') {
                break;
            }
            if line.starts_with('p') {
                let mut it = line.split_whitespace();
                let (_p, fmt) = (it.next(), it.next());
                let nv = it.next().and_then(|s| s.parse::<u32>().ok());
                let nc = it.next().and_then(|s| s.parse::<usize>().ok());
                match (fmt, nv, nc) {
                    (Some("cnf"), Some(nv), Some(nc)) => declared = Some((nv, nc)),
                    _ => return Err(DimacsError::BadHeader(line.to_string())),
                }
                continue;
            }
            for tok in line.split_whitespace() {
                let d: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
                if d == 0 {
                    cnf.add_clause(std::mem::take(&mut current));
                } else {
                    if let Some((nv, _)) = declared {
                        let v = d.unsigned_abs();
                        if v > u64::from(nv) {
                            return Err(DimacsError::VarOutOfRange {
                                var: v,
                                declared: nv,
                            });
                        }
                    }
                    current.push(Lit::from_dimacs(d));
                }
            }
        }
        if !current.is_empty() {
            return Err(DimacsError::UnterminatedClause);
        }
        if let Some((nv, _)) = declared {
            cnf.num_vars = cnf.num_vars.max(nv);
        }
        Ok(cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn eval_and_brute_force() {
        let mut f = Cnf::new();
        f.add_clause(vec![l(1), l(2)]);
        f.add_clause(vec![l(-1), l(2)]);
        f.add_clause(vec![l(1), l(-2)]);
        let m = f.brute_force().expect("sat");
        assert!(f.eval(&m));
        assert!(m[0] && m[1]);
    }

    #[test]
    fn unsat_brute_force() {
        let mut f = Cnf::new();
        f.add_clause(vec![l(1)]);
        f.add_clause(vec![l(-1)]);
        assert!(f.brute_force().is_none());
    }

    #[test]
    fn tautologies_dropped() {
        let mut f = Cnf::new();
        f.add_clause(vec![l(1), l(-1)]);
        assert_eq!(f.num_clauses(), 0);
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut f = Cnf::new();
        f.add_clause(vec![l(1), l(-3)]);
        f.add_clause(vec![l(2)]);
        let text = f.to_dimacs();
        let g = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(g.num_vars(), 3);
        assert_eq!(g.num_clauses(), 2);
        assert_eq!(g.to_dimacs(), text);
    }

    #[test]
    fn dimacs_comments_and_header() {
        let text = "c a comment\np cnf 3 2\n1 -3 0\n2 0\n";
        let f = Cnf::from_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn dimacs_errors() {
        assert!(matches!(
            Cnf::from_dimacs("p cnf x 2\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            Cnf::from_dimacs("p cnf 2 1\n1 zz 0\n"),
            Err(DimacsError::BadLiteral(_))
        ));
        assert!(matches!(
            Cnf::from_dimacs("p cnf 2 1\n1 5 0\n"),
            Err(DimacsError::VarOutOfRange {
                var: 5,
                declared: 2
            })
        ));
        assert!(matches!(
            Cnf::from_dimacs("p cnf 2 1\n1 2\n"),
            Err(DimacsError::UnterminatedClause)
        ));
    }

    #[test]
    fn projected_counting() {
        // x1 free, x2 forced true → 2 projected models over {x1}.
        let mut f = Cnf::new();
        f.add_clause(vec![l(2)]);
        let _ = f.new_var(); // ensure both vars exist
        assert_eq!(f.count_models_projected(&[0]), 2);
        assert_eq!(f.count_models_projected(&[0, 1]), 2);
    }
}
