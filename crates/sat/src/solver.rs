//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! A MiniSat-family solver: two-watched-literal unit propagation, first-UIP
//! conflict analysis with clause minimization, VSIDS variable ordering with
//! phase saving, Luby restarts, and activity-based learned-clause deletion.
//! Budgets (conflicts / wall clock) yield a three-way [`SatOutcome`] so the
//! scheduling experiments can report overruns exactly like the CSP solvers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cnf::Cnf;
use crate::heap::VarHeap;
use crate::types::{LBool, Lit, Var};

/// Reference to a clause in the solver's arena.
type ClauseRef = u32;

const NO_REASON: ClauseRef = ClauseRef::MAX;

/// A watcher: clause reference plus a *blocker* literal whose satisfaction
/// lets propagation skip the clause without touching its memory.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

#[derive(Debug)]
struct DbClause {
    lits: Vec<Lit>,
    activity: f32,
    learnt: bool,
    deleted: bool,
}

/// Result of a solve call.
#[derive(Debug, Clone, PartialEq)]
pub enum SatOutcome {
    /// Satisfiable, with a total model (`model[v]` = value of variable `v`).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// A budget ran out.
    Unknown(SatLimit),
}

impl SatOutcome {
    /// The model, when satisfiable.
    #[must_use]
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatOutcome::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Which budget stopped the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatLimit {
    /// Conflict budget exhausted.
    Conflicts,
    /// Wall-clock budget exhausted.
    Time,
    /// An external interrupt flag was raised (portfolio cancellation).
    Interrupted,
}

/// Search counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Decision count.
    pub decisions: u64,
    /// Propagated literals.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Wall-clock time of the last solve, microseconds.
    pub elapsed_us: u64,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct SatConfig {
    /// VSIDS activity decay factor (activity increment grows by `1/decay`).
    pub var_decay: f64,
    /// Clause activity decay factor.
    pub clause_decay: f32,
    /// Luby restart unit (conflicts).
    pub restart_unit: u64,
    /// Initial learned-clause capacity as a fraction of problem clauses.
    pub learntsize_factor: f64,
    /// Conflict budget (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Wall-clock budget (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// Default polarity assigned the first time a variable is decided
    /// (phase saving takes over afterwards). `false` suits encodings where
    /// most variables are false in any model, like CSP1's `x_{i,j}(t)`.
    pub default_phase: bool,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_unit: 100,
            learntsize_factor: 1.0 / 3.0,
            max_conflicts: None,
            time_limit: None,
            default_phase: false,
        }
    }
}

/// The CDCL solver.
#[derive(Debug)]
pub struct SatSolver {
    cfg: SatConfig,
    clauses: Vec<DbClause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    stats: SatStats,
    interrupt: Option<Arc<AtomicBool>>,
    /// Counter gating wall-clock polls (`Instant::now()` once per ~1024
    /// budget checks, SAT-solver style — same scheme as the CSP engine).
    budget_ticks: u64,
}

impl SatSolver {
    /// Build a solver from a formula.
    #[must_use]
    pub fn new(cnf: &Cnf, cfg: SatConfig) -> SatSolver {
        let n = cnf.num_vars() as usize;
        let mut s = SatSolver {
            cfg,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assigns: vec![LBool::Undef; n],
            level: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(n),
            phase: vec![cfg.default_phase; n],
            seen: vec![false; n],
            ok: true,
            stats: SatStats::default(),
            interrupt: None,
            budget_ticks: 0,
        };
        s.order.rebuild(0..cnf.num_vars(), &s.activity);
        for c in cnf.clauses() {
            s.add_clause(c.lits.clone());
            if !s.ok {
                break;
            }
        }
        s
    }

    /// Convenience: build with the default configuration and solve.
    #[must_use]
    pub fn solve_cnf(cnf: &Cnf) -> SatOutcome {
        SatSolver::new(cnf, SatConfig::default()).solve()
    }

    /// Counters from the most recent [`SatSolver::solve`].
    #[must_use]
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Install a cooperative interrupt flag: when another thread sets it,
    /// the search returns [`SatOutcome::Unknown`]([`SatLimit::Interrupted`])
    /// at its next propagation-loop poll. Used by portfolio racing to
    /// preempt the SAT route, which time/conflict budgets alone cannot do
    /// promptly.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Poll the interrupt flag (cheap relaxed load; `None` ⇒ never).
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_deref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Amortized wall-clock check: counts invocations and reads
    /// `Instant::now()` only once per ~1024 of them, so the conflict and
    /// decision loops can call it unconditionally.
    fn time_exhausted(&mut self, start: Instant) -> bool {
        let Some(limit) = self.cfg.time_limit else {
            return false;
        };
        let tick = self.budget_ticks;
        self.budget_ticks += 1;
        tick & 1023 == 0 && start.elapsed() >= limit
    }

    fn value(&self, l: Lit) -> LBool {
        self.assigns[l.var() as usize].under(l)
    }

    fn decision_level(&self) -> u32 {
        u32::try_from(self.trail_lim.len()).expect("levels fit u32")
    }

    /// Add a problem clause at the root level. Returns false when the
    /// formula became trivially unsatisfiable.
    fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0] == !w[1]) {
            return true; // tautology
        }
        // Drop root-false literals; a root-true literal satisfies the clause.
        let mut kept = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.value(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => kept.push(l),
            }
        }
        match kept.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(kept[0], NO_REASON);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(kept, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef::try_from(self.clauses.len()).expect("clause count fits u32");
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(DbClause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var() as usize;
        self.assigns[v] = LBool::from(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = !l.is_neg();
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation. Returns the conflicting clause
    /// when one arises.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            // Take the watch list; re-insert survivors in place.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut j = 0;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                if self.value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let c = &mut self.clauses[w.cref as usize];
                if c.deleted {
                    continue; // lazily drop watchers of deleted clauses
                }
                // Normalize: the false literal (¬p) at position 1.
                if c.lits[0] == !p {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], !p);
                let first = c.lits[0];
                // Direct field access: `c` keeps `self.clauses` borrowed.
                let first_val = self.assigns[first.var() as usize].under(first);
                if first != w.blocker && first_val == LBool::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..c.lits.len() {
                    if self.assigns[c.lits[k].var() as usize].under(c.lits[k]) != LBool::False {
                        c.lits.swap(1, k);
                        let new_watch = c.lits[1];
                        self.watches[(!new_watch).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the first literal.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.value(first) == LBool::False {
                    // Conflict: restore remaining watchers and bail out.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.cref);
                }
                self.enqueue(first, w.cref);
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let skip_first = usize::from(p.is_some());
            for &q in &lits[skip_first..] {
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            confl = self.reason[lit.var() as usize];
            debug_assert_ne!(confl, NO_REASON, "non-UIP literal must have a reason");
        }

        // Mark the kept literals for the redundancy check, then minimize.
        for &l in &learnt[1..] {
            self.seen[l.var() as usize] = true;
        }
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.literal_redundant(l) {
                minimized.push(l);
            }
        }
        for &l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        self.seen[learnt[0].var() as usize] = false;

        // Backtrack level: highest level among the non-asserting literals;
        // put a literal of that level at index 1 (second watch).
        let mut bt = 0;
        if minimized.len() > 1 {
            let mut max_i = 1;
            for (i, &l) in minimized.iter().enumerate().skip(1) {
                if self.level[l.var() as usize] > self.level[minimized[max_i].var() as usize] {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            bt = self.level[minimized[1].var() as usize];
        }
        (minimized, bt)
    }

    /// Local redundancy check: `l` is redundant when it was propagated and
    /// every antecedent literal is already in the learned clause (seen) or
    /// fixed at the root level.
    fn literal_redundant(&self, l: Lit) -> bool {
        let reason = self.reason[l.var() as usize];
        if reason == NO_REASON {
            return false;
        }
        self.clauses[reason as usize].lits.iter().all(|&q| {
            q.var() == l.var() || self.seen[q.var() as usize] || self.level[q.var() as usize] == 0
        })
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for &l in &self.trail[lim..] {
            let v = l.var();
            self.assigns[v as usize] = LBool::Undef;
            self.reason[v as usize] = NO_REASON;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v as usize] == LBool::Undef {
                self.stats.decisions += 1;
                return Some(Lit::new(v, !self.phase[v as usize]));
            }
        }
        None
    }

    /// Delete the least active half of the learned clauses (reason clauses
    /// and binaries are kept), then rebuild the watch lists.
    fn reduce_db(&mut self) {
        let locked: std::collections::HashSet<ClauseRef> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var() as usize])
            .filter(|&r| r != NO_REASON)
            .collect();
        let mut acts: Vec<f32> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|c| c.activity)
            .collect();
        if acts.len() < 2 {
            return;
        }
        acts.sort_by(f32::total_cmp);
        let threshold = acts[acts.len() / 2];
        for (i, c) in self.clauses.iter_mut().enumerate() {
            let cref = ClauseRef::try_from(i).expect("index fits");
            if c.learnt
                && !c.deleted
                && c.lits.len() > 2
                && c.activity < threshold
                && !locked.contains(&cref)
            {
                c.deleted = true;
                self.stats.learnt_clauses -= 1;
                self.stats.deleted_clauses += 1;
            }
        }
        // Rebuild watches from surviving clauses.
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            let cref = ClauseRef::try_from(i).expect("index fits");
            self.watches[(!c.lits[0]).code()].push(Watcher {
                cref,
                blocker: c.lits[1],
            });
            self.watches[(!c.lits[1]).code()].push(Watcher {
                cref,
                blocker: c.lits[0],
            });
        }
    }

    /// The reluctant-doubling (Luby) sequence: 1, 1, 2, 1, 1, 2, 4, …
    fn luby(i: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut i = i;
        let mut sz = size;
        let mut sq = seq;
        while sz - 1 != i {
            sz = (sz - 1) >> 1;
            sq -= 1;
            i %= sz;
        }
        1u64 << sq
    }

    /// Run the CDCL loop to a verdict or budget exhaustion.
    pub fn solve(&mut self) -> SatOutcome {
        self.solve_with_assumptions(&[])
    }

    /// Solve under temporary assumptions: the given literals are forced as
    /// pseudo-decisions for this call only. `Unsat` then means
    /// *unsatisfiable under the assumptions* (the formula itself may be
    /// satisfiable). The solver backtracks to the root afterwards and
    /// keeps its learned clauses, so repeated calls are incremental.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatOutcome {
        let start = Instant::now();
        self.budget_ticks = 0;
        let result = self.search(start, assumptions);
        self.backtrack_to(0);
        self.stats.elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        result
    }

    fn search(&mut self, start: Instant, assumptions: &[Lit]) -> SatOutcome {
        if !self.ok {
            return SatOutcome::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SatOutcome::Unsat;
        }
        let mut max_learnts = (self.clauses.len() as f64 * self.cfg.learntsize_factor).max(100.0);
        let mut restart = 0u64;
        loop {
            let budget = self.cfg.restart_unit * Self::luby(restart);
            restart += 1;
            self.stats.restarts += 1;
            let mut conflicts_here = 0u64;
            loop {
                // Cooperative cancellation: polled every propagation round
                // so a portfolio winner preempts this solver within one
                // propagation fixpoint, not one restart.
                if self.interrupted() {
                    return SatOutcome::Unknown(SatLimit::Interrupted);
                }
                if let Some(confl) = self.propagate() {
                    self.stats.conflicts += 1;
                    conflicts_here += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SatOutcome::Unsat;
                    }
                    let (learnt, bt) = self.analyze(confl);
                    self.backtrack_to(bt);
                    if learnt.len() == 1 {
                        self.enqueue(learnt[0], NO_REASON);
                    } else {
                        let cref = self.attach(learnt.clone(), true);
                        self.bump_clause(cref);
                        self.enqueue(learnt[0], cref);
                    }
                    self.var_inc /= self.cfg.var_decay;
                    self.cla_inc /= self.cfg.clause_decay;

                    if let Some(max) = self.cfg.max_conflicts {
                        if self.stats.conflicts >= max {
                            return SatOutcome::Unknown(SatLimit::Conflicts);
                        }
                    }
                    if self.time_exhausted(start) {
                        return SatOutcome::Unknown(SatLimit::Time);
                    }
                } else {
                    if conflicts_here >= budget {
                        self.backtrack_to(0);
                        break; // restart
                    }
                    if self.stats.learnt_clauses as f64 >= max_learnts {
                        self.reduce_db();
                        max_learnts *= 1.1;
                    }
                    // Deep instances can make conflicts rare relative to
                    // decisions, so the wall clock is polled here too.
                    if self.time_exhausted(start) {
                        return SatOutcome::Unknown(SatLimit::Time);
                    }
                    // Re-establish assumptions as pseudo-decisions; one
                    // decision level per assumption keeps the mapping
                    // stable across restarts.
                    let mut pending: Option<Lit> = None;
                    while (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.value(a) {
                            LBool::True => self.trail_lim.push(self.trail.len()),
                            LBool::False => return SatOutcome::Unsat,
                            LBool::Undef => {
                                pending = Some(a);
                                break;
                            }
                        }
                    }
                    if let Some(a) = pending {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, NO_REASON);
                        continue; // propagate the assumption first
                    }
                    match self.decide() {
                        None => {
                            let model: Vec<bool> =
                                self.assigns.iter().map(|&a| a.expect_bool()).collect();
                            return SatOutcome::Sat(model);
                        }
                        Some(l) => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(l, NO_REASON);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Lit;

    fn l(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn solve(clauses: &[&[i64]]) -> SatOutcome {
        let mut cnf = Cnf::new();
        for c in clauses {
            cnf.add_clause(c.iter().map(|&d| l(d)).collect());
        }
        SatSolver::solve_cnf(&cnf)
    }

    #[test]
    fn trivial_sat() {
        let out = solve(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let m = out.model().expect("sat");
        assert!(m[0] && m[1]);
    }

    #[test]
    fn trivial_unsat() {
        assert_eq!(solve(&[&[1], &[-1]]), SatOutcome::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new();
        assert!(matches!(SatSolver::solve_cnf(&cnf), SatOutcome::Sat(_)));
    }

    #[test]
    fn all_binary_implications() {
        // Chain 1→2→3→4, plus unit 1: all forced true.
        let out = solve(&[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        let m = out.model().expect("sat");
        assert_eq!(m, vec![true; 4]);
    }

    #[test]
    fn unsat_chain() {
        assert_eq!(
            solve(&[&[1], &[-1, 2], &[-2, 3], &[-3], &[3, -2]]),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{h,p}: pigeon p in hole h. Vars 1..=6 (2 holes × 3 pigeons).
        let var = |hole: i64, pigeon: i64| hole * 3 + pigeon + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for p in 0..3 {
            clauses.push((0..2).map(|h| var(h, p)).collect());
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in p1 + 1..3 {
                    clauses.push(vec![-var(h, p1), -var(h, p2)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        assert_eq!(solve(&refs), SatOutcome::Unsat);
    }

    #[test]
    fn conflict_budget_reported() {
        // PHP(5,4) is hard enough to exceed one conflict.
        let holes = 4i64;
        let pigeons = 5i64;
        let var = |h: i64, p: i64| h * pigeons + p + 1;
        let mut cnf = Cnf::new();
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| l(var(h, p))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause(vec![l(-var(h, p1)), l(-var(h, p2))]);
                }
            }
        }
        let cfg = SatConfig {
            max_conflicts: Some(1),
            ..SatConfig::default()
        };
        let out = SatSolver::new(&cnf, cfg).solve();
        assert_eq!(out, SatOutcome::Unknown(SatLimit::Conflicts));
        // And without the budget it is proven unsat.
        assert_eq!(SatSolver::solve_cnf(&cnf), SatOutcome::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(SatSolver::luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn model_satisfies_formula() {
        // A small structured instance: parity-ish constraints.
        let clauses: Vec<Vec<i64>> = vec![
            vec![1, 2, 3],
            vec![-1, -2, 3],
            vec![-1, 2, -3],
            vec![1, -2, -3],
            vec![4, 5],
            vec![-4, -5],
            vec![3, 4],
        ];
        let mut cnf = Cnf::new();
        for c in &clauses {
            cnf.add_clause(c.iter().map(|&d| l(d)).collect());
        }
        match SatSolver::solve_cnf(&cnf) {
            SatOutcome::Sat(m) => assert!(cnf.eval(&m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        // x1 ∨ x2; assuming ¬x1 forces x2, assuming ¬x1 ∧ ¬x2 is UNSAT,
        // and the formula itself stays satisfiable afterwards.
        let mut cnf = Cnf::new();
        cnf.add_clause(vec![l(1), l(2)]);
        let mut s = SatSolver::new(&cnf, SatConfig::default());
        match s.solve_with_assumptions(&[l(-1)]) {
            SatOutcome::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        assert_eq!(s.solve_with_assumptions(&[l(-1), l(-2)]), SatOutcome::Unsat);
        // Incremental reuse: plain solve still succeeds.
        assert!(matches!(s.solve(), SatOutcome::Sat(_)));
        // And the opposite assumption also works.
        match s.solve_with_assumptions(&[l(1), l(-2)]) {
            SatOutcome::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_vs_unit_conflict() {
        // Formula forces x1; assuming ¬x1 must be UNSAT, assuming x1 SAT.
        let mut cnf = Cnf::new();
        cnf.add_clause(vec![l(1)]);
        cnf.add_clause(vec![l(2), l(3)]);
        let mut s = SatSolver::new(&cnf, SatConfig::default());
        assert_eq!(s.solve_with_assumptions(&[l(-1)]), SatOutcome::Unsat);
        assert!(matches!(
            s.solve_with_assumptions(&[l(1)]),
            SatOutcome::Sat(_)
        ));
    }

    #[test]
    fn incremental_scan_over_switches() {
        // Pigeonhole with "hole enabled" switches: PHP(3 pigeons) needs 3
        // enabled holes; scan k = 1, 2, 3 with one solver instance.
        // Variables: p_{h,pigeon} = hole*3+pigeon+1 (h<3), switch e_h = 10+h.
        let var = |h: i64, p: i64| h * 3 + p + 1;
        let e = |h: i64| 10 + h;
        let mut cnf = Cnf::new();
        for p in 0..3 {
            cnf.add_clause((0..3).map(|h| l(var(h, p))).collect());
        }
        for h in 0..3 {
            for p1 in 0..3 {
                for p2 in p1 + 1..3 {
                    cnf.add_clause(vec![l(-var(h, p1)), l(-var(h, p2))]);
                }
                // Using hole h requires its switch.
                cnf.add_clause(vec![l(-var(h, p1)), l(e(h))]);
            }
        }
        let mut s = SatSolver::new(&cnf, SatConfig::default());
        let disabled = |k: i64| -> Vec<Lit> { (k..3).map(|h| l(-e(h))).collect() };
        assert_eq!(s.solve_with_assumptions(&disabled(1)), SatOutcome::Unsat);
        assert_eq!(s.solve_with_assumptions(&disabled(2)), SatOutcome::Unsat);
        assert!(matches!(
            s.solve_with_assumptions(&disabled(3)),
            SatOutcome::Sat(_)
        ));
    }

    #[test]
    fn stats_populated() {
        let mut cnf = Cnf::new();
        for d in 1..=6i64 {
            cnf.add_clause(vec![l(d), l(-(d % 6 + 1))]);
        }
        let mut s = SatSolver::new(&cnf, SatConfig::default());
        let _ = s.solve();
        assert!(s.stats().restarts >= 1);
    }
}
