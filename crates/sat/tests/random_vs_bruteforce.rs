//! Differential validation of the CDCL solver against exhaustive search on
//! random formulas, plus structured families with known status.

use proptest::prelude::*;

use rt_sat::{at_most_k, exactly_k, AmoEncoding, Cnf, Lit, SatConfig, SatOutcome, SatSolver};

/// A random clause set over `n` vars: each clause 1–4 literals.
fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new();
        let _ = cnf.new_vars(max_vars);
        for c in clauses {
            cnf.add_clause(c.into_iter().map(|(v, neg)| Lit::new(v, neg)).collect());
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL and brute force must agree on satisfiability, and any model
    /// returned must actually satisfy the formula.
    #[test]
    fn agrees_with_brute_force(cnf in arb_cnf(8, 24)) {
        let expected = cnf.brute_force();
        match SatSolver::solve_cnf(&cnf) {
            SatOutcome::Sat(model) => {
                prop_assert!(expected.is_some(), "CDCL SAT but formula is UNSAT");
                prop_assert!(cnf.eval(&model), "CDCL model does not satisfy formula");
            }
            SatOutcome::Unsat => prop_assert!(expected.is_none(), "CDCL UNSAT but formula is SAT"),
            SatOutcome::Unknown(r) => prop_assert!(false, "unbudgeted solve returned Unknown: {:?}", r),
        }
    }

    /// Cardinality encodings solved by CDCL match the predicate semantics:
    /// the model restricted to the base variables satisfies the bound.
    #[test]
    fn cardinality_models_respect_bounds(n in 3usize..10, k in 0u32..6, lo in 0u32..4) {
        let mut cnf = Cnf::new();
        let vars: Vec<u32> = (0..n).map(|_| cnf.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        at_most_k(&mut cnf, &lits, k);
        rt_sat::at_least_k(&mut cnf, &lits, lo);
        let sat_expected = u64::from(lo) <= (k as u64).min(n as u64) && lo as usize <= n;
        match SatSolver::solve_cnf(&cnf) {
            SatOutcome::Sat(model) => {
                let trues = vars.iter().filter(|&&v| model[v as usize]).count() as u32;
                // k ≥ n makes the at-most constraint vacuous.
                prop_assert!(trues <= k || k as usize >= n);
                prop_assert!(trues >= lo);
                prop_assert!(sat_expected);
            }
            SatOutcome::Unsat => prop_assert!(!sat_expected, "lo={} k={} n={} should be SAT", lo, k, n),
            SatOutcome::Unknown(_) => prop_assert!(false),
        }
    }

    /// DIMACS round-trip preserves solver verdicts.
    #[test]
    fn dimacs_roundtrip_preserves_verdict(cnf in arb_cnf(6, 16)) {
        let text = cnf.to_dimacs();
        let parsed = Cnf::from_dimacs(&text).unwrap();
        let a = matches!(SatSolver::solve_cnf(&cnf), SatOutcome::Sat(_));
        let b = matches!(SatSolver::solve_cnf(&parsed), SatOutcome::Sat(_));
        prop_assert_eq!(a, b);
    }
}

/// Pigeonhole PHP(n+1, n): always UNSAT, a classic resolution-hard family
/// that exercises clause learning.
fn pigeonhole(holes: u32, pigeons: u32) -> Cnf {
    let mut cnf = Cnf::new();
    let var = |h: u32, p: u32| h * pigeons + p;
    let _ = cnf.new_vars(holes * pigeons);
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| Lit::pos(var(h, p))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_binary(Lit::neg(var(h, p1)), Lit::neg(var(h, p2)));
            }
        }
    }
    cnf
}

#[test]
fn pigeonhole_family_unsat() {
    for holes in 2..=6 {
        let cnf = pigeonhole(holes, holes + 1);
        assert_eq!(
            SatSolver::solve_cnf(&cnf),
            SatOutcome::Unsat,
            "PHP({}, {holes})",
            holes + 1
        );
    }
}

#[test]
fn pigeonhole_exact_fit_sat() {
    for holes in 2..=6 {
        let mut cnf = pigeonhole(holes, holes);
        // Also demand each hole used at most once is already there; feasible.
        match SatSolver::solve_cnf(&cnf) {
            SatOutcome::Sat(m) => assert!(cnf.eval(&m)),
            other => panic!("PHP({holes},{holes}) must be SAT, got {other:?}"),
        }
        // Forcing pigeon 0 out of every hole flips it to UNSAT.
        for h in 0..holes {
            cnf.add_unit(Lit::neg(h * holes));
        }
        assert_eq!(SatSolver::solve_cnf(&cnf), SatOutcome::Unsat);
    }
}

/// Random 3-SAT at the phase-transition ratio (4.26 clauses/var): both
/// verdicts occur and every SAT model checks out. Uses a fixed seed series
/// for reproducibility.
#[test]
fn random_3sat_phase_transition() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let n_vars = 40u32;
    let n_clauses = 170usize;
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for seed in 0..30u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cnf = Cnf::new();
        let _ = cnf.new_vars(n_vars);
        for _ in 0..n_clauses {
            let mut lits = Vec::with_capacity(3);
            while lits.len() < 3 {
                let v = rng.gen_range(0..n_vars);
                let l = Lit::new(v, rng.gen());
                if !lits.contains(&l) && !lits.contains(&!l) {
                    lits.push(l);
                }
            }
            cnf.add_clause(lits);
        }
        match SatSolver::solve_cnf(&cnf) {
            SatOutcome::Sat(m) => {
                assert!(cnf.eval(&m), "seed {seed}: bad model");
                sat_seen += 1;
            }
            SatOutcome::Unsat => unsat_seen += 1,
            SatOutcome::Unknown(r) => panic!("seed {seed}: unexpected {r:?}"),
        }
    }
    assert!(sat_seen > 0, "phase transition should yield some SAT");
    assert!(unsat_seen > 0, "phase transition should yield some UNSAT");
}

/// The `exactly_k` encoding composed per row/column solves a small exact
/// cover: a 4×4 permutation-matrix problem (exactly one true per row and
/// column) has a model, and demanding 2 per row with 1 per column is UNSAT.
#[test]
fn permutation_matrix() {
    let n = 4u32;
    let mut cnf = Cnf::new();
    let var = |r: u32, c: u32| r * n + c;
    let _ = cnf.new_vars(n * n);
    for r in 0..n {
        let row: Vec<Lit> = (0..n).map(|c| Lit::pos(var(r, c))).collect();
        exactly_k(&mut cnf, &row, 1);
    }
    for c in 0..n {
        let col: Vec<Lit> = (0..n).map(|r| Lit::pos(var(r, c))).collect();
        rt_sat::exactly_one(&mut cnf, &col, AmoEncoding::Ladder);
    }
    match SatSolver::solve_cnf(&cnf) {
        SatOutcome::Sat(m) => {
            for r in 0..n {
                let trues = (0..n).filter(|&c| m[var(r, c) as usize]).count();
                assert_eq!(trues, 1, "row {r}");
            }
        }
        other => panic!("expected SAT, got {other:?}"),
    }

    // Overconstrain: rows want 2 each (8 total) but columns allow 4.
    let mut cnf2 = Cnf::new();
    let _ = cnf2.new_vars(n * n);
    for r in 0..n {
        let row: Vec<Lit> = (0..n).map(|c| Lit::pos(var(r, c))).collect();
        exactly_k(&mut cnf2, &row, 2);
    }
    for c in 0..n {
        let col: Vec<Lit> = (0..n).map(|r| Lit::pos(var(r, c))).collect();
        exactly_k(&mut cnf2, &col, 1);
    }
    assert_eq!(SatSolver::solve_cnf(&cnf2), SatOutcome::Unsat);
}

/// Budgeted solves on a hard instance report `Unknown` and never lie.
#[test]
fn budget_never_lies() {
    let cnf = pigeonhole(7, 8);
    let cfg = SatConfig {
        max_conflicts: Some(10),
        ..SatConfig::default()
    };
    match SatSolver::new(&cnf, cfg).solve() {
        SatOutcome::Unknown(_) | SatOutcome::Unsat => {}
        SatOutcome::Sat(_) => panic!("PHP(8,7) cannot be SAT"),
    }
}
