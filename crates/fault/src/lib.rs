//! Deterministic, zero-dependency fault injection for the MGRTS stack.
//!
//! Production code is threaded with named *fault sites* — one per
//! interesting IO or solve operation (`sink.append`, `lease.claim`,
//! `engine.solve`, …). With no plan installed every site is a single
//! relaxed atomic load, so the shim is free in normal operation. When a
//! [`FaultPlan`] is installed (programmatically or via the
//! `MGRTS_FAULT_PLAN` environment variable) each site consults the plan
//! and may be told to fail with a specific [`std::io::ErrorKind`], to
//! panic, to sleep, or to *corrupt* the bytes it was about to write.
//!
//! Plans are **seeded and deterministic**: an `n`th-occurrence rule fires
//! on exactly that occurrence of the site, and a probability rule hashes
//! `(seed, site, occurrence)` — two runs with the same plan and the same
//! per-site call sequence inject exactly the same faults. That is what
//! makes chaos runs comparable against fault-free baselines.
//!
//! # Plan grammar
//!
//! A plan is a `;`-separated list of clauses. The optional `seed=N`
//! clause sets the probability seed (default 0); every other clause is a
//! rule of the form `site:kind:trigger`:
//!
//! ```text
//! seed=7;sink.sync:io:n2;engine.solve:panic:n3;lease.claim:full:p0.02
//! ```
//!
//! * `site` — a fault-site name, or a prefix ending in `*`
//!   (`sink.*` matches every sink site).
//! * `kind` — `io` (generic error), `full` (storage full), `interrupted`,
//!   `notfound`, `denied`, `busy`, `timeout`, `panic`, `corrupt`, or
//!   `delayMS` (e.g. `delay250`).
//! * `trigger` — `always`, `nN` (exactly the Nth occurrence), `everyN`
//!   (every Nth occurrence), or `pF` (probability per occurrence, e.g.
//!   `p0.05`).
//!
//! Multiple rules may name the same site; each occurrence is counted
//! once and every matching rule is offered it in plan order — the first
//! rule that triggers wins. `engine.solve:panic:n1;engine.solve:panic:n2`
//! therefore panics the first **two** solves.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError, RwLock};
use std::time::Duration;

/// What an armed fault site does when its rule triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with this [`io::ErrorKind`].
    Error(io::ErrorKind),
    /// Panic at the site (exercises panic supervisors).
    Panic,
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// For write sites: scribble over the payload (newlines preserved)
    /// and report success — simulated silent corruption. For non-write
    /// sites this is a no-op.
    Corrupt,
}

/// When a rule fires, relative to the per-site occurrence counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every occurrence.
    Always,
    /// Exactly the Nth occurrence (1-based), once.
    Nth(u64),
    /// Every Nth occurrence (N, 2N, 3N, …).
    EveryN(u64),
    /// Independently with this probability per occurrence, derived
    /// deterministically from `(seed, site, occurrence)`.
    Probability(f64),
}

/// One `site:kind:trigger` clause of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Site name, or prefix ending in `*`.
    pub site: String,
    /// Action when triggered.
    pub kind: FaultKind,
    /// Firing condition.
    pub trigger: Trigger,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }

    fn triggers(&self, seed: u64, site: &str, occurrence: u64) -> bool {
        match self.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => occurrence == n,
            Trigger::EveryN(n) => n > 0 && occurrence.is_multiple_of(n),
            Trigger::Probability(p) => unit_f64(seed, site, occurrence) < p,
        }
    }
}

/// A seeded, deterministic set of fault rules plus the per-site
/// occurrence and injection counters accumulated while it is installed.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    occurrences: Mutex<BTreeMap<String, u64>>,
    injected: Mutex<BTreeMap<String, u64>>,
}

impl FaultPlan {
    /// A plan with no rules (injects nothing).
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit parts.
    #[must_use]
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> Self {
        FaultPlan {
            seed,
            rules,
            ..FaultPlan::default()
        }
    }

    /// Parse the compact plan grammar (see crate docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                seed = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed `{v}` in fault plan"))?;
                continue;
            }
            let parts: Vec<&str> = clause.split(':').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "bad fault rule `{clause}`: expected site:kind:trigger"
                ));
            }
            let site = parts[0].trim();
            if site.is_empty() {
                return Err(format!("bad fault rule `{clause}`: empty site"));
            }
            rules.push(FaultRule {
                site: site.to_string(),
                kind: parse_kind(parts[1].trim())?,
                trigger: parse_trigger(parts[2].trim())?,
            });
        }
        Ok(FaultPlan::new(seed, rules))
    }

    /// True when the plan has no rules at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// One-line human description of the plan, for startup banners.
    #[must_use]
    pub fn summary(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| format!("{}:{:?}:{:?}", r.site, r.kind, r.trigger))
            .collect();
        format!("seed={} rules=[{}]", self.seed, rules.join(", "))
    }

    /// Evaluate one occurrence of `site`, returning the fault to apply
    /// (if any) and updating the occurrence/injection counters.
    fn eval(&self, site: &str) -> Option<FaultKind> {
        if !self.rules.iter().any(|r| r.matches(site)) {
            return None;
        }
        let occurrence = {
            let mut occ = lock(&self.occurrences);
            let n = occ.entry(site.to_string()).or_insert(0);
            *n += 1;
            *n
        };
        for rule in self.rules.iter().filter(|r| r.matches(site)) {
            if rule.triggers(self.seed, site, occurrence) {
                *lock(&self.injected).entry(site.to_string()).or_insert(0) += 1;
                return Some(rule.kind.clone());
            }
        }
        None
    }

    /// Per-site injection counts so far, in site order.
    #[must_use]
    pub fn injected_counts(&self) -> Vec<(String, u64)> {
        lock(&self.injected)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

fn parse_kind(s: &str) -> Result<FaultKind, String> {
    if let Some(ms) = s.strip_prefix("delay") {
        let ms = ms
            .parse()
            .map_err(|_| format!("bad delay `{s}` in fault plan"))?;
        return Ok(FaultKind::Delay(ms));
    }
    Ok(match s {
        "io" | "error" => FaultKind::Error(io::ErrorKind::Other),
        "full" | "storage-full" | "storage_full" => FaultKind::Error(io::ErrorKind::StorageFull),
        "interrupted" => FaultKind::Error(io::ErrorKind::Interrupted),
        "notfound" | "not-found" => FaultKind::Error(io::ErrorKind::NotFound),
        "denied" => FaultKind::Error(io::ErrorKind::PermissionDenied),
        "busy" => FaultKind::Error(io::ErrorKind::ResourceBusy),
        "timeout" | "timedout" => FaultKind::Error(io::ErrorKind::TimedOut),
        "panic" => FaultKind::Panic,
        "corrupt" => FaultKind::Corrupt,
        other => return Err(format!("unknown fault kind `{other}`")),
    })
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    if s == "always" {
        return Ok(Trigger::Always);
    }
    if let Some(n) = s.strip_prefix("every") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad trigger `{s}` in fault plan"))?;
        if n == 0 {
            return Err("every0 is not a valid trigger".to_string());
        }
        return Ok(Trigger::EveryN(n));
    }
    if let Some(n) = s.strip_prefix('n') {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad trigger `{s}` in fault plan"))?;
        if n == 0 {
            return Err("n0 is not a valid trigger (occurrences are 1-based)".to_string());
        }
        return Ok(Trigger::Nth(n));
    }
    if let Some(p) = s.strip_prefix('p') {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("bad trigger `{s}` in fault plan"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability `{s}` outside [0, 1]"));
        }
        return Ok(Trigger::Probability(p));
    }
    Err(format!("unknown trigger `{s}` in fault plan"))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic uniform sample in `[0, 1)` from `(seed, site, occurrence)`.
fn unit_f64(seed: u64, site: &str, occurrence: u64) -> f64 {
    let h = splitmix(
        seed ^ fnv1a(site).rotate_left(17) ^ occurrence.wrapping_mul(0x2545_f491_4f6c_dd1d),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// Global installation
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);
static ENV_INIT: Once = Once::new();

/// Environment variable holding a plan in the compact grammar.
pub const PLAN_ENV: &str = "MGRTS_FAULT_PLAN";

/// Install `plan` process-wide, replacing any existing plan.
pub fn install(plan: FaultPlan) {
    let enable = !plan.is_empty();
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(plan));
    ENABLED.store(enable, Ordering::SeqCst);
}

/// Remove the installed plan; every site reverts to a no-op.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// True when a non-empty plan is installed (after lazily consulting
/// [`PLAN_ENV`] on first use).
pub fn active() -> bool {
    env_init();
    ENABLED.load(Ordering::Relaxed)
}

/// The installed plan's one-line summary, if any — for startup banners.
#[must_use]
pub fn summary() -> Option<String> {
    env_init();
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    current().map(|p| p.summary())
}

/// Per-site injection counts of the installed plan (empty when inactive).
#[must_use]
pub fn injected_counts() -> Vec<(String, u64)> {
    match current() {
        Some(p) => p.injected_counts(),
        None => Vec::new(),
    }
}

/// Total injections across all sites of the installed plan.
#[must_use]
pub fn injected_total() -> u64 {
    injected_counts().iter().map(|(_, n)| n).sum()
}

fn current() -> Option<Arc<FaultPlan>> {
    PLAN.read().unwrap_or_else(PoisonError::into_inner).clone()
}

fn env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(text) = std::env::var(PLAN_ENV) {
            if text.trim().is_empty() {
                return;
            }
            match FaultPlan::parse(&text) {
                Ok(plan) => install(plan),
                Err(e) => eprintln!("warning: ignoring malformed {PLAN_ENV}: {e}"),
            }
        }
    });
}

/// Evaluate one occurrence of `site` against the installed plan.
///
/// Returns `None` (and costs one atomic load) when no plan is active.
/// [`FaultKind::Delay`] is *not* applied here — callers that cannot
/// sleep may handle it; use [`FaultFs::check`] for apply-and-go
/// semantics.
pub fn fire(site: &str) -> Option<FaultKind> {
    env_init();
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    current().and_then(|p| p.eval(site))
}

/// Serializes tests that install process-global plans; dropping the
/// guard clears the plan.
pub struct PlanGuard {
    _lock: MutexGuard<'static, ()>,
}

impl fmt::Debug for PlanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PlanGuard")
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        clear();
    }
}

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Install `plan` under a process-wide test lock. Concurrent callers
/// (e.g. `cargo test` threads) block until the previous guard drops,
/// which also clears the plan — so chaos tests cannot bleed into each
/// other.
pub fn install_guarded(plan: FaultPlan) -> PlanGuard {
    let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    install(plan);
    PlanGuard { _lock: lock }
}

// ---------------------------------------------------------------------------
// FaultFs: the IO shim
// ---------------------------------------------------------------------------

fn injected_err(site: &str, kind: io::ErrorKind) -> io::Error {
    io::Error::new(kind, format!("injected fault at `{site}`"))
}

/// Scribble over a payload while preserving newlines, so line-oriented
/// readers see exactly as many (corrupt) lines as were written.
fn scribble(buf: &[u8]) -> Vec<u8> {
    buf.iter()
        .map(|&b| if b == b'\n' { b'\n' } else { b'#' })
        .collect()
}

/// Static shims mirroring the `std::fs`/`std::io` operations used by the
/// store, lease, and serve layers. Each consults a named fault site
/// first, then delegates; with no plan installed the overhead is one
/// atomic load per call.
#[derive(Debug)]
pub struct FaultFs;

impl FaultFs {
    /// Consult `site` and apply the verdict: inject errors as `Err`,
    /// apply delays inline, panic on [`FaultKind::Panic`]. `Corrupt` is
    /// meaningless without a payload and passes through as `Ok`.
    pub fn check(site: &str) -> io::Result<()> {
        match fire(site) {
            None | Some(FaultKind::Corrupt) => Ok(()),
            Some(FaultKind::Error(kind)) => Err(injected_err(site, kind)),
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            Some(FaultKind::Panic) => panic!("injected panic at fault site `{site}`"),
        }
    }

    /// `write_all` through the shim; `Corrupt` scribbles the payload
    /// (newlines preserved) and reports success.
    pub fn write_all(site: &str, w: &mut dyn Write, buf: &[u8]) -> io::Result<()> {
        match fire(site) {
            None => w.write_all(buf),
            Some(FaultKind::Corrupt) => w.write_all(&scribble(buf)),
            Some(FaultKind::Error(kind)) => Err(injected_err(site, kind)),
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                w.write_all(buf)
            }
            Some(FaultKind::Panic) => panic!("injected panic at fault site `{site}`"),
        }
    }

    /// `flush` through the shim.
    pub fn flush(site: &str, w: &mut dyn Write) -> io::Result<()> {
        FaultFs::check(site)?;
        w.flush()
    }

    /// `File::sync_data` through the shim.
    pub fn sync_data(site: &str, f: &File) -> io::Result<()> {
        FaultFs::check(site)?;
        f.sync_data()
    }

    /// `fs::rename` through the shim.
    pub fn rename(site: &str, from: &Path, to: &Path) -> io::Result<()> {
        FaultFs::check(site)?;
        std::fs::rename(from, to)
    }

    /// `fs::write` through the shim; `Corrupt` scribbles the payload.
    pub fn write(site: &str, path: &Path, contents: &[u8]) -> io::Result<()> {
        match fire(site) {
            None => std::fs::write(path, contents),
            Some(FaultKind::Corrupt) => std::fs::write(path, scribble(contents)),
            Some(FaultKind::Error(kind)) => Err(injected_err(site, kind)),
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                std::fs::write(path, contents)
            }
            Some(FaultKind::Panic) => panic!("injected panic at fault site `{site}`"),
        }
    }

    /// Exclusive-create (`create_new`) through the shim.
    pub fn create_new(site: &str, path: &Path) -> io::Result<File> {
        FaultFs::check(site)?;
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
    }

    /// `fs::remove_file` through the shim.
    pub fn remove_file(site: &str, path: &Path) -> io::Result<()> {
        FaultFs::check(site)?;
        std::fs::remove_file(path)
    }
}

/// Classify an IO error as *transient* (worth retrying with backoff:
/// interruptions, timeouts, full disks, generic injected errors) versus
/// *structural* (retry cannot help: missing directories, permission
/// problems, invalid input).
#[must_use]
pub fn is_transient_io(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::StorageFull
            | io::ErrorKind::QuotaExceeded
            | io::ErrorKind::ResourceBusy
            | io::ErrorKind::Deadlock
            | io::ErrorKind::Other
    )
}

/// Deterministic jittered exponential backoff: attempt 0 waits about
/// `base_ms`, doubling per attempt, capped at `cap_ms`, with ±25% jitter
/// derived from `(salt, attempt)` so retry storms decorrelate without a
/// RNG dependency.
#[must_use]
pub fn backoff_delay(attempt: u32, base_ms: u64, cap_ms: u64, salt: u64) -> Duration {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.min(16))
        .min(cap_ms.max(base_ms));
    // Map a hash to [-exp/4, +exp/4] around the exponential midpoint.
    let h = splitmix(salt ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let span = (exp / 2).max(1);
    let jitter = h % span;
    Duration::from_millis(exp - exp / 4 + jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=7; sink.sync:io:n2 ;engine.solve:panic:always;a.b:delay250:p0.5;q.*:full:every3",
        )
        .expect("plan parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].kind, FaultKind::Error(io::ErrorKind::Other));
        assert_eq!(plan.rules[0].trigger, Trigger::Nth(2));
        assert_eq!(plan.rules[1].kind, FaultKind::Panic);
        assert_eq!(plan.rules[2].kind, FaultKind::Delay(250));
        assert_eq!(plan.rules[3].trigger, Trigger::EveryN(3));
        assert!(plan.rules[3].matches("q.claim"));
        assert!(!plan.rules[3].matches("sink.claim"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("justasite").is_err());
        assert!(FaultPlan::parse("a:b:c:d").is_err());
        assert!(FaultPlan::parse("a.b:frobnicate:n1").is_err());
        assert!(FaultPlan::parse("a.b:io:n0").is_err());
        assert!(FaultPlan::parse("a.b:io:p1.5").is_err());
        assert!(FaultPlan::parse("seed=x;a.b:io:n1").is_err());
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::parse("x.y:io:n3").expect("plan");
        assert_eq!(plan.eval("x.y"), None);
        assert_eq!(plan.eval("x.y"), None);
        assert_eq!(
            plan.eval("x.y"),
            Some(FaultKind::Error(io::ErrorKind::Other))
        );
        assert_eq!(plan.eval("x.y"), None);
        assert_eq!(plan.injected_counts(), vec![("x.y".to_string(), 1)]);
        // Unrelated sites never consume occurrences.
        assert_eq!(plan.eval("other"), None);
        assert!(lock(&plan.occurrences).get("other").is_none());
    }

    #[test]
    fn probability_is_deterministic_and_seeded() {
        let a = FaultPlan::parse("seed=1;s:io:p0.5").expect("plan");
        let b = FaultPlan::parse("seed=1;s:io:p0.5").expect("plan");
        let hits_a: Vec<bool> = (0..64).map(|_| a.eval("s").is_some()).collect();
        let hits_b: Vec<bool> = (0..64).map(|_| b.eval("s").is_some()).collect();
        assert_eq!(hits_a, hits_b, "same seed, same plan, same faults");
        assert!(hits_a.iter().any(|&h| h), "p=0.5 over 64 draws hits");
        assert!(hits_a.iter().any(|&h| !h), "p=0.5 over 64 draws misses");

        let c = FaultPlan::parse("seed=2;s:io:p0.5").expect("plan");
        let hits_c: Vec<bool> = (0..64).map(|_| c.eval("s").is_some()).collect();
        assert_ne!(hits_a, hits_c, "different seed, different faults");
    }

    #[test]
    fn corrupt_scribbles_but_preserves_line_structure() {
        let _guard = install_guarded(FaultPlan::parse("w:corrupt:n1").expect("plan"));
        let mut out = Vec::new();
        FaultFs::write_all("w", &mut out, b"{\"k\":1}\n").expect("corrupt write succeeds");
        assert_eq!(out, b"#######\n");
        out.clear();
        FaultFs::write_all("w", &mut out, b"{\"k\":2}\n").expect("second write clean");
        assert_eq!(out, b"{\"k\":2}\n");
    }

    #[test]
    fn check_injects_errors_and_guard_clears() {
        {
            let _guard = install_guarded(FaultPlan::parse("op:full:always").expect("plan"));
            let err = FaultFs::check("op").expect_err("injected");
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
            assert!(is_transient_io(&err));
            assert!(active());
            assert_eq!(injected_total(), 1);
        }
        assert!(!ENABLED.load(Ordering::SeqCst));
        assert_eq!(FaultFs::check("op").ok(), Some(()));
    }

    #[test]
    #[should_panic(expected = "injected panic at fault site `boom`")]
    fn panic_kind_panics() {
        let plan = FaultPlan::parse("boom:panic:always").expect("plan");
        if let Some(FaultKind::Panic) = plan.eval("boom") {
            panic!("injected panic at fault site `boom`");
        }
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient_io(&io::Error::new(
            io::ErrorKind::Interrupted,
            "x"
        )));
        assert!(is_transient_io(&io::Error::other("x")));
        assert!(!is_transient_io(&io::Error::new(
            io::ErrorKind::NotFound,
            "x"
        )));
        assert!(!is_transient_io(&io::Error::new(
            io::ErrorKind::PermissionDenied,
            "x"
        )));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let d0 = backoff_delay(0, 100, 2_000, 1);
        let d3 = backoff_delay(3, 100, 2_000, 1);
        let d9 = backoff_delay(9, 100, 2_000, 1);
        assert!(d0 < d3, "{d0:?} < {d3:?}");
        assert!(d3 <= d9, "{d3:?} <= {d9:?}");
        assert!(d9 <= Duration::from_millis(2_500), "cap holds: {d9:?}");
        assert_eq!(
            backoff_delay(5, 100, 2_000, 42),
            backoff_delay(5, 100, 2_000, 42),
            "deterministic for equal salt"
        );
    }
}
