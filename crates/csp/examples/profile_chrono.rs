//! Phase-split timing for the chronological CSP2 bench cell: separates
//! model cloning, solver construction, and pure search for both engines,
//! then reports paired end-to-end ratio quartiles. Diagnostic only — the
//! gated numbers live in `benches/propagation.rs`. Run with:
//! `cargo run --release -p csp-engine --example profile_chrono`

use std::time::Instant;

use csp_engine::reference::RefSolver;
use csp_engine::{Budget, Constraint, LearnConfig, Model, SolverConfig, ValOrder, VarOrder};

const TASKS: [(i64, i64); 6] = [(2, 5), (3, 6), (3, 7), (2, 5), (3, 6), (3, 7)];
const M: usize = 5;
const H: i64 = 210;

fn build_model() -> Model {
    let n = TASKS.len();
    let h = H as usize;
    let var = |j: usize, t: usize| t * M + j;
    let mut m = Model::with_capacity(h * M, h * (M + 1));
    for _ in 0..h * M {
        m.new_var(-1, n as i32 - 1);
    }
    for t in 0..h {
        m.post(Constraint::AllDifferentExcept {
            vars: (0..M).map(|j| var(j, t)).collect(),
            except: -1,
        });
    }
    for (i, &(wcet, period)) in TASKS.iter().enumerate() {
        let jobs = H / period;
        for k in 0..jobs {
            let lo = (k * period) as usize;
            let hi = ((k + 1) * period) as usize;
            let mut vars = Vec::with_capacity((hi - lo) * M);
            for t in lo..hi {
                for j in 0..M {
                    vars.push(var(j, t));
                }
            }
            m.post(Constraint::CountEq {
                vars,
                value: i as i32,
                rhs: wcet as u32,
            });
        }
    }
    for t in 0..h {
        for j in 0..M - 1 {
            m.post(Constraint::LeqVar {
                a: var(j, t),
                b: var(j + 1, t),
            });
        }
    }
    m
}

fn cfg() -> SolverConfig {
    SolverConfig {
        var_order: VarOrder::Input,
        val_order: ValOrder::Max,
        restarts: None,
        seed: 1,
        learn: LearnConfig::default(),
        budget: Budget {
            max_decisions: Some(200_000),
            ..Budget::default()
        },
    }
}

fn median<F: FnMut() -> u128>(runs: usize, mut f: F) -> u128 {
    let mut v: Vec<u128> = (0..runs).map(|_| f()).collect();
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    let model = build_model();
    let runs = 9;

    let clone_ns = median(runs, || {
        let t = Instant::now();
        std::hint::black_box(model.clone());
        t.elapsed().as_nanos()
    });
    let inc_build_ns = median(runs, || {
        let m = model.clone();
        let t = Instant::now();
        std::hint::black_box(m.into_solver(cfg()));
        t.elapsed().as_nanos()
    });
    let inc_search_ns = median(runs, || {
        let mut s = model.clone().into_solver(cfg());
        let t = Instant::now();
        let out = s.solve();
        let d = t.elapsed().as_nanos();
        assert!(out.is_sat());
        d
    });
    let ref_build_ns = median(runs, || {
        let t = Instant::now();
        std::hint::black_box(RefSolver::from_model(&model, cfg()));
        t.elapsed().as_nanos()
    });
    let ref_search_ns = median(runs, || {
        let mut s = RefSolver::from_model(&model, cfg());
        let t = Instant::now();
        let out = s.solve();
        let d = t.elapsed().as_nanos();
        assert!(out.is_sat());
        d
    });

    // Construction breakdown: rebuild the model with only one constraint
    // family at a time and time into_solver.
    for (name, keep) in [
        ("alldiff-only", 0usize),
        ("count-only", 1),
        ("leq-only", 2),
        ("no-constraints", 9),
    ] {
        let mut m2 = Model::with_capacity((H as usize) * M, 1400);
        for _ in 0..(H as usize) * M {
            m2.new_var(-1, TASKS.len() as i32 - 1);
        }
        let full = build_model();
        for c in full.constraints() {
            let family = match c {
                Constraint::AllDifferentExcept { .. } => 0,
                Constraint::CountEq { .. } => 1,
                Constraint::LeqVar { .. } => 2,
                _ => 3,
            };
            if family == keep {
                m2.post(c.clone());
            }
        }
        let ns = median(runs, || {
            let mc = m2.clone();
            let t = Instant::now();
            std::hint::black_box(mc.into_solver(cfg()));
            t.elapsed().as_nanos()
        });
        println!("build {name:<14}: {ns:>10} ns");
    }

    // Paired interleaved rounds: time both engines back-to-back per round
    // and look at the per-round ratio — frequency drift cancels.
    let mut ratios: Vec<f64> = (0..41)
        .map(|_| {
            let t = Instant::now();
            assert!(model.clone().into_solver(cfg()).solve().is_sat());
            let inc = t.elapsed().as_nanos();
            let t = Instant::now();
            assert!(RefSolver::from_model(&model, cfg()).solve().is_sat());
            let rf = t.elapsed().as_nanos();
            rf as f64 / inc as f64
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    println!(
        "paired end-to-end ratios: q1 {:.3} med {:.3} q3 {:.3}",
        ratios[ratios.len() / 4],
        ratios[ratios.len() / 2],
        ratios[3 * ratios.len() / 4]
    );

    let mut s = model.clone().into_solver(cfg());
    s.solve();
    println!("incremental stats: {:?}", s.stats());

    println!("model clone       : {:>10} ns", clone_ns);
    println!("inc build         : {:>10} ns", inc_build_ns);
    println!("inc search        : {:>10} ns", inc_search_ns);
    println!("ref build         : {:>10} ns", ref_build_ns);
    println!("ref search        : {:>10} ns", ref_search_ns);
    println!(
        "search-only speedup: {:.3}  end-to-end speedup: {:.3}",
        ref_search_ns as f64 / inc_search_ns as f64,
        (ref_build_ns + ref_search_ns) as f64 / (inc_build_ns + inc_search_ns) as f64
    );
}
